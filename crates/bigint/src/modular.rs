//! Modular arithmetic on [`BigUint`] values.
//!
//! Provides the operations RSA needs: modular addition/subtraction/
//! multiplication, modular exponentiation (left-to-right square-and-multiply
//! with a 4-bit fixed window) and modular inverse via the extended Euclidean
//! algorithm.

use crate::BigUint;

/// `(a + b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be non-zero");
    (a + b) % m
}

/// `(a - b) mod m`, wrapping around the modulus when `b > a`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be non-zero");
    let a = a % m;
    let b = &(b % m);
    if &a >= b {
        a - b
    } else {
        a + m - b
    }
}

/// `(a * b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be non-zero");
    (a * b) % m
}

/// `base^exponent mod modulus`.
///
/// Uses a fixed 4-bit window over the exponent bits, which reduces the number
/// of multiplications by roughly 25% compared to plain square-and-multiply
/// for the 1024–2048 bit exponents used by RSA.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn mod_pow(base: &BigUint, exponent: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "modulus must be non-zero");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if exponent.is_zero() {
        return BigUint::one();
    }
    let base = base % modulus;
    if base.is_zero() {
        return BigUint::zero();
    }

    // Precompute base^0 .. base^15 (mod modulus).
    const WINDOW: usize = 4;
    let mut table = Vec::with_capacity(1 << WINDOW);
    table.push(BigUint::one());
    table.push(base.clone());
    for i in 2..(1 << WINDOW) {
        table.push(mod_mul(&table[i - 1], &base, modulus));
    }

    let bits = exponent.bits();
    // Process the exponent in 4-bit windows, most-significant first.
    let mut result = BigUint::one();
    let windows = bits.div_ceil(WINDOW);
    for w in (0..windows).rev() {
        for _ in 0..WINDOW {
            result = mod_mul(&result, &result, modulus);
        }
        let mut digit = 0usize;
        for b in 0..WINDOW {
            let bit_index = w * WINDOW + (WINDOW - 1 - b);
            digit <<= 1;
            if bit_index < bits && exponent.bit(bit_index) {
                digit |= 1;
            }
        }
        if digit != 0 {
            result = mod_mul(&result, &table[digit], modulus);
        }
    }
    result
}

/// Modular inverse: returns `x` such that `a * x ≡ 1 (mod m)`, or `None` if
/// `gcd(a, m) != 1`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    assert!(!m.is_zero(), "modulus must be non-zero");
    if m.is_one() {
        return Some(BigUint::zero());
    }
    // Extended Euclid on (a mod m, m), tracking coefficients as
    // (sign, magnitude) pairs to stay within unsigned arithmetic.
    let mut r0 = a % m;
    let mut r1 = m.clone();
    // t coefficients such that t * a ≡ r (mod m)
    let mut t0 = (false, BigUint::one()); // +1
    let mut t1 = (false, BigUint::zero()); // 0

    while !r0.is_zero() {
        let (q, r) = r1.div_rem(&r0);
        // (t1 - q*t0, t0)
        let q_t0 = (t0.0, &q * &t0.1);
        let new_t = signed_sub(&t1, &q_t0);
        r1 = r0;
        r0 = r;
        t1 = t0;
        t0 = new_t;
    }

    if !r1.is_one() {
        return None;
    }
    // t1 is the Bezout coefficient for the original `a`.
    let (neg, mag) = t1;
    let mag = mag % m;
    Some(if neg && !mag.is_zero() { m - mag } else { mag })
}

/// Subtracts two signed magnitudes `(sign, magnitude)` where `sign == true`
/// means negative: returns `a - b`.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both non-negative
        (false, false) => {
            if a.1 >= b.1 {
                (false, &a.1 - &b.1)
            } else {
                (true, &b.1 - &a.1)
            }
        }
        // a - (-b) = a + b
        (false, true) => (false, &a.1 + &b.1),
        // -a - b = -(a + b)
        (true, false) => (true, &a.1 + &b.1),
        // -a - (-b) = b - a
        (true, true) => {
            if b.1 >= a.1 {
                (false, &b.1 - &a.1)
            } else {
                (true, &a.1 - &b.1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn mod_add_wraps() {
        let m = BigUint::from(7u64);
        assert_eq!(mod_add(&BigUint::from(5u64), &BigUint::from(6u64), &m), BigUint::from(4u64));
    }

    #[test]
    fn mod_sub_wraps_below_zero() {
        let m = BigUint::from(7u64);
        assert_eq!(mod_sub(&BigUint::from(2u64), &BigUint::from(5u64), &m), BigUint::from(4u64));
        assert_eq!(mod_sub(&BigUint::from(5u64), &BigUint::from(2u64), &m), BigUint::from(3u64));
        // Operands larger than the modulus are reduced first.
        assert_eq!(mod_sub(&BigUint::from(16u64), &BigUint::from(30u64), &m), BigUint::from(0u64));
    }

    #[test]
    fn mod_mul_small() {
        let m = BigUint::from(97u64);
        assert_eq!(
            mod_mul(&BigUint::from(96u64), &BigUint::from(96u64), &m),
            BigUint::from(1u64)
        );
    }

    #[test]
    fn mod_pow_small_known_values() {
        let m = BigUint::from(1_000_000_007u64);
        assert_eq!(
            mod_pow(&BigUint::from(2u64), &BigUint::from(10u64), &m),
            BigUint::from(1024u64)
        );
        // Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p.
        assert_eq!(
            mod_pow(&BigUint::from(12345u64), &BigUint::from(1_000_000_006u64), &m),
            BigUint::one()
        );
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = BigUint::from(13u64);
        assert_eq!(mod_pow(&BigUint::from(5u64), &BigUint::zero(), &m), BigUint::one());
        assert_eq!(mod_pow(&BigUint::zero(), &BigUint::from(5u64), &m), BigUint::zero());
        assert_eq!(
            mod_pow(&BigUint::from(5u64), &BigUint::from(3u64), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn mod_pow_large_values() {
        // 2^255 - 19 arithmetic sanity check (the modulus of Curve25519).
        let p = (BigUint::one() << 255) - BigUint::from(19u64);
        let g = BigUint::from(9u64);
        // Euler: g^(p-1) ≡ 1 (mod p) since p is prime and gcd(9, p) = 1.
        let res = mod_pow(&g, &(&p - BigUint::one()), &p);
        assert_eq!(res, BigUint::one());
    }

    #[test]
    fn mod_pow_matches_naive() {
        let m = BigUint::from(65_537u64);
        let base = BigUint::from(31_337u64);
        for e in 0u64..40 {
            let expected = {
                let mut acc = BigUint::one();
                for _ in 0..e {
                    acc = mod_mul(&acc, &base, &m);
                }
                acc
            };
            assert_eq!(mod_pow(&base, &BigUint::from(e), &m), expected, "e = {e}");
        }
    }

    #[test]
    fn mod_inverse_small() {
        let m = BigUint::from(17u64);
        for a in 1u64..17 {
            let inv = mod_inverse(&BigUint::from(a), &m).unwrap();
            assert_eq!(mod_mul(&BigUint::from(a), &inv, &m), BigUint::one(), "a = {a}");
        }
    }

    #[test]
    fn mod_inverse_none_when_not_coprime() {
        assert!(mod_inverse(&BigUint::from(6u64), &BigUint::from(9u64)).is_none());
        assert!(mod_inverse(&BigUint::zero(), &BigUint::from(9u64)).is_none());
    }

    #[test]
    fn mod_inverse_rsa_style() {
        // Typical RSA textbook example: p=61, q=53, n=3233, phi=3120, e=17, d=2753.
        let e = BigUint::from(17u64);
        let phi = BigUint::from(3120u64);
        let d = mod_inverse(&e, &phi).unwrap();
        assert_eq!(d, BigUint::from(2753u64));
    }

    #[test]
    fn mod_inverse_large() {
        let m = big("170141183460469231731687303715884105727"); // 2^127 - 1, a Mersenne prime
        let a = big("123456789012345678901234567890");
        let inv = mod_inverse(&a, &m).unwrap();
        assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
    }

    #[test]
    fn mod_inverse_of_one_is_one() {
        let m = BigUint::from(101u64);
        assert_eq!(mod_inverse(&BigUint::one(), &m), Some(BigUint::one()));
    }

    #[test]
    fn mod_inverse_modulus_one() {
        assert_eq!(mod_inverse(&BigUint::from(5u64), &BigUint::one()), Some(BigUint::zero()));
    }
}
