//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the lowest-level substrate of the JXTA-Overlay security
//! stack.  The paper's security extension relies on RSA key pairs (broker and
//! client credentials, wrapped-key encryption per PKCS#1) which in turn need
//! multi-precision modular arithmetic.  Since no external crypto or bignum
//! crates are used, everything is implemented here from scratch:
//!
//! * [`BigUint`] — an unsigned big integer stored as little-endian `u64`
//!   limbs, with the full set of arithmetic, bit and comparison operations.
//! * [`modular`] — modular exponentiation (square-and-multiply with a sliding
//!   window), modular inverse via the extended Euclidean algorithm and
//!   related helpers.
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation used by RSA key generation.
//! * [`rng`] — helpers for sampling uniformly distributed big integers from
//!   any [`rand::RngCore`] source.
//!
//! The implementation favours clarity and predictable performance over
//! assembly-level tricks; all hot loops operate on `u64` limbs with `u128`
//! intermediates, avoid re-allocating in inner loops and are exercised by
//! unit tests, property tests and the crypto-primitive benchmarks in
//! `jxta-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
pub mod modular;
pub mod prime;
pub mod rng;

pub use biguint::{BigUint, ParseBigUintError};

#[cfg(test)]
mod proptests;
