//! The [`BigUint`] type: an arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (the canonical form of zero is an empty limb vector).  All public
//! operations keep the value normalised.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// Number of bits in one limb.
pub(crate) const LIMB_BITS: usize = 64;

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
    InvalidRadix(u32),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse an empty string as a BigUint"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in BigUint literal"),
            ParseErrorKind::InvalidRadix(r) => write!(f, "unsupported radix {r} (expected 2..=36)"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

/// An arbitrary-precision unsigned integer.
///
/// `BigUint` supports the arithmetic needed for RSA-style public-key
/// cryptography: addition, subtraction, multiplication, Euclidean division,
/// shifts, comparisons, byte/hex conversion and (via the sibling modules)
/// modular exponentiation, modular inverse and primality testing.
///
/// # Examples
///
/// ```
/// use jxta_bigint::BigUint;
///
/// let a = BigUint::from(1_000_000_007u64);
/// let b = BigUint::from(999_999_937u64);
/// let product = &a * &b;
/// assert_eq!(product.to_decimal_string(), "999999943999999559");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is exactly one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Constructs a value from little-endian limbs, normalising trailing zeros.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }


    /// Number of significant bits (`0` for the value zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order) as a boolean.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the representation if necessary.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << off;
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1u64 << off);
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// Number of trailing zero bits; returns `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * LIMB_BITS + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0usize;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == LIMB_BITS {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        Self::from_limbs(limbs)
    }

    /// Builds a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut rev: Vec<u8> = bytes.to_vec();
        rev.reverse();
        Self::from_bytes_be(&rev)
    }

    /// Serialises as big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Serialises as big-endian bytes left-padded with zeros to exactly `len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "BigUint of {} bytes does not fit into {} bytes",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a string in the given radix (2..=36). Accepts `_` separators.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigUintError> {
        if !(2..=36).contains(&radix) {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::InvalidRadix(radix),
            });
        }
        let digits: Vec<char> = s.chars().filter(|&c| c != '_').collect();
        if digits.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut value = BigUint::zero();
        let radix_big = BigUint::from(radix as u64);
        for c in digits {
            let d = c
                .to_digit(radix)
                .ok_or(ParseBigUintError {
                    kind: ParseErrorKind::InvalidDigit(c),
                })?;
            value = &value * &radix_big + BigUint::from(d as u64);
        }
        Ok(value)
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        Self::from_str_radix(s, 16)
    }

    /// Formats as a lowercase hexadecimal string (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&format!("{top:x}"));
        }
        for limb in iter {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Formats as a decimal string.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Repeatedly divide by 10^19 (the largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut value = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !value.is_zero() {
            let (q, r) = value.div_rem_u64(CHUNK);
            chunks.push(r);
            value = q;
        }
        let mut s = String::new();
        let mut iter = chunks.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&top.to_string());
        }
        for chunk in iter {
            s.push_str(&format!("{chunk:019}"));
        }
        s
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Core arithmetic
    // ------------------------------------------------------------------

    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (sum1, c1) = a.overflowing_add(b);
            let (sum2, c2) = sum1.overflowing_add(carry);
            out.push(sum2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        assert!(
            self >= other,
            "BigUint subtraction underflow: {} - {}",
            self.to_hex(),
            other.to_hex()
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Checked subtraction; returns `None` when the result would underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            Some(self.sub_ref(other))
        }
    }

    /// `self * other` (schoolbook multiplication with `u128` intermediates).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u128 + (a as u128) * (b as u128) + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Squares the value (slightly cheaper than a general multiplication for
    /// the modular-exponentiation hot path).
    pub fn square(&self) -> BigUint {
        self.mul_ref(self)
    }

    /// Multiplies by a single `u64`.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &a in &self.limbs {
            let cur = (a as u128) * (rhs as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Divides by a single `u64`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `remainder < divisor`.
    ///
    /// Implements Knuth's Algorithm D on 64-bit limbs.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }

        // Normalise: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self << shift; // dividend
        let v = divisor << shift; // divisor
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un: Vec<u64> = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q_limbs = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current remainder.
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = numerator / v_top as u128;
            let mut r_hat = numerator % v_top as u128;
            while q_hat >= (1u128 << 64)
                || q_hat * v_next as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >= (1u128 << 64) {
                    break;
                }
            }

            // Multiply-and-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - (p as u64 as i128) - borrow;
                if sub < 0 {
                    un[j + i] = (sub + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    un[j + i] = sub as u64;
                    borrow = 0;
                }
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            if sub < 0 {
                // q_hat was one too large: add the divisor back.
                un[j + n] = (sub + (1i128 << 64)) as u64;
                q_hat -= 1;
                let mut carry2: u128 = 0;
                for i in 0..n {
                    let sum = un[j + i] as u128 + vn[i] as u128 + carry2;
                    un[j + i] = sum as u64;
                    carry2 = sum >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u64);
            } else {
                un[j + n] = sub as u64;
            }

            q_limbs[j] = q_hat as u64;
        }

        let quotient = BigUint::from_limbs(q_limbs);
        let remainder = BigUint::from_limbs(un[..n].to_vec()) >> shift;
        (quotient, remainder)
    }

    /// Remainder of Euclidean division.
    pub fn rem_ref(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).1
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a = a >> az;
        b = b >> bz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                return a << common;
            }
            b = &b >> b.trailing_zeros().unwrap();
        }
    }
}

// ----------------------------------------------------------------------
// Conversions
// ----------------------------------------------------------------------

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            BigUint::from_str_radix(hex, 16)
        } else {
            BigUint::from_str_radix(s, 10)
        }
    }
}

// ----------------------------------------------------------------------
// Comparisons
// ----------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for BigUint {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

// ----------------------------------------------------------------------
// Operators (owned and by-reference forms)
// ----------------------------------------------------------------------

macro_rules! forward_binop {
    ($trait_:ident, $method:ident, $imp:ident) => {
        impl $trait_ for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$imp(rhs)
            }
        }
        impl $trait_ for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$imp(&rhs)
            }
        }
        impl $trait_<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$imp(rhs)
            }
        }
        impl $trait_<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$imp(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self.sub_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = shift / LIMB_BITS;
        let bit_shift = shift % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = shift / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

// ----------------------------------------------------------------------
// Formatting
// ----------------------------------------------------------------------

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal_string())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 2, 255, 256, u32::MAX as u64, u64::MAX] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(BigUint::from(v).to_u128(), Some(v));
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum.to_hex(), "10000000000000000");
        assert_eq!(sum.bits(), 65);
    }

    #[test]
    fn subtraction_with_borrow_chain() {
        let a = BigUint::from_hex("10000000000000000").unwrap();
        let b = BigUint::one();
        assert_eq!((&a - &b).to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::one() - BigUint::from(2u64);
    }

    #[test]
    fn checked_sub_returns_none_on_underflow() {
        assert_eq!(BigUint::one().checked_sub(&BigUint::from(2u64)), None);
        assert_eq!(
            BigUint::from(5u64).checked_sub(&BigUint::from(2u64)),
            Some(BigUint::from(3u64))
        );
    }

    #[test]
    fn multiplication_small_values() {
        assert_eq!(
            (BigUint::from(12345u64) * BigUint::from(6789u64)).to_u64(),
            Some(12345 * 6789)
        );
        assert!(
            (BigUint::zero() * BigUint::from(77u64)).is_zero()
        );
    }

    #[test]
    fn multiplication_multi_limb() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = BigUint::from(u64::MAX);
        let sq = a.square();
        let expected = (BigUint::one() << 128) - (BigUint::one() << 65) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn known_product_decimal() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let p = &a * &b;
        assert_eq!(
            p.to_decimal_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn division_exact_and_with_remainder() {
        let a = big("121932631137021795226185032733622923332237463801111263526900");
        let b = big("987654321098765432109876543210");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, big("123456789012345678901234567890"));
        assert!(r.is_zero());

        let (q2, r2) = (&a + BigUint::from(17u64)).div_rem(&b);
        assert_eq!(q2, q);
        assert_eq!(r2, BigUint::from(17u64));
    }

    #[test]
    fn division_by_larger_is_zero() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(7u64);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn division_knuth_add_back_case() {
        // A case crafted to force the rare "add back" branch of Algorithm D:
        // dividend = 0x7fff800000000001_0000000000000000, divisor = 0x8000000000000001
        let a = BigUint::from_hex("7fff8000000000010000000000000000").unwrap();
        let b = BigUint::from_hex("80000000000000010000000000000000").unwrap();
        let small = BigUint::from_hex("8000000000000001").unwrap();
        let (q, r) = a.div_rem(&small);
        assert_eq!(&q * &small + &r, a);
        assert!(r < small);
        let (q2, r2) = b.div_rem(&small);
        assert_eq!(&q2 * &small + &r2, b);
    }

    #[test]
    fn div_rem_u64_matches_generic() {
        let a = big("123456789012345678901234567890123456789");
        let (q1, r1) = a.div_rem_u64(1_000_000_007);
        let (q2, r2) = a.div_rem(&BigUint::from(1_000_000_007u64));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from(r1), r2);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::from(5u64).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("123456789012345678901234567890");
        for shift in [0usize, 1, 7, 63, 64, 65, 129, 300] {
            let shifted = &a << shift;
            assert_eq!(&shifted >> shift, a, "shift {shift}");
            assert_eq!(shifted.bits(), a.bits() + shift);
        }
    }

    #[test]
    fn shr_past_end_is_zero() {
        let a = BigUint::from(0xffu64);
        assert!((&a >> 200).is_zero());
    }

    #[test]
    fn bit_access_and_set() {
        let mut v = BigUint::zero();
        v.set_bit(0, true);
        v.set_bit(100, true);
        assert!(v.bit(0));
        assert!(v.bit(100));
        assert!(!v.bit(50));
        assert_eq!(v.bits(), 101);
        v.set_bit(100, false);
        assert_eq!(v, BigUint::one());
        // Clearing a bit beyond the representation is a no-op.
        v.set_bit(500, false);
        assert_eq!(v, BigUint::one());
    }

    #[test]
    fn trailing_zeros_cases() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!((BigUint::one() << 77).trailing_zeros(), Some(77));
    }

    #[test]
    fn byte_roundtrip_be_and_le() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(v.to_bytes_be(), bytes);
        let w = BigUint::from_bytes_le(&bytes);
        let mut rev = bytes;
        rev.reverse();
        assert_eq!(w.to_bytes_be(), rev);
    }

    #[test]
    fn byte_parsing_strips_leading_zeros() {
        let v = BigUint::from_bytes_be(&[0, 0, 0, 1, 2]);
        assert_eq!(v.to_bytes_be(), vec![1, 2]);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0x0102u64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        let v = BigUint::from(0x010203u64);
        let _ = v.to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        let cases = ["0", "1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"];
        for c in cases {
            assert_eq!(BigUint::from_hex(c).unwrap().to_hex(), c);
        }
    }

    #[test]
    fn parse_decimal_and_prefix() {
        assert_eq!(big("1000000"), BigUint::from(1_000_000u64));
        assert_eq!("0xff".parse::<BigUint>().unwrap(), BigUint::from(255u64));
        assert_eq!("1_000".parse::<BigUint>().unwrap(), BigUint::from(1000u64));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
        assert!(BigUint::from_str_radix("10", 1).is_err());
        assert!(BigUint::from_str_radix("10", 37).is_err());
    }

    #[test]
    fn ordering() {
        let a = big("123456789012345678901234567890");
        let b = big("123456789012345678901234567891");
        assert!(a < b);
        assert!(b > a);
        assert!(a <= a.clone());
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(BigUint::zero().gcd(&BigUint::from(5u64)), BigUint::from(5u64));
        assert_eq!(BigUint::from(5u64).gcd(&BigUint::zero()), BigUint::from(5u64));
        assert_eq!(
            BigUint::from(17u64).gcd(&BigUint::from(13u64)),
            BigUint::one()
        );
        let a = big("123456789012345678901234567890");
        let g = a.gcd(&(&a * BigUint::from(3u64)));
        assert_eq!(g, a);
    }

    #[test]
    fn display_and_debug() {
        let v = BigUint::from(255u64);
        assert_eq!(format!("{v}"), "255");
        assert_eq!(format!("{v:x}"), "ff");
        assert_eq!(format!("{v:?}"), "BigUint(0xff)");
    }

    #[test]
    fn decimal_string_multi_chunk() {
        // A value larger than 10^19 forces the multi-chunk path.
        let v = big("10000000000000000000000000000000000000001");
        assert_eq!(v.to_decimal_string(), "10000000000000000000000000000000000000001");
    }
}
