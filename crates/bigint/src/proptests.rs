//! Property-based tests for the arithmetic core.
//!
//! These check the ring axioms, the Euclidean division invariant and the
//! round-trip properties of the serialisation formats over randomly generated
//! values of up to several hundred bits.

use crate::modular::{mod_inverse, mod_mul, mod_pow};
use crate::BigUint;
use proptest::prelude::*;

/// Strategy producing a random `BigUint` from raw big-endian bytes
/// (0 to 64 bytes, so up to 512 bits).
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

/// Strategy producing a non-zero `BigUint`.
fn arb_nonzero_biguint() -> impl Strategy<Value = BigUint> {
    arb_biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_is_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn addition_is_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn multiplication_is_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn multiplication_distributes_over_addition(
        a in arb_biguint(), b in arb_biguint(), c in arb_biguint()
    ) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn add_then_sub_roundtrips(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!((&a + &b) - &b, a);
    }

    #[test]
    fn division_invariant(a in arb_biguint(), b in arb_nonzero_biguint()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two(a in arb_biguint(), shift in 0usize..200) {
        let shifted = &a << shift;
        let pow2 = BigUint::one() << shift;
        prop_assert_eq!(&shifted, &(&a * &pow2));
        prop_assert_eq!(&shifted >> shift, a);
    }

    #[test]
    fn byte_roundtrip(a in arb_biguint()) {
        let be = a.to_bytes_be();
        prop_assert_eq!(BigUint::from_bytes_be(&be), a.clone());
        if !a.is_zero() {
            prop_assert_ne!(be[0], 0, "no leading zero bytes");
        }
    }

    #[test]
    fn hex_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in arb_biguint()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn comparison_consistent_with_subtraction(a in arb_biguint(), b in arb_biguint()) {
        if a >= b {
            let d = &a - &b;
            prop_assert_eq!(&b + &d, a);
        } else {
            let d = &b - &a;
            prop_assert!(!d.is_zero());
            prop_assert_eq!(&a + &d, b);
        }
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero_biguint(), b in arb_nonzero_biguint()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem_ref(&g).is_zero());
        prop_assert!(b.rem_ref(&g).is_zero());
    }

    #[test]
    fn mod_pow_respects_exponent_addition(
        base in arb_biguint(),
        e1 in 0u64..50,
        e2 in 0u64..50,
        m in arb_nonzero_biguint()
    ) {
        // base^(e1+e2) == base^e1 * base^e2 (mod m)
        let lhs = mod_pow(&base, &BigUint::from(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&base, &BigUint::from(e1), &m),
            &mod_pow(&base, &BigUint::from(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_is_an_inverse(a in arb_nonzero_biguint(), m in arb_nonzero_biguint()) {
        prop_assume!(!m.is_one());
        if let Some(inv) = mod_inverse(&a, &m) {
            prop_assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
            prop_assert!(inv < m);
        } else {
            // If no inverse exists the gcd must be non-trivial.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn bits_matches_value_range(a in arb_nonzero_biguint()) {
        let bits = a.bits();
        prop_assert!(a >= (BigUint::one() << (bits - 1)));
        prop_assert!(a < (BigUint::one() << bits));
    }
}
