//! Probabilistic primality testing and random prime generation.
//!
//! RSA key generation (in `jxta-crypto`) needs large random primes.  This
//! module provides:
//!
//! * [`is_probable_prime`] — Miller–Rabin with a configurable number of
//!   rounds, preceded by trial division against a table of small primes.
//! * [`generate_prime`] — rejection sampling of random odd candidates of a
//!   given bit length until one passes the primality test.
//! * [`generate_safe_prime_candidate`] — a prime `p` with `gcd(p-1, e)` = 1
//!   for a given public exponent, the form RSA key generation needs.

use crate::modular::mod_pow;
use crate::rng;
use crate::BigUint;
use rand::RngCore;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Default number of Miller–Rabin rounds.  40 rounds gives an error
/// probability below 2^-80, which is the conventional choice for RSA key
/// generation.
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 40;

/// Returns `true` if `candidate` is probably prime.
///
/// Runs trial division against [`SMALL_PRIMES`] followed by `rounds` rounds
/// of Miller–Rabin with random bases drawn from `rng`.
pub fn is_probable_prime<R: RngCore + ?Sized>(
    candidate: &BigUint,
    rounds: usize,
    rng: &mut R,
) -> bool {
    if candidate.is_zero() || candidate.is_one() {
        return false;
    }
    // Handle the small primes (and their multiples) outright.
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from(p);
        if candidate == &p_big {
            return true;
        }
        if candidate.rem_ref(&p_big).is_zero() {
            return false;
        }
    }

    // Write candidate - 1 = d * 2^s with d odd.
    let n_minus_1 = candidate - BigUint::one();
    let s = n_minus_1.trailing_zeros().expect("candidate > 1 is odd here");
    let d = &n_minus_1 >> s;

    let two = BigUint::from(2u64);
    let upper = candidate - &two; // bases in [2, candidate - 2]

    'witness: for _ in 0..rounds {
        let a = rng::random_range(rng, &two, &upper);
        let mut x = mod_pow(&a, &d, candidate);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = mod_pow(&x, &two, candidate);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Deterministic convenience check for small values (used in tests and for
/// validating public exponents); equivalent to [`is_probable_prime`] with a
/// fixed internal RNG.
pub fn is_probable_prime_default(candidate: &BigUint) -> bool {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x9e3779b97f4a7c15);
    is_probable_prime(candidate, DEFAULT_MILLER_RABIN_ROUNDS, &mut rng)
}

/// Generates a random probable prime with exactly `bits` significant bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn generate_prime<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut candidate = rng::random_bits(rng, bits);
        // Force odd (except for the trivial 2-bit case where 2 is fine too,
        // but odd candidates keep the loop simple).
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, DEFAULT_MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a probable prime `p` with exactly `bits` bits such that
/// `gcd(p - 1, e) == 1`, the property RSA key generation requires so that the
/// public exponent `e` is invertible modulo `phi(n)`.
pub fn generate_safe_prime_candidate<R: RngCore + ?Sized>(
    rng: &mut R,
    bits: usize,
    e: &BigUint,
) -> BigUint {
    loop {
        let p = generate_prime(rng, bits);
        let p_minus_1 = &p - BigUint::one();
        if p_minus_1.gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn zero_and_one_are_not_prime() {
        assert!(!is_probable_prime_default(&BigUint::zero()));
        assert!(!is_probable_prime_default(&BigUint::one()));
    }

    #[test]
    fn small_primes_detected() {
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 251] {
            assert!(is_probable_prime_default(&BigUint::from(p)), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [4u64, 6, 9, 15, 21, 25, 100, 255, 1001] {
            assert!(!is_probable_prime_default(&BigUint::from(c)), "{c} is composite");
        }
    }

    #[test]
    fn medium_primes_detected() {
        // Primes just above the small-prime table.
        for p in [257u64, 263, 65_537, 1_000_000_007, 2_147_483_647] {
            assert!(is_probable_prime_default(&BigUint::from(p)), "{p} is prime");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 62745] {
            assert!(!is_probable_prime_default(&BigUint::from(c)), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn known_large_primes() {
        // Mersenne primes 2^89 - 1 and 2^127 - 1.
        let m89 = (BigUint::one() << 89) - BigUint::one();
        let m127 = (BigUint::one() << 127) - BigUint::one();
        assert!(is_probable_prime_default(&m89));
        assert!(is_probable_prime_default(&m127));
        // 2^128 - 1 is composite.
        let c = (BigUint::one() << 128) - BigUint::one();
        assert!(!is_probable_prime_default(&c));
    }

    #[test]
    fn generated_primes_have_requested_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(&mut r, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime_default(&p));
            assert!(p.is_odd());
        }
    }

    #[test]
    fn generated_prime_256_bits() {
        let mut r = rng();
        let p = generate_prime(&mut r, 256);
        assert_eq!(p.bits(), 256);
        assert!(is_probable_prime_default(&p));
    }

    #[test]
    fn safe_prime_candidate_coprime_to_exponent() {
        let mut r = rng();
        let e = BigUint::from(65_537u64);
        let p = generate_safe_prime_candidate(&mut r, 64, &e);
        assert!((&p - BigUint::one()).gcd(&e).is_one());
        assert!(is_probable_prime_default(&p));
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn generate_prime_too_small_panics() {
        let mut r = rng();
        let _ = generate_prime(&mut r, 1);
    }
}
