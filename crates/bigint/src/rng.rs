//! Sampling uniformly distributed [`BigUint`] values from a [`rand::RngCore`]
//! source.
//!
//! RSA key generation and the security primitives (random challenges, session
//! identifiers) need uniformly random big integers of a given bit length or
//! below a given bound.  These helpers work with any `RngCore`, so the crypto
//! layer can plug in either the OS entropy source or its own deterministic
//! DRBG for reproducible tests.

use crate::BigUint;
use rand::RngCore;

/// Returns a uniformly random value with exactly `bits` significant bits
/// (i.e. the top bit is always set).  Returns zero when `bits == 0`.
pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    // Clear any excess high bits in the most-significant byte, then force the
    // top bit so the bit length is exact.
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    let mut v = BigUint::from_bytes_be(&buf);
    v.set_bit(bits - 1, true);
    v
}

/// Returns a uniformly random value of *at most* `bits` bits (top bit not
/// forced).
pub fn random_at_most_bits<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    BigUint::from_bytes_be(&buf)
}

/// Returns a uniformly random value in the half-open range `[0, bound)` using
/// rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: RngCore + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be non-zero");
    let bits = bound.bits();
    loop {
        let candidate = random_at_most_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Returns a uniformly random value in the inclusive range `[low, high]`.
///
/// # Panics
///
/// Panics if `low > high`.
pub fn random_range<R: RngCore + ?Sized>(rng: &mut R, low: &BigUint, high: &BigUint) -> BigUint {
    assert!(low <= high, "empty range");
    let span = high - low + BigUint::one();
    low + random_below(rng, &span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed_cafe)
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1usize, 2, 7, 8, 9, 63, 64, 65, 127, 512, 1024] {
            let v = random_bits(&mut r, bits);
            assert_eq!(v.bits(), bits, "requested {bits} bits");
        }
    }

    #[test]
    fn random_bits_zero_is_zero() {
        let mut r = rng();
        assert!(random_bits(&mut r, 0).is_zero());
        assert!(random_at_most_bits(&mut r, 0).is_zero());
    }

    #[test]
    fn random_at_most_bits_never_exceeds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = random_at_most_bits(&mut r, 10);
            assert!(v.bits() <= 10);
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..500 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        let mut r = rng();
        let bound = BigUint::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = random_below(&mut r, &bound).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn random_range_inclusive() {
        let mut r = rng();
        let low = BigUint::from(10u64);
        let high = BigUint::from(12u64);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = random_range(&mut r, &low, &high);
            assert!(v >= low && v <= high);
            seen[(v.to_u64().unwrap() - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn random_below_zero_bound_panics() {
        let mut r = rng();
        let _ = random_below(&mut r, &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_range_empty_panics() {
        let mut r = rng();
        let _ = random_range(&mut r, &BigUint::from(5u64), &BigUint::from(4u64));
    }
}
