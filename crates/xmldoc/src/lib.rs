//! Minimal XML document model with canonicalisation and XMLdsig-style
//! enveloped signatures.
//!
//! JXTA represents every piece of shared metadata — peer advertisements,
//! pipe advertisements, presence notifications, file indexes — as an XML
//! *advertisement*.  The paper secures those advertisements with the
//! XMLdsig-based approach of Arnedo-Moreno & Herrera-Joancomartí (reference
//! \[15\]/\[16\]): an enveloped `<Signature>` element is added to the
//! advertisement so that, unlike JXTA's built-in "signed advertisements"
//! (which wrap the whole document in Base64), **the advertisement keeps its
//! original element type** and remains usable by unmodified code.
//!
//! This crate provides the substrate for that:
//!
//! * [`Element`]/[`Node`] — a small, allocation-friendly XML tree model.
//! * [`parse`](parser::parse) — a namespace-agnostic XML parser sufficient
//!   for JXTA-style documents (elements, attributes, text, CDATA, comments).
//! * [`Element::to_xml`] / [`Element::to_canonical_xml`] — serialisation and
//!   a deterministic canonical form (sorted attributes, no insignificant
//!   whitespace) used as the signing input.
//! * [`dsig`] — enveloped signature creation and verification carrying an
//!   arbitrary `KeyInfo` payload (the peer credential, in the paper's use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsig;
mod element;
pub mod parser;

pub use dsig::{sign_element, verify_element, DsigError, SIGNATURE_ELEMENT};
pub use element::{Element, Node};
pub use parser::{parse, ParseError};

#[cfg(test)]
mod proptests;
