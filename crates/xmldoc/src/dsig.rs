//! XMLdsig-style enveloped signatures over [`Element`] trees.
//!
//! The construction follows the shape of W3C XML-Signature (reference \[16\]
//! of the paper) restricted to what JXTA-Overlay advertisements need:
//!
//! ```text
//! <AnyAdvertisementType ...>            <- original element type preserved
//!   ... original content ...
//!   <Signature>
//!     <SignedInfo>
//!       <CanonicalizationMethod Algorithm="jxta-c14n"/>
//!       <SignatureMethod Algorithm="rsa-pkcs1-sha256"/>
//!       <Reference URI="">
//!         <Transform Algorithm="enveloped-signature"/>
//!         <DigestMethod Algorithm="sha256"/>
//!         <DigestValue>Base64(SHA-256(c14n(element without Signature)))</DigestValue>
//!       </Reference>
//!     </SignedInfo>
//!     <SignatureValue>Base64(RSA-PKCS1-SHA256(c14n(SignedInfo)))</SignatureValue>
//!     <KeyInfo>Base64(application-defined key material)</KeyInfo>
//!   </Signature>
//! </AnyAdvertisementType>
//! ```
//!
//! In the paper's use the `KeyInfo` payload is the peer's broker-issued
//! credential, so validating a pipe advertisement simultaneously distributes
//! an authentic copy of the sender's public key — that is the "transparent
//! method for authentic key transport" of Section 4.
//!
//! The signature is *enveloped*: the digest is computed over the canonical
//! form of the element with every `<Signature>` child removed, so adding the
//! signature does not invalidate it and, crucially, the advertisement keeps
//! its original root element name (unlike JXTA's Base64-wrapping approach).

use crate::element::Element;
use jxta_crypto::base64;
use jxta_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use jxta_crypto::sha2::sha256;
use jxta_crypto::CryptoError;

/// Name of the enveloped signature element.
pub const SIGNATURE_ELEMENT: &str = "Signature";

/// Identifier of the canonicalisation used for digesting.
pub const C14N_ALGORITHM: &str = "jxta-c14n";
/// Identifier of the signature algorithm.
pub const SIGNATURE_ALGORITHM: &str = "rsa-pkcs1-sha256";
/// Identifier of the digest algorithm.
pub const DIGEST_ALGORITHM: &str = "sha256";

/// Errors produced when creating or verifying enveloped signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsigError {
    /// The element carries no `<Signature>` child.
    MissingSignature,
    /// The signature structure is missing a required child or attribute.
    MalformedSignature(String),
    /// The digest over the element content does not match `DigestValue`
    /// (the advertisement body was modified after signing).
    DigestMismatch,
    /// The cryptographic signature over `SignedInfo` does not verify
    /// (wrong key or tampered signature block).
    SignatureInvalid,
    /// An algorithm identifier in the signature is not supported.
    UnsupportedAlgorithm(String),
    /// An underlying crypto operation failed.
    Crypto(CryptoError),
}

impl std::fmt::Display for DsigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsigError::MissingSignature => write!(f, "element has no Signature child"),
            DsigError::MalformedSignature(what) => write!(f, "malformed signature: {what}"),
            DsigError::DigestMismatch => write!(f, "digest mismatch: element content was modified"),
            DsigError::SignatureInvalid => write!(f, "signature verification failed"),
            DsigError::UnsupportedAlgorithm(a) => write!(f, "unsupported algorithm: {a}"),
            DsigError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for DsigError {}

impl From<CryptoError> for DsigError {
    fn from(e: CryptoError) -> Self {
        DsigError::Crypto(e)
    }
}

/// Computes the digest input: the canonical form of `element` with all
/// `<Signature>` children removed.
fn digest_target(element: &Element) -> Vec<u8> {
    let mut stripped = element.clone();
    stripped.remove_children(SIGNATURE_ELEMENT);
    stripped.to_canonical_xml().into_bytes()
}

/// Builds the `SignedInfo` element for a given digest value.
fn build_signed_info(digest: &[u8]) -> Element {
    Element::new("SignedInfo")
        .with_child(Element::new("CanonicalizationMethod").with_attribute("Algorithm", C14N_ALGORITHM))
        .with_child(Element::new("SignatureMethod").with_attribute("Algorithm", SIGNATURE_ALGORITHM))
        .with_child(
            Element::new("Reference")
                .with_attribute("URI", "")
                .with_child(Element::new("Transform").with_attribute("Algorithm", "enveloped-signature"))
                .with_child(Element::new("DigestMethod").with_attribute("Algorithm", DIGEST_ALGORITHM))
                .with_child(Element::new("DigestValue").with_text(base64::encode(digest))),
        )
}

/// Signs `element` in place, appending an enveloped `<Signature>` child.
///
/// `key_info` is carried verbatim (Base64-encoded) inside `<KeyInfo>`; the
/// security layer stores the signer's credential there.  Any existing
/// signature children are replaced.
pub fn sign_element(
    element: &mut Element,
    signer: &RsaPrivateKey,
    key_info: &[u8],
) -> Result<(), DsigError> {
    element.remove_children(SIGNATURE_ELEMENT);

    let digest = sha256(&digest_target(element));
    let signed_info = build_signed_info(&digest);
    let signature_value = signer.sign(signed_info.to_canonical_xml().as_bytes())?;

    let signature = Element::new(SIGNATURE_ELEMENT)
        .with_child(signed_info)
        .with_child(Element::new("SignatureValue").with_text(base64::encode(&signature_value)))
        .with_child(Element::new("KeyInfo").with_text(base64::encode(key_info)));
    element.push_child(signature);
    Ok(())
}

/// Returns the raw `KeyInfo` payload of the first signature child, if any.
pub fn key_info(element: &Element) -> Result<Vec<u8>, DsigError> {
    let signature = element
        .child(SIGNATURE_ELEMENT)
        .ok_or(DsigError::MissingSignature)?;
    let ki = signature
        .child("KeyInfo")
        .ok_or_else(|| DsigError::MalformedSignature("missing KeyInfo".into()))?;
    base64::decode(&ki.text())
        .map_err(|e| DsigError::MalformedSignature(format!("KeyInfo base64: {e}")))
}

/// Verifies the enveloped signature of `element` against `signer_key`.
///
/// Checks, in order: structural well-formedness, supported algorithm
/// identifiers, the content digest (integrity of the advertisement body) and
/// the RSA signature over `SignedInfo` (authenticity of the signer).
pub fn verify_element(element: &Element, signer_key: &RsaPublicKey) -> Result<(), DsigError> {
    verify_element_with(element, signer_key, |key, message, signature| {
        key.verify(message, signature)
    })
}

/// Like [`verify_element`], but delegating the final RSA check to `verify`,
/// so callers can route it through a
/// [`jxta_crypto::sigcache::VerifiedSigCache`] (or instrument it).  All the
/// structural checks and the content-digest comparison still run here — only
/// the public-key operation itself is delegated.
pub fn verify_element_with<F>(
    element: &Element,
    signer_key: &RsaPublicKey,
    verify: F,
) -> Result<(), DsigError>
where
    F: FnOnce(&RsaPublicKey, &[u8], &[u8]) -> Result<(), jxta_crypto::CryptoError>,
{
    let signature = element
        .child(SIGNATURE_ELEMENT)
        .ok_or(DsigError::MissingSignature)?;

    let signed_info = signature
        .child("SignedInfo")
        .ok_or_else(|| DsigError::MalformedSignature("missing SignedInfo".into()))?;

    // Algorithm identifiers must match what we produce.
    let sig_method = signed_info
        .child("SignatureMethod")
        .and_then(|e| e.attribute("Algorithm"))
        .ok_or_else(|| DsigError::MalformedSignature("missing SignatureMethod".into()))?;
    if sig_method != SIGNATURE_ALGORITHM {
        return Err(DsigError::UnsupportedAlgorithm(sig_method.to_string()));
    }
    let c14n = signed_info
        .child("CanonicalizationMethod")
        .and_then(|e| e.attribute("Algorithm"))
        .ok_or_else(|| DsigError::MalformedSignature("missing CanonicalizationMethod".into()))?;
    if c14n != C14N_ALGORITHM {
        return Err(DsigError::UnsupportedAlgorithm(c14n.to_string()));
    }

    let reference = signed_info
        .child("Reference")
        .ok_or_else(|| DsigError::MalformedSignature("missing Reference".into()))?;
    let digest_method = reference
        .child("DigestMethod")
        .and_then(|e| e.attribute("Algorithm"))
        .ok_or_else(|| DsigError::MalformedSignature("missing DigestMethod".into()))?;
    if digest_method != DIGEST_ALGORITHM {
        return Err(DsigError::UnsupportedAlgorithm(digest_method.to_string()));
    }
    let digest_value = reference
        .child("DigestValue")
        .ok_or_else(|| DsigError::MalformedSignature("missing DigestValue".into()))?
        .text();
    let claimed_digest = base64::decode(&digest_value)
        .map_err(|e| DsigError::MalformedSignature(format!("DigestValue base64: {e}")))?;

    // 1. Content integrity.
    let actual_digest = sha256(&digest_target(element));
    if claimed_digest != actual_digest {
        return Err(DsigError::DigestMismatch);
    }

    // 2. Signature over SignedInfo.
    let signature_value = signature
        .child("SignatureValue")
        .ok_or_else(|| DsigError::MalformedSignature("missing SignatureValue".into()))?
        .text();
    let signature_bytes = base64::decode(&signature_value)
        .map_err(|e| DsigError::MalformedSignature(format!("SignatureValue base64: {e}")))?;

    verify(
        signer_key,
        signed_info.to_canonical_xml().as_bytes(),
        &signature_bytes,
    )
    .map_err(|_| DsigError::SignatureInvalid)
}

/// Returns `true` if the element carries a `<Signature>` child.
pub fn is_signed(element: &Element) -> bool {
    element.child(SIGNATURE_ELEMENT).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use jxta_crypto::drbg::HmacDrbg;
    use jxta_crypto::rsa::RsaKeyPair;
    use std::sync::OnceLock;

    fn keypair() -> &'static RsaKeyPair {
        static KP: OnceLock<RsaKeyPair> = OnceLock::new();
        KP.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed_u64(0xD516);
            RsaKeyPair::generate(&mut rng, 512).unwrap()
        })
    }

    fn other_keypair() -> &'static RsaKeyPair {
        static KP: OnceLock<RsaKeyPair> = OnceLock::new();
        KP.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed_u64(0xBAD);
            RsaKeyPair::generate(&mut rng, 512).unwrap()
        })
    }

    fn sample_advertisement() -> Element {
        Element::new("PipeAdvertisement")
            .with_attribute("xmlns", "jxta:overlay")
            .with_child(Element::new("Id").with_text("urn:jxta:pipe:77"))
            .with_child(Element::new("Type").with_text("JxtaUnicast"))
            .with_child(Element::new("Name").with_text("peer-inbox"))
    }

    #[test]
    fn sign_and_verify_roundtrip() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"credential-bytes").unwrap();
        assert!(is_signed(&adv));
        verify_element(&adv, &kp.public).unwrap();
        assert_eq!(key_info(&adv).unwrap(), b"credential-bytes");
    }

    #[test]
    fn original_element_type_is_preserved() {
        // The paper's key argument versus JXTA's Base64-wrapped signed
        // advertisements: the signed document keeps its root element name.
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        assert_eq!(adv.name(), "PipeAdvertisement");
        assert_eq!(adv.child_text("Id"), Some("urn:jxta:pipe:77".to_string()));
    }

    #[test]
    fn signature_survives_xml_roundtrip() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        let xml = adv.to_xml();
        let parsed = parse(&xml).unwrap();
        verify_element(&parsed, &kp.public).unwrap();
        // And through the canonical form as well.
        let parsed_canon = parse(&adv.to_canonical_xml()).unwrap();
        verify_element(&parsed_canon, &kp.public).unwrap();
    }

    #[test]
    fn tampered_content_is_detected() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        adv.child_mut("Name").unwrap().push_text("-evil");
        assert_eq!(verify_element(&adv, &kp.public), Err(DsigError::DigestMismatch));
    }

    #[test]
    fn tampered_attribute_is_detected() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        adv.set_attribute("xmlns", "jxta:forged");
        assert_eq!(verify_element(&adv, &kp.public), Err(DsigError::DigestMismatch));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        assert_eq!(
            verify_element(&adv, &other_keypair().public),
            Err(DsigError::SignatureInvalid)
        );
    }

    #[test]
    fn swapped_signature_block_is_rejected() {
        // Take a valid signature from one advertisement and graft it onto a
        // different advertisement: the digest no longer matches.
        let kp = keypair();
        let mut adv1 = sample_advertisement();
        sign_element(&mut adv1, &kp.private, b"cred").unwrap();
        let sig_block = adv1.child(SIGNATURE_ELEMENT).unwrap().clone();

        let mut adv2 = sample_advertisement();
        adv2.child_mut("Name").unwrap().push_text("-other");
        adv2.push_child(sig_block);
        assert_eq!(verify_element(&adv2, &kp.public), Err(DsigError::DigestMismatch));
    }

    #[test]
    fn forged_digest_without_key_is_rejected() {
        // An attacker who fixes up DigestValue still cannot forge
        // SignatureValue without the private key.
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        adv.child_mut("Name").unwrap().push_text("-evil");
        // Recompute the digest like an attacker would.
        let new_digest = sha256(&digest_target(&adv));
        let sig = adv.child_mut(SIGNATURE_ELEMENT).unwrap();
        let reference = sig.child_mut("SignedInfo").unwrap().child_mut("Reference").unwrap();
        let dv = reference.child_mut("DigestValue").unwrap();
        *dv = Element::new("DigestValue").with_text(base64::encode(&new_digest));
        assert_eq!(verify_element(&adv, &kp.public), Err(DsigError::SignatureInvalid));
    }

    #[test]
    fn missing_signature_reported() {
        let adv = sample_advertisement();
        assert_eq!(verify_element(&adv, &keypair().public), Err(DsigError::MissingSignature));
        assert!(!is_signed(&adv));
        assert_eq!(key_info(&adv), Err(DsigError::MissingSignature));
    }

    #[test]
    fn malformed_signature_structures_reported() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();

        // Remove SignedInfo.
        let mut broken = adv.clone();
        broken.child_mut(SIGNATURE_ELEMENT).unwrap().remove_children("SignedInfo");
        assert!(matches!(
            verify_element(&broken, &kp.public),
            Err(DsigError::MalformedSignature(_))
        ));

        // Remove SignatureValue.
        let mut broken = adv.clone();
        broken.child_mut(SIGNATURE_ELEMENT).unwrap().remove_children("SignatureValue");
        assert!(matches!(
            verify_element(&broken, &kp.public),
            Err(DsigError::MalformedSignature(_))
        ));

        // Corrupt the Base64 of KeyInfo.
        let mut broken = adv.clone();
        let sig = broken.child_mut(SIGNATURE_ELEMENT).unwrap();
        sig.remove_children("KeyInfo");
        sig.push_child(Element::new("KeyInfo").with_text("!!!not-base64!!!"));
        assert!(matches!(key_info(&broken), Err(DsigError::MalformedSignature(_))));
    }

    #[test]
    fn unsupported_algorithm_reported() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred").unwrap();
        let sig = adv.child_mut(SIGNATURE_ELEMENT).unwrap();
        let si = sig.child_mut("SignedInfo").unwrap();
        si.child_mut("SignatureMethod")
            .unwrap()
            .set_attribute("Algorithm", "rsa-md5");
        assert_eq!(
            verify_element(&adv, &kp.public),
            Err(DsigError::UnsupportedAlgorithm("rsa-md5".to_string()))
        );
    }

    #[test]
    fn resigning_replaces_old_signature() {
        let kp = keypair();
        let mut adv = sample_advertisement();
        sign_element(&mut adv, &kp.private, b"cred-1").unwrap();
        sign_element(&mut adv, &kp.private, b"cred-2").unwrap();
        let sig_count = adv.child_elements().filter(|e| e.name() == SIGNATURE_ELEMENT).count();
        assert_eq!(sig_count, 1);
        verify_element(&adv, &kp.public).unwrap();
        assert_eq!(key_info(&adv).unwrap(), b"cred-2");
    }

    #[test]
    fn error_display_messages() {
        assert!(DsigError::MissingSignature.to_string().contains("no Signature"));
        assert!(DsigError::DigestMismatch.to_string().contains("modified"));
        assert!(DsigError::UnsupportedAlgorithm("x".into()).to_string().contains('x'));
    }
}
