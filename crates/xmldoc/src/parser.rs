//! A small recursive-descent XML parser.
//!
//! The parser supports the subset of XML that JXTA-style advertisements use:
//! elements, attributes (single or double quoted), text content with the
//! five predefined entities plus decimal/hex character references, CDATA
//! sections, comments, processing instructions and an optional XML
//! declaration.  It does not implement DTDs, namespaces-aware validation or
//! external entities (the latter being a deliberate security choice: entity
//! expansion attacks simply cannot happen).

use crate::element::Element;

/// Error produced when parsing malformed XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML document (or fragment with a single root element) into an
/// [`Element`] tree.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the root.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Consume a simple (bracket-free) DOCTYPE declaration.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, marker: &str) -> Result<(), ParseError> {
        let remaining = &self.bytes[self.pos..];
        match find_subsequence(remaining, marker.as_bytes()) {
            Some(idx) => {
                self.pos += idx + marker.len();
                Ok(())
            }
            None => Err(self.error(&format!("unterminated construct (expected {marker:?})"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.advance(1);
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.advance(1);
                    break;
                }
                Some(b'/') => {
                    if self.starts_with("/>") {
                        self.advance(2);
                        return Ok(element);
                    }
                    return Err(self.error("unexpected '/'"));
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' after attribute name"));
                    }
                    self.advance(1);
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.advance(1);
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.advance(1);
                    element.set_attribute(attr_name, unescape(&raw, self.pos)?);
                }
                None => return Err(self.error("unexpected end of input in start tag")),
            }
        }

        // Children until the matching end tag.
        loop {
            if self.starts_with("</") {
                self.advance(2);
                let end_name = self.parse_name()?;
                if end_name != element.name() {
                    return Err(self.error(&format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        element.name(),
                        end_name
                    )));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' to close end tag"));
                }
                self.advance(1);
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.advance("<![CDATA[".len());
                let remaining = &self.bytes[self.pos..];
                let end = find_subsequence(remaining, b"]]>")
                    .ok_or_else(|| self.error("unterminated CDATA section"))?;
                let text = String::from_utf8_lossy(&remaining[..end]).into_owned();
                element.push_text(text);
                self.pos += end + 3;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.push_child(child);
            } else if self.peek().is_some() {
                // Text content up to the next '<'.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                let text = unescape(&raw, start)?;
                // Skip pure-whitespace runs between elements; they are
                // formatting, not data.
                if !text.trim().is_empty() {
                    element.push_text(text);
                }
            } else {
                return Err(self.error("unexpected end of input inside element"));
            }
        }
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Expands the predefined entities and numeric character references.
fn unescape(raw: &str, offset: usize) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let mut entity = String::new();
        let mut terminated = false;
        for (_, ec) in chars.by_ref() {
            if ec == ';' {
                terminated = true;
                break;
            }
            entity.push(ec);
            if entity.len() > 10 {
                break;
            }
        }
        if !terminated {
            return Err(ParseError {
                offset,
                message: format!("unterminated entity reference '&{entity}'"),
            });
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                let code = if let Some(hex) = other.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = other.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        return Err(ParseError {
                            offset,
                            message: format!("unknown entity '&{other};'"),
                        })
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_element() {
        let e = parse("<Msg>hello</Msg>").unwrap();
        assert_eq!(e.name(), "Msg");
        assert_eq!(e.text(), "hello");
    }

    #[test]
    fn parse_self_closing_with_attributes() {
        let e = parse(r#"<Presence status="online" peer='p1'/>"#).unwrap();
        assert_eq!(e.attribute("status"), Some("online"));
        assert_eq!(e.attribute("peer"), Some("p1"));
        assert!(e.children().is_empty());
    }

    #[test]
    fn parse_nested_structure() {
        let xml = r#"
            <PipeAdvertisement xmlns="jxta:overlay">
              <Id>urn:jxta:pipe:42</Id>
              <Type>JxtaUnicast</Type>
              <Name>chat</Name>
            </PipeAdvertisement>"#;
        let e = parse(xml).unwrap();
        assert_eq!(e.name(), "PipeAdvertisement");
        assert_eq!(e.child_elements().count(), 3);
        assert_eq!(e.child_text("Id"), Some("urn:jxta:pipe:42".to_string()));
    }

    #[test]
    fn parse_with_declaration_comment_and_doctype() {
        let xml = "<?xml version=\"1.0\"?>\n<!DOCTYPE jxta>\n<!-- an advert -->\n<A><B/></A>\n<!-- done -->";
        let e = parse(xml).unwrap();
        assert_eq!(e.name(), "A");
        assert!(e.child("B").is_some());
    }

    #[test]
    fn parse_entities_and_char_refs() {
        let e = parse("<t a=\"1 &lt; 2\">&amp;&gt;&quot;&apos;&#65;&#x42;</t>").unwrap();
        assert_eq!(e.attribute("a"), Some("1 < 2"));
        assert_eq!(e.text(), "&>\"'AB");
    }

    #[test]
    fn parse_cdata() {
        let e = parse("<t><![CDATA[<not> & parsed]]></t>").unwrap();
        assert_eq!(e.text(), "<not> & parsed");
    }

    #[test]
    fn roundtrip_through_serialisation() {
        let original = Element::new("FileIndex")
            .with_attribute("owner", "peer <1>")
            .with_child(Element::new("Entry").with_attribute("name", "a&b.txt").with_text("123"))
            .with_child(Element::new("Entry").with_attribute("name", "c.txt").with_text("456"));
        let xml = original.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, original);
        // Canonical form also survives a reparse.
        let parsed_canon = parse(&original.to_canonical_xml()).unwrap();
        assert_eq!(parsed_canon.to_canonical_xml(), original.to_canonical_xml());
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let e = parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        assert_eq!(e.children().len(), 2);
    }

    #[test]
    fn mixed_content_text_is_kept() {
        let e = parse("<a>hello <b>world</b></a>").unwrap();
        assert_eq!(e.text(), "hello ");
        assert_eq!(e.child_text("b"), Some("world".to_string()));
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn error_on_unterminated_element() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a").is_err());
    }

    #[test]
    fn error_on_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn error_on_bad_attribute_syntax() {
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a x=\"1/>").is_err());
        assert!(parse("<a x>").is_err());
    }

    #[test]
    fn error_on_unknown_entity() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"));
        assert!(parse("<a>&unterminated</a>").is_err());
    }

    #[test]
    fn error_display_contains_offset() {
        let err = parse("<a><b></a></b>").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("byte"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }
}
