//! Property-based tests for the XML model, parser and signature layer.

use crate::dsig::{sign_element, verify_element, DsigError};
use crate::element::Element;
use crate::parser::parse;
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::rsa::RsaKeyPair;
use proptest::prelude::*;
use std::sync::OnceLock;

fn keypair() -> &'static RsaKeyPair {
    static KP: OnceLock<RsaKeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = HmacDrbg::from_seed_u64(0x11223344);
        RsaKeyPair::generate(&mut rng, 512).unwrap()
    })
}

/// Tag/attribute names: ASCII identifiers.
fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,12}"
}

/// Text content including characters that need escaping.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just('é'),
            Just('本'),
        ],
        1..40,
    )
    .prop_map(|chars| chars.into_iter().collect())
    .prop_filter("non-blank so the parser keeps the text node", |s: &String| {
        !s.trim().is_empty()
    })
}

/// A small random element tree (depth <= 3).
fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), proptest::option::of(arb_text()), proptest::collection::vec((arb_name(), arb_text()), 0..3))
        .prop_map(|(name, text, attrs)| {
            let mut e = Element::new(name);
            for (an, av) in attrs {
                e.set_attribute(an, av);
            }
            if let Some(t) = text {
                e.push_text(t);
            }
            e
        });
    leaf.prop_recursive(2, 16, 4, move |inner| {
        (arb_name(), proptest::collection::vec(inner, 0..4), proptest::collection::vec((arb_name(), arb_text()), 0..3))
            .prop_map(|(name, children, attrs)| {
                let mut e = Element::new(name);
                for (an, av) in attrs {
                    e.set_attribute(an, av);
                }
                for c in children {
                    e.push_child(c);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serialise_parse_roundtrip(e in arb_element()) {
        let parsed = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn canonical_form_is_stable_under_reparse(e in arb_element()) {
        let c1 = e.to_canonical_xml();
        let reparsed = parse(&c1).unwrap();
        prop_assert_eq!(reparsed.to_canonical_xml(), c1);
    }

    #[test]
    fn canonical_form_ignores_attribute_insertion_order(
        name in arb_name(),
        attrs in proptest::collection::vec((arb_name(), arb_text()), 2..6),
    ) {
        let mut forward = Element::new(name.clone());
        for (n, v) in &attrs {
            forward.set_attribute(n.clone(), v.clone());
        }
        let mut reverse = Element::new(name);
        for (n, v) in attrs.iter().rev() {
            reverse.set_attribute(n.clone(), v.clone());
        }
        prop_assert_eq!(forward.to_canonical_xml(), reverse.to_canonical_xml());
    }

    #[test]
    fn signed_elements_always_verify_and_detect_tampering(
        e in arb_element(),
        key_info in proptest::collection::vec(any::<u8>(), 0..64),
        extra_text in arb_text(),
    ) {
        let kp = keypair();
        let mut signed = e.clone();
        sign_element(&mut signed, &kp.private, &key_info).unwrap();
        prop_assert_eq!(verify_element(&signed, &kp.public), Ok(()));
        prop_assert_eq!(crate::dsig::key_info(&signed).unwrap(), key_info);

        // Any added text child invalidates the digest.
        let mut tampered = signed.clone();
        tampered.push_text(extra_text);
        prop_assert_eq!(verify_element(&tampered, &kp.public), Err(DsigError::DigestMismatch));
    }

    #[test]
    fn signatures_survive_serialisation(e in arb_element()) {
        let kp = keypair();
        let mut signed = e;
        sign_element(&mut signed, &kp.private, b"ki").unwrap();
        let reparsed = parse(&signed.to_xml()).unwrap();
        prop_assert_eq!(verify_element(&reparsed, &kp.public), Ok(()));
    }
}
