//! The XML tree model: [`Element`] and [`Node`].

use std::fmt;

/// A node in an XML document: either a child element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A text node (already unescaped).
    Text(String),
}

/// An XML element with attributes and child nodes.
///
/// Attributes preserve insertion order for plain serialisation but are
/// sorted by name in the canonical form, so signing is independent of the
/// order in which a peer happened to add them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The element's tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the element (used by tests to simulate advertisement forgery).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds or replaces an attribute and returns `self` for chaining.
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attribute(name, value);
        self
    }

    /// Adds a child element and returns `self` for chaining.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child and returns `self` for chaining.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(attr) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            attr.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Returns an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in insertion order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// All child nodes.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Iterates over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Finds the first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Finds the first child element with the given tag name, mutably.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Removes every child element with the given name, returning how many
    /// were removed.
    pub fn remove_children(&mut self, name: &str) -> usize {
        let before = self.children.len();
        self.children.retain(|n| match n {
            Node::Element(e) => e.name != name,
            Node::Text(_) => true,
        });
        before - self.children.len()
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Convenience: the text of a named child element, if present.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(|c| c.text())
    }

    /// Serialises the element as XML with an `<?xml ... ?>` declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write(&mut out, false);
        out
    }

    /// Serialises the element as XML (no declaration, attributes in
    /// insertion order).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, false);
        out
    }

    /// Serialises the element in canonical form: attributes sorted by name,
    /// no insignificant whitespace, empty elements written as start/end tag
    /// pairs.  This is the byte string that gets hashed and signed.
    pub fn to_canonical_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    fn write(&self, out: &mut String, canonical: bool) {
        out.push('<');
        out.push_str(&self.name);
        if canonical {
            let mut attrs: Vec<&(String, String)> = self.attributes.iter().collect();
            attrs.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, value) in attrs {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&escape_attribute(value));
                out.push('"');
            }
        } else {
            for (name, value) in &self.attributes {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&escape_attribute(value));
                out.push('"');
            }
        }
        if self.children.is_empty() && !canonical {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Element(e) => e.write(out, canonical),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (`&`, `<`, `>`, `"`, `'`).
pub fn escape_attribute(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("PipeAdvertisement")
            .with_attribute("xmlns", "jxta:overlay")
            .with_attribute("type", "JxtaUnicast")
            .with_child(
                Element::new("Id").with_text("urn:jxta:pipe:1234"),
            )
            .with_child(Element::new("Name").with_text("group-chat"))
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.name(), "PipeAdvertisement");
        assert_eq!(e.attribute("type"), Some("JxtaUnicast"));
        assert_eq!(e.attribute("missing"), None);
        assert_eq!(e.child("Id").unwrap().text(), "urn:jxta:pipe:1234");
        assert_eq!(e.child_text("Name"), Some("group-chat".to_string()));
        assert_eq!(e.child_text("Missing"), None);
        assert_eq!(e.child_elements().count(), 2);
    }

    #[test]
    fn set_attribute_replaces_existing() {
        let mut e = Element::new("x").with_attribute("a", "1");
        e.set_attribute("a", "2");
        e.set_attribute("b", "3");
        assert_eq!(e.attribute("a"), Some("2"));
        assert_eq!(e.attributes().len(), 2);
    }

    #[test]
    fn remove_children_by_name() {
        let mut e = sample();
        e.push_child(Element::new("Name").with_text("duplicate"));
        assert_eq!(e.remove_children("Name"), 2);
        assert!(e.child("Name").is_none());
        assert_eq!(e.remove_children("Name"), 0);
        // Text nodes survive removal.
        let mut t = Element::new("x").with_text("keep me");
        t.push_child(Element::new("gone"));
        t.remove_children("gone");
        assert_eq!(t.text(), "keep me");
    }

    #[test]
    fn serialisation_basic() {
        let e = Element::new("Msg")
            .with_attribute("to", "peer-1")
            .with_text("hello");
        assert_eq!(e.to_xml(), "<Msg to=\"peer-1\">hello</Msg>");
        assert!(e.to_document().starts_with("<?xml"));
    }

    #[test]
    fn empty_element_short_form_vs_canonical() {
        let e = Element::new("Presence").with_attribute("status", "online");
        assert_eq!(e.to_xml(), "<Presence status=\"online\"/>");
        assert_eq!(e.to_canonical_xml(), "<Presence status=\"online\"></Presence>");
    }

    #[test]
    fn canonical_form_sorts_attributes() {
        let a = Element::new("x")
            .with_attribute("zeta", "1")
            .with_attribute("alpha", "2");
        let b = Element::new("x")
            .with_attribute("alpha", "2")
            .with_attribute("zeta", "1");
        assert_ne!(a.to_xml(), b.to_xml());
        assert_eq!(a.to_canonical_xml(), b.to_canonical_xml());
        assert_eq!(a.to_canonical_xml(), "<x alpha=\"2\" zeta=\"1\"></x>");
    }

    #[test]
    fn escaping_in_text_and_attributes() {
        let e = Element::new("m")
            .with_attribute("a", "x < \"y\" & 'z'")
            .with_text("1 < 2 & 3 > 2");
        let xml = e.to_xml();
        assert!(xml.contains("a=\"x &lt; &quot;y&quot; &amp; &apos;z&apos;\""));
        assert!(xml.contains(">1 &lt; 2 &amp; 3 &gt; 2<"));
    }

    #[test]
    fn text_concatenates_only_direct_text() {
        let e = Element::new("outer")
            .with_text("a")
            .with_child(Element::new("inner").with_text("X"))
            .with_text("b");
        assert_eq!(e.text(), "ab");
    }

    #[test]
    fn display_matches_to_xml() {
        let e = sample();
        assert_eq!(format!("{e}"), e.to_xml());
    }

    #[test]
    fn child_mut_allows_in_place_edit() {
        let mut e = sample();
        e.child_mut("Name").unwrap().push_text("-v2");
        assert_eq!(e.child_text("Name"), Some("group-chat-v2".to_string()));
        assert!(e.child_mut("Nope").is_none());
    }

    #[test]
    fn set_name_changes_tag() {
        let mut e = Element::new("Original");
        e.set_name("Forged");
        assert_eq!(e.name(), "Forged");
        assert!(e.to_xml().starts_with("<Forged"));
    }
}
