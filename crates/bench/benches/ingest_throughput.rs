//! E6 — broker ingest throughput: the laned ingress pipeline and the
//! verified-signature cache against the classic single-thread loop, on a
//! verification-heavy signed-publish workload (broker_fanout-style sweep:
//! clients × verify workers × apply lanes × cache on/off).
//!
//! Before the Criterion timings, the bench runs the full sweep once and
//! emits the machine-readable `BENCH_6.json` at the workspace root — the
//! second point of the repo's recorded performance trajectory.  The
//! headline acceptance numbers live there: pipelined+cached throughput vs
//! the inline cached row (> 1×, the PR 5 regression fixed), vs the
//! single-thread uncached baseline (≥ 2×), and the gossip/repair-phase
//! cache hit rate (> 50%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta_bench::{
    format_ingest_report, measure_ingest_throughput, summarize_ingest, write_bench6_json,
    ExperimentConfig,
};

fn run_sweep() {
    let config = ExperimentConfig::default();
    let mut rows = Vec::new();
    for clients in [8usize, 16] {
        for (verify_workers, apply_lanes) in
            [(0usize, None), (4, Some(1)), (4, None)]
        {
            for cache in [false, true] {
                rows.push(measure_ingest_throughput(
                    &config,
                    clients,
                    verify_workers,
                    apply_lanes,
                    cache,
                    160,
                ));
            }
        }
    }
    let result = summarize_ingest(rows);
    eprintln!("{}", format_ingest_report(&result));
    match write_bench6_json(&result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(error) => eprintln!("could not write BENCH_6.json: {error}"),
    }
}

fn bench_ingest_throughput(c: &mut Criterion) {
    run_sweep();

    // Criterion timings over a smaller configuration (each iteration builds
    // a fresh 2-broker deployment, so the samples are deliberately few).
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (verify_workers, apply_lanes, cache, label) in [
        (0usize, None, false, "single-thread"),
        (0, None, true, "cached"),
        (4, Some(1), true, "serialized-apply-cached"),
        (4, None, true, "laned-cached"),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 4), &(), |b, ()| {
            b.iter(|| {
                measure_ingest_throughput(&config, 4, verify_workers, apply_lanes, cache, 4)
                    .msgs_per_sec
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput);
criterion_main!(benches);
