//! A4 — federation ablation: cost of a cross-broker secure message as the
//! backbone grows, sweeping broker count × client count.
//!
//! Broker count 1 is the single-broker baseline (the relay resolves
//! locally); larger backbones add the inter-broker hop and the gossip-kept
//! replicated index.  The measured primitive is `secureMsgPeerRelayed` from
//! a client homed at the first broker to one homed at the last.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta_bench::{build_federated_world, make_payload, measure_cross_broker_message, ExperimentConfig};

fn bench_broker_fanout(c: &mut Criterion) {
    let payload = make_payload(1024);
    let mut group = c.benchmark_group("broker_fanout");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for broker_count in [1usize, 2, 4] {
        for n_clients in [4usize, 8] {
            let config = ExperimentConfig::default();
            let mut world = build_federated_world(&config, broker_count, n_clients);
            group.bench_with_input(
                BenchmarkId::new(format!("brokers-{broker_count}"), n_clients),
                &payload,
                |b, payload| b.iter(|| measure_cross_broker_message(&mut world, payload)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_broker_fanout);
criterion_main!(benches);
