//! A4 — federation ablation: cost of a cross-broker secure message as the
//! backbone grows, sweeping broker count × client count × replication mode.
//!
//! Broker count 1 is the single-broker baseline (the relay resolves
//! locally); larger backbones add the inter-broker hop and the replicated
//! index — fully replicated (`full`) or partitioned across the consistent-
//! hash shard ring with K=2 replicas per entry (`k2`), in which case a
//! lookup may take an extra `ShardQuery` hop to an owning replica.  The
//! measured primitive is `secureMsgPeerRelayed` from a client homed at the
//! first broker to one homed at the last.
//!
//! Before the timing sweep the bench prints the sharding scale table: the
//! per-broker index size and the backbone gossip message count for the same
//! publish workload under full replication (O(N) in the broker count) and
//! under K=2 sharding (O(K)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta_bench::{
    build_federated_world_with_replication, make_payload, measure_cross_broker_message,
    measure_shard_scaling, ExperimentConfig,
};

fn print_scaling_table() {
    eprintln!("sharding scale (64 publishes): brokers | mode | max entries/broker | backbone msgs");
    for broker_count in [2usize, 4, 8] {
        for replication in [None, Some(2)] {
            let row = measure_shard_scaling(broker_count, replication, 64);
            eprintln!(
                "{:>7} | {:<4} | {:>18} | {:>13}",
                row.broker_count, row.mode, row.max_entries_per_broker, row.backbone_messages
            );
        }
    }
}

fn bench_broker_fanout(c: &mut Criterion) {
    print_scaling_table();
    let payload = make_payload(1024);
    let mut group = c.benchmark_group("broker_fanout");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for broker_count in [1usize, 2, 4] {
        // Replication mode only matters once there is more than one broker.
        let modes: &[(Option<usize>, &str)] = if broker_count == 1 {
            &[(None, "full")]
        } else {
            &[(None, "full"), (Some(2), "k2")]
        };
        for &(replication, label) in modes {
            for n_clients in [4usize, 8] {
                let config = ExperimentConfig::default();
                let mut world = build_federated_world_with_replication(
                    &config,
                    broker_count,
                    n_clients,
                    replication,
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("brokers-{broker_count}-{label}"), n_clients),
                    &payload,
                    |b, payload| b.iter(|| measure_cross_broker_message(&mut world, payload)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_broker_fanout);
criterion_main!(benches);
