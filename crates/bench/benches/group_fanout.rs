//! A3 — ablation: `secureMsgPeerGroup` sequential vs parallel fan-out as the
//! group grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta_bench::{build_fanout_world, build_world, make_payload, ExperimentConfig};

fn bench_fanout(c: &mut Criterion) {
    let payload = make_payload(1024);
    let mut group = c.benchmark_group("group_fanout");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for group_size in [2usize, 4, 8, 16] {
        let config = ExperimentConfig::default();
        let mut world = build_world(&config, group_size + 1);
        let mut fanout = build_fanout_world(&mut world, group_size);

        group.bench_with_input(
            BenchmarkId::new("sequential", group_size),
            &payload,
            |b, payload| {
                b.iter(|| {
                    fanout
                        .sender
                        .secure_msg_peer_group(&fanout.group, payload)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", group_size),
            &payload,
            |b, payload| {
                b.iter(|| {
                    fanout
                        .sender
                        .secure_msg_peer_group_parallel(&fanout.group, payload)
                        .unwrap()
                })
            },
        );
        // Drain receiver inboxes between configurations.
        for receiver in &mut fanout.receivers {
            let _ = receiver.receive_secure_messages();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
