//! A2 — ablation: per-step cost of `secureMsgPeer`
//! (signed-advertisement validation, message signing, envelope sealing,
//! envelope opening, signature verification) across payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jxta_bench::make_payload;
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::envelope::{open_envelope, seal_envelope};
use jxta_overlay::advertisement::PipeAdvertisement;
use jxta_overlay::GroupId;
use jxta_overlay_secure::admin::Administrator;
use jxta_overlay_secure::broker_ext::message_signed_content;
use jxta_overlay_secure::credential::{Credential, CredentialRole};
use jxta_overlay_secure::identity::PeerIdentity;
use jxta_overlay_secure::signed_adv::{
    signed_pipe_advertisement, validate_signed_pipe_advertisement, TrustAnchors,
};

fn bench_msg_steps(c: &mut Criterion) {
    let bits = 1024;
    let mut rng = HmacDrbg::from_seed_u64(0xA2);
    let admin = Administrator::new(&mut rng, "admin", bits).unwrap();
    let broker = PeerIdentity::generate(&mut rng, bits).unwrap();
    let broker_cred = admin
        .issue_broker_credential("broker", broker.peer_id(), broker.public_key(), u64::MAX)
        .unwrap();
    let sender = PeerIdentity::generate(&mut rng, bits).unwrap();
    let receiver = PeerIdentity::generate(&mut rng, bits).unwrap();
    let receiver_cred = Credential::issue(
        CredentialRole::Client,
        "receiver",
        receiver.peer_id(),
        receiver.public_key().clone(),
        "broker",
        u64::MAX,
        broker.private_key(),
    )
    .unwrap();
    let mut trust = TrustAnchors::new(admin.credential().clone()).unwrap();
    trust.add_broker(broker_cred).unwrap();

    let advertisement = PipeAdvertisement {
        owner: receiver.peer_id(),
        group: GroupId::new("g"),
        name: "receiver-inbox".into(),
    };
    let signed_xml = signed_pipe_advertisement(&advertisement, &receiver, &receiver_cred).unwrap();

    let mut group = c.benchmark_group("msg_steps");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("validate_signed_advertisement", |b| {
        b.iter(|| validate_signed_pipe_advertisement(&signed_xml, receiver.peer_id(), &trust).unwrap())
    });

    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let payload = make_payload(size);
        let content = message_signed_content("g", &payload);
        let signature = sender.sign(&content).unwrap();
        let envelope = seal_envelope(&mut rng, receiver.public_key(), payload.as_bytes()).unwrap();

        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sign_message", size), &content, |b, content| {
            b.iter(|| sender.sign(content).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify_message", size), &content, |b, content| {
            b.iter(|| sender.public_key().verify(content, &signature).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("seal_envelope", size), &payload, |b, payload| {
            b.iter(|| seal_envelope(&mut rng, receiver.public_key(), payload.as_bytes()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("open_envelope", size), &envelope, |b, envelope| {
            b.iter(|| open_envelope(receiver.private_key(), envelope).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_msg_steps);
criterion_main!(benches);
