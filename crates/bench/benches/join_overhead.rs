//! E1 — network-join overhead: plain `connect`+`login` vs
//! `secureConnection`+`secureLogin` (paper §5, "about 81.76%").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jxta_bench::{build_world, measure_plain_join, measure_secure_join, ExperimentConfig};
use jxta_overlay_secure::identity::PeerIdentity;

fn bench_join(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let mut world = build_world(&config, 1);
    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(0xE1);

    let mut group = c.benchmark_group("join_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("plain", config.key_bits), |b| {
        b.iter(|| measure_plain_join(&mut world, 0).total())
    });
    group.bench_function(BenchmarkId::new("secure", config.key_bits), |b| {
        b.iter_batched(
            || PeerIdentity::generate(&mut rng, config.key_bits).expect("identity"),
            |identity| measure_secure_join(&mut world, identity, 0).total(),
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
