//! E2 — Figure 2: plain `sendMsgPeer` vs `secureMsgPeer` end-to-end cost as
//! a function of the payload size (overhead falls as latency dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jxta_bench::{
    build_messaging_pair, build_world, make_payload, measure_plain_message,
    measure_secure_message, ExperimentConfig, FIGURE2_PAYLOAD_SIZES,
};

fn bench_msg(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let mut world = build_world(&config, 2);
    let mut pair = build_messaging_pair(&mut world);

    let mut group = c.benchmark_group("msg_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &size in &FIGURE2_PAYLOAD_SIZES {
        let payload = make_payload(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("plain", size), &payload, |b, payload| {
            b.iter(|| measure_plain_message(&mut pair, payload))
        });
        group.bench_with_input(BenchmarkId::new("secure", size), &payload, |b, payload| {
            b.iter(|| measure_secure_message(&mut pair, payload))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_msg);
criterion_main!(benches);
