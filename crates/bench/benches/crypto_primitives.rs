//! A4 — ablation: raw cost of the from-scratch crypto primitives the secure
//! extension is built on (RSA, SHA-256, HMAC, AES-CTR, Base64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jxta_crypto::aes::{ctr_process, Aes};
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::hmac::hmac_sha256;
use jxta_crypto::rsa::RsaKeyPair;
use jxta_crypto::sha2::sha256;
use jxta_crypto::{base64, seal_envelope};

fn bench_crypto(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_seed_u64(0xA4);
    let kp1024 = RsaKeyPair::generate(&mut rng, 1024).unwrap();
    let message = rng.generate_vec(4096);
    let signature = kp1024.private.sign(&message).unwrap();
    let small = rng.generate_vec(32);
    let ciphertext = kp1024.public.encrypt_pkcs1_v15(&mut rng, &small).unwrap();

    let mut group = c.benchmark_group("crypto_primitives");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("rsa1024_sign", |b| b.iter(|| kp1024.private.sign(&message).unwrap()));
    group.bench_function("rsa1024_verify", |b| {
        b.iter(|| kp1024.public.verify(&message, &signature).unwrap())
    });
    group.bench_function("rsa1024_encrypt_pkcs1", |b| {
        b.iter(|| kp1024.public.encrypt_pkcs1_v15(&mut rng, &small).unwrap())
    });
    group.bench_function("rsa1024_decrypt_pkcs1", |b| {
        b.iter(|| kp1024.private.decrypt_pkcs1_v15(&ciphertext).unwrap())
    });
    group.bench_function("envelope_seal_4k", |b| {
        b.iter(|| seal_envelope(&mut rng, &kp1024.public, &message).unwrap())
    });

    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = rng.generate_vec(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(data))
        });
        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, data| {
            b.iter(|| hmac_sha256(b"key", data))
        });
        let aes = Aes::new(&[7u8; 32]).unwrap();
        group.bench_with_input(BenchmarkId::new("aes256_ctr", size), &data, |b, data| {
            b.iter(|| {
                let mut buf = data.clone();
                ctr_process(&aes, &[0u8; 16], &mut buf);
                buf
            })
        });
        group.bench_with_input(BenchmarkId::new("base64_encode", size), &data, |b, data| {
            b.iter(|| base64::encode(data))
        });
    }

    group.finish();

    // Key generation is expensive; sample it only a few times.
    let mut keygen_group = c.benchmark_group("rsa_keygen");
    keygen_group.sample_size(10);
    keygen_group.measurement_time(std::time::Duration::from_secs(5));
    keygen_group.warm_up_time(std::time::Duration::from_millis(500));
    for bits in [512usize, 1024] {
        keygen_group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            b.iter(|| RsaKeyPair::generate(&mut rng, bits).unwrap())
        });
    }
    keygen_group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
