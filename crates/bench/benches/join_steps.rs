//! A1 — ablation: per-step cost of the secure join
//! (challenge signing/verification, credential verification, login-request
//! envelope seal/open, credential issuance).

use criterion::{criterion_group, criterion_main, Criterion};
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::envelope::{open_envelope, seal_envelope};
use jxta_overlay_secure::admin::Administrator;
use jxta_overlay_secure::broker_ext::login_signed_content;
use jxta_overlay_secure::credential::{Credential, CredentialRole};
use jxta_overlay_secure::identity::PeerIdentity;

fn bench_join_steps(c: &mut Criterion) {
    let bits = 1024;
    let mut rng = HmacDrbg::from_seed_u64(0xA1);
    let admin = Administrator::new(&mut rng, "admin", bits).unwrap();
    let broker = PeerIdentity::generate(&mut rng, bits).unwrap();
    let broker_cred = admin
        .issue_broker_credential("broker", broker.peer_id(), broker.public_key(), u64::MAX)
        .unwrap();
    let client = PeerIdentity::generate(&mut rng, bits).unwrap();
    let challenge = rng.generate_vec(32);
    let challenge_sig = broker.sign(&challenge).unwrap();

    let pk_bytes = client.public_key().to_bytes();
    let login_content = login_signed_content("alice", "password", &pk_bytes);
    let login_sig = client.sign(&login_content).unwrap();
    let mut login_request = login_content.clone();
    login_request.extend_from_slice(&login_sig);
    let login_envelope = seal_envelope(&mut rng, broker.public_key(), &login_request).unwrap();

    let mut group = c.benchmark_group("join_steps");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("broker_sign_challenge", |b| b.iter(|| broker.sign(&challenge).unwrap()));
    group.bench_function("client_verify_challenge_sig", |b| {
        b.iter(|| broker.public_key().verify(&challenge, &challenge_sig).unwrap())
    });
    group.bench_function("client_verify_broker_credential", |b| {
        b.iter(|| broker_cred.verify(admin.public_key()).unwrap())
    });
    group.bench_function("client_sign_login_request", |b| {
        b.iter(|| client.sign(&login_content).unwrap())
    });
    group.bench_function("client_seal_login_envelope", |b| {
        b.iter(|| seal_envelope(&mut rng, broker.public_key(), &login_request).unwrap())
    });
    group.bench_function("broker_open_login_envelope", |b| {
        b.iter(|| open_envelope(broker.private_key(), &login_envelope).unwrap())
    });
    group.bench_function("broker_issue_client_credential", |b| {
        b.iter(|| {
            Credential::issue(
                CredentialRole::Client,
                "alice",
                client.peer_id(),
                client.public_key().clone(),
                "broker",
                3600,
                broker.private_key(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join_steps);
criterion_main!(benches);
