//! Experiment harness for the paper's evaluation.
//!
//! Section 5 of the paper ("Security Cost") reports two experiments:
//!
//! * **E1 — network-join overhead**: the cost of `secureConnection` +
//!   `secureLogin` relative to the plain `connect` + `login` (the paper
//!   measures ≈ **81.76 %** on a 1.20 GHz Pentium M).
//! * **E2 — Figure 2**: the relative overhead of `secureMsgPeer` versus the
//!   plain `sendMsgPeer` as a function of the message payload size; the
//!   overhead is large for small messages and falls quickly once network
//!   latency dominates.
//!
//! This crate packages the workload generators and measurement loops used by
//! both the Criterion benches (`benches/`) and the `experiments` binary that
//! regenerates the paper's numbers as tables.  The same helpers also drive
//! the ablation experiments (join step breakdown, message step breakdown,
//! group fan-out scaling and raw crypto primitives) documented in
//! `DESIGN.md`.

#![forbid(unsafe_code)]
// Timing experiments measure the real clock; exempt from the clock ban.
#![allow(clippy::disallowed_methods)]
#![warn(missing_docs)]

use jxta_overlay::client::ClientPeer;
use jxta_overlay::metrics::overhead_percent;
use jxta_overlay::net::LinkModel;
use jxta_overlay::{GroupId, OperationTiming};
use jxta_overlay_secure::identity::PeerIdentity;
use jxta_overlay_secure::secure_client::SecureClient;
use jxta_overlay_secure::setup::{SecureNetwork, SecureNetworkBuilder};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Default RSA key size used by the experiments (the paper's era default).
pub const DEFAULT_KEY_BITS: usize = 1024;

/// Link model used by the experiments: 2 ms one-way latency and an effective
/// application-level throughput of 10 Mbit/s, which is what JXTA pipes
/// delivered on the paper's 2009-era LAN testbed (JXTA's message relaying
/// and XML framing kept goodput far below the raw 100 Mbit/s wire).  This is
/// the regime in which Figure 2's "overhead falls as network latency becomes
/// more relevant" observation holds.
pub fn experiment_link() -> LinkModel {
    LinkModel::new(std::time::Duration::from_millis(2), 1_250_000)
}

/// The group every experiment peer belongs to.
pub const EXPERIMENT_GROUP: &str = "experiment";

/// The payload sizes swept by the Figure 2 reproduction, in bytes.
pub const FIGURE2_PAYLOAD_SIZES: [usize; 7] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
];

/// Configuration shared by the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// RSA modulus size for every identity.
    pub key_bits: usize,
    /// Link model of the simulated network.
    pub link: LinkModel,
    /// Repetitions per measurement point.
    pub iterations: usize,
    /// Seed for the deterministic DRBG.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            key_bits: DEFAULT_KEY_BITS,
            link: experiment_link(),
            iterations: 10,
            seed: 0xE1E2,
        }
    }
}

impl ExperimentConfig {
    /// A faster configuration for smoke tests (small keys, few iterations).
    pub fn quick() -> Self {
        ExperimentConfig {
            key_bits: 512,
            link: experiment_link(),
            iterations: 3,
            seed: 0xE1E2,
        }
    }
}

/// A ready-to-measure deployment: network, broker, registered users.
pub struct ExperimentWorld {
    /// The running secured deployment.
    pub setup: SecureNetwork,
    /// Configuration the world was built with.
    pub config: ExperimentConfig,
}

/// Builds a deployment with `n_users` registered users named `user-0`,
/// `user-1`, … all belonging to [`EXPERIMENT_GROUP`].
pub fn build_world(config: &ExperimentConfig, n_users: usize) -> ExperimentWorld {
    let mut builder = SecureNetworkBuilder::new(config.seed)
        .with_key_bits(config.key_bits)
        .with_link(config.link)
        .with_broker_name("experiment-broker");
    for i in 0..n_users {
        builder = builder.with_user(&format!("user-{i}"), &format!("password-{i}"), &[EXPERIMENT_GROUP]);
    }
    ExperimentWorld {
        setup: builder.build(),
        config: config.clone(),
    }
}

/// Statistics over a series of duration samples.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Stats {
    /// Arithmetic mean in milliseconds.
    pub mean_ms: f64,
    /// Minimum in milliseconds.
    pub min_ms: f64,
    /// Maximum in milliseconds.
    pub max_ms: f64,
}

impl Stats {
    /// Computes statistics from raw samples.
    pub fn from_samples(samples: &[Duration]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        Stats {
            mean_ms: mean,
            min_ms: ms.iter().cloned().fold(f64::INFINITY, f64::min),
            max_ms: ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

// ----------------------------------------------------------------------
// E1 — network-join overhead
// ----------------------------------------------------------------------

/// One joined measurement of E1.
#[derive(Debug, Clone, Serialize)]
pub struct JoinOverheadResult {
    /// Statistics of the plain `connect` + `login`.
    pub plain: Stats,
    /// Statistics of `secureConnection` + `secureLogin`.
    pub secure: Stats,
    /// Relative overhead in percent (the paper reports 81.76 %).
    pub overhead_percent: f64,
    /// The value reported by the paper, for the comparison table.
    pub paper_overhead_percent: f64,
}

/// Measures a single plain join (connect + login), returning its total cost.
pub fn measure_plain_join(world: &mut ExperimentWorld, user_index: usize) -> OperationTiming {
    let broker = world.setup.broker_id();
    let mut client = world.setup.plain_client(&format!("plain-{user_index}"));
    let connect = client.connect(broker).expect("plain connect");
    let login = client
        .login(&format!("user-{user_index}"), &format!("password-{user_index}"))
        .expect("plain login");
    connect + login
}

/// Measures a single secure join (secureConnection + secureLogin) using a
/// pre-generated identity (key generation is boot-time cost, not join cost).
pub fn measure_secure_join(
    world: &mut ExperimentWorld,
    identity: PeerIdentity,
    user_index: usize,
) -> OperationTiming {
    let broker = world.setup.broker_id();
    let mut client = world
        .setup
        .secure_client_with_identity(&format!("secure-{user_index}"), identity);
    client
        .secure_join(broker, &format!("user-{user_index}"), &format!("password-{user_index}"))
        .expect("secure join")
}

/// Runs experiment E1: repeated plain and secure joins, reporting the mean
/// total cost (CPU + wire) of each and the relative overhead.
pub fn experiment_join_overhead(config: &ExperimentConfig) -> JoinOverheadResult {
    let mut world = build_world(config, 1);
    // Boot-time identity generation is excluded from the join measurement, as
    // in the paper (keys exist before the peer attempts to join).
    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(config.seed ^ 0x1D);
    let identities: Vec<PeerIdentity> = (0..config.iterations)
        .map(|_| PeerIdentity::generate(&mut rng, config.key_bits).expect("identity"))
        .collect();

    let plain: Vec<Duration> = (0..config.iterations)
        .map(|_| measure_plain_join(&mut world, 0).total())
        .collect();
    let secure: Vec<Duration> = identities
        .into_iter()
        .map(|identity| measure_secure_join(&mut world, identity, 0).total())
        .collect();

    let plain_stats = Stats::from_samples(&plain);
    let secure_stats = Stats::from_samples(&secure);
    let overhead = overhead_percent(
        Duration::from_secs_f64(plain_stats.mean_ms / 1e3),
        Duration::from_secs_f64(secure_stats.mean_ms / 1e3),
    );
    JoinOverheadResult {
        plain: plain_stats,
        secure: secure_stats,
        overhead_percent: overhead,
        paper_overhead_percent: 81.76,
    }
}

// ----------------------------------------------------------------------
// E2 — Figure 2: secureMsgPeer overhead vs payload size
// ----------------------------------------------------------------------

/// One row of the Figure 2 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct MsgOverheadRow {
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Plain `sendMsgPeer` end-to-end cost.
    pub plain: Stats,
    /// `secureMsgPeer` end-to-end cost.
    pub secure: Stats,
    /// Relative overhead in percent.
    pub overhead_percent: f64,
}

/// A messaging pair: two logged-in peers with published pipe advertisements.
pub struct MessagingPair {
    /// Sender (secure).
    pub secure_sender: SecureClient,
    /// Receiver (secure).
    pub secure_receiver: SecureClient,
    /// Sender (plain baseline).
    pub plain_sender: ClientPeer,
    /// Receiver (plain baseline).
    pub plain_receiver: ClientPeer,
    /// The experiment group.
    pub group: GroupId,
}

/// Builds a messaging pair inside `world` (users 0 and 1 must exist).
pub fn build_messaging_pair(world: &mut ExperimentWorld) -> MessagingPair {
    let group = GroupId::new(EXPERIMENT_GROUP);
    let broker = world.setup.broker_id();

    let mut secure_sender = world.setup.secure_client("secure-sender");
    let mut secure_receiver = world.setup.secure_client("secure-receiver");
    secure_sender.secure_join(broker, "user-0", "password-0").expect("join");
    secure_receiver.secure_join(broker, "user-1", "password-1").expect("join");
    secure_sender.publish_secure_pipe(&group).expect("publish");
    secure_receiver.publish_secure_pipe(&group).expect("publish");

    let mut plain_sender = world.setup.plain_client("plain-sender");
    let mut plain_receiver = world.setup.plain_client("plain-receiver");
    plain_sender.connect(broker).expect("connect");
    plain_sender.login("user-0", "password-0").expect("login");
    plain_receiver.connect(broker).expect("connect");
    plain_receiver.login("user-1", "password-1").expect("login");
    plain_sender.publish_pipe(&group).expect("publish");
    plain_receiver.publish_pipe(&group).expect("publish");

    // Warm the advertisement caches so the sweep measures messaging, not
    // discovery.
    let _ = secure_sender.resolve_secure_pipe(&group, secure_receiver.id());
    let _ = secure_receiver.resolve_secure_pipe(&group, secure_sender.id());
    let _ = plain_sender.resolve_pipe(&group, plain_receiver.id());
    let _ = plain_receiver.poll_events();
    let _ = secure_receiver.receive_secure_messages();

    MessagingPair {
        secure_sender,
        secure_receiver,
        plain_sender,
        plain_receiver,
        group,
    }
}

/// Generates a deterministic ASCII payload of `size` bytes.
pub fn make_payload(size: usize) -> String {
    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
    (0..size).map(|i| alphabet[i % alphabet.len()] as char).collect()
}

/// Measures one plain end-to-end message: send primitive plus receiver-side
/// event processing plus wire time.
pub fn measure_plain_message(pair: &mut MessagingPair, payload: &str) -> Duration {
    let send = pair
        .plain_sender
        .send_msg_peer(&pair.group, pair.plain_receiver.id(), payload)
        .expect("plain send");
    let receive_watch = jxta_overlay::metrics::Stopwatch::start();
    let events = pair.plain_receiver.poll_events();
    assert!(!events.is_empty(), "plain message must arrive");
    let receive_cpu = receive_watch.elapsed();
    send.total() + receive_cpu
}

/// Measures one secure end-to-end message: `secureMsgPeer` plus receiver-side
/// decryption/validation plus wire time.
pub fn measure_secure_message(pair: &mut MessagingPair, payload: &str) -> Duration {
    let send = pair
        .secure_sender
        .secure_msg_peer(&pair.group, pair.secure_receiver.id(), payload)
        .expect("secure send");
    let receive_watch = jxta_overlay::metrics::Stopwatch::start();
    let received = pair
        .secure_receiver
        .receive_secure_messages()
        .expect("secure receive");
    assert!(!received.is_empty(), "secure message must arrive and verify");
    let receive_cpu = receive_watch.elapsed();
    send.total() + receive_cpu
}

/// Runs experiment E2: sweeps the payload sizes and reports plain vs secure
/// end-to-end cost and the relative overhead (the series plotted in
/// Figure 2).
pub fn experiment_msg_overhead(
    config: &ExperimentConfig,
    payload_sizes: &[usize],
) -> Vec<MsgOverheadRow> {
    let mut world = build_world(config, 2);
    let mut pair = build_messaging_pair(&mut world);

    payload_sizes
        .iter()
        .map(|&size| {
            let payload = make_payload(size);
            let plain: Vec<Duration> = (0..config.iterations)
                .map(|_| measure_plain_message(&mut pair, &payload))
                .collect();
            let secure: Vec<Duration> = (0..config.iterations)
                .map(|_| measure_secure_message(&mut pair, &payload))
                .collect();
            let plain_stats = Stats::from_samples(&plain);
            let secure_stats = Stats::from_samples(&secure);
            MsgOverheadRow {
                payload_bytes: size,
                plain: plain_stats,
                secure: secure_stats,
                overhead_percent: overhead_percent(
                    Duration::from_secs_f64(plain_stats.mean_ms / 1e3),
                    Duration::from_secs_f64(secure_stats.mean_ms / 1e3),
                ),
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// A3 — group fan-out
// ----------------------------------------------------------------------

/// One row of the group fan-out ablation.
#[derive(Debug, Clone, Serialize)]
pub struct FanoutRow {
    /// Number of receiving group members.
    pub group_size: usize,
    /// Sequential `secureMsgPeerGroup` cost.
    pub sequential: Stats,
    /// Parallel fan-out cost.
    pub parallel: Stats,
    /// Speed-up of the parallel variant (sequential / parallel).
    pub speedup: f64,
}

/// A group of logged-in secure peers used by the fan-out experiments.
pub struct FanoutWorld {
    /// The sender.
    pub sender: SecureClient,
    /// The receivers (kept alive so their endpoints stay registered).
    pub receivers: Vec<SecureClient>,
    /// The experiment group.
    pub group: GroupId,
}

/// Builds a sender plus `group_size` receivers, all joined and published.
pub fn build_fanout_world(world: &mut ExperimentWorld, group_size: usize) -> FanoutWorld {
    let group = GroupId::new(EXPERIMENT_GROUP);
    let broker = world.setup.broker_id();
    let mut sender = world.setup.secure_client("fanout-sender");
    sender.secure_join(broker, "user-0", "password-0").expect("join");
    sender.publish_secure_pipe(&group).expect("publish");
    let receivers: Vec<SecureClient> = (0..group_size)
        .map(|i| {
            let user = i + 1;
            let mut receiver = world.setup.secure_client(&format!("fanout-receiver-{i}"));
            receiver
                .secure_join(broker, &format!("user-{user}"), &format!("password-{user}"))
                .expect("join");
            receiver.publish_secure_pipe(&group).expect("publish");
            receiver
        })
        .collect();
    FanoutWorld {
        sender,
        receivers,
        group,
    }
}

/// Runs the group fan-out ablation over the given group sizes.
pub fn experiment_group_fanout(config: &ExperimentConfig, group_sizes: &[usize]) -> Vec<FanoutRow> {
    group_sizes
        .iter()
        .map(|&group_size| {
            let mut world = build_world(config, group_size + 1);
            let mut fanout = build_fanout_world(&mut world, group_size);
            let payload = make_payload(1024);

            let sequential: Vec<Duration> = (0..config.iterations)
                .map(|_| {
                    let (sent, timing) = fanout
                        .sender
                        .secure_msg_peer_group(&fanout.group, &payload)
                        .expect("sequential fan-out");
                    assert_eq!(sent, group_size);
                    timing.total()
                })
                .collect();
            let parallel: Vec<Duration> = (0..config.iterations)
                .map(|_| {
                    let (sent, timing) = fanout
                        .sender
                        .secure_msg_peer_group_parallel(&fanout.group, &payload)
                        .expect("parallel fan-out");
                    assert_eq!(sent, group_size);
                    timing.total()
                })
                .collect();

            // Drain receiver inboxes so they do not grow unboundedly.
            for receiver in &mut fanout.receivers {
                let _ = receiver.receive_secure_messages();
            }

            let sequential_stats = Stats::from_samples(&sequential);
            let parallel_stats = Stats::from_samples(&parallel);
            FanoutRow {
                group_size,
                sequential: sequential_stats,
                parallel: parallel_stats,
                speedup: sequential_stats.mean_ms / parallel_stats.mean_ms,
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// A4 — broker federation fan-out
// ----------------------------------------------------------------------

/// A federated deployment under measurement: `clients[i]` is homed at broker
/// `i % broker_count`, every client published a signed pipe and the
/// replicated indexes have converged.
pub struct FederatedWorld {
    /// The running multi-broker deployment.
    pub setup: SecureNetwork,
    /// Joined clients, round-robin across the brokers.
    pub clients: Vec<SecureClient>,
    /// The experiment group.
    pub group: GroupId,
}

/// Builds a federation of `broker_count` brokers serving `n_clients` secure
/// clients (requires `config`-independent users `user-0` … registered by
/// [`build_world`]'s naming convention).
pub fn build_federated_world(
    config: &ExperimentConfig,
    broker_count: usize,
    n_clients: usize,
) -> FederatedWorld {
    build_federated_world_with_replication(config, broker_count, n_clients, None)
}

/// [`build_federated_world`] with an explicit sharding mode: `None` fully
/// replicates the index (PR 2 behaviour), `Some(k)` partitions it across the
/// consistent-hash ring with `k` replicas per entry.
pub fn build_federated_world_with_replication(
    config: &ExperimentConfig,
    broker_count: usize,
    n_clients: usize,
    replication: Option<usize>,
) -> FederatedWorld {
    let mut builder = SecureNetworkBuilder::new(config.seed)
        .with_key_bits(config.key_bits)
        .with_link(config.link)
        .with_broker_count(broker_count);
    if let Some(k) = replication {
        builder = builder.with_replication_factor(k);
    }
    for i in 0..n_clients {
        builder =
            builder.with_user(&format!("user-{i}"), &format!("password-{i}"), &[EXPERIMENT_GROUP]);
    }
    let mut setup = builder.build();
    let group = GroupId::new(EXPERIMENT_GROUP);
    let clients: Vec<SecureClient> = (0..n_clients)
        .map(|i| {
            let broker = setup.broker_id_at(i % broker_count);
            let mut client = setup.secure_client(&format!("fed-client-{i}"));
            client
                .secure_join(broker, &format!("user-{i}"), &format!("password-{i}"))
                .expect("secure join");
            client.publish_secure_pipe(&group).expect("publish");
            client
        })
        .collect();
    assert!(
        setup
            .federation()
            .await_convergence(std::time::Duration::from_secs(5)),
        "federation must converge before measuring"
    );
    FederatedWorld {
        setup,
        clients,
        group,
    }
}

/// One cross-broker secure message: client 0 (homed at broker 0) relays to
/// the last client (homed at the last broker), which drains its inbox until
/// the message arrives.  Returns the sender-side timing.
pub fn measure_cross_broker_message(
    world: &mut FederatedWorld,
    payload: &str,
) -> OperationTiming {
    let to = world.clients.last().expect("at least one client").id();
    let (sender, rest) = world.clients.split_first_mut().expect("at least one client");
    let receiver = rest.last_mut();
    let timing = sender
        .secure_msg_peer_relayed(&world.group, to, payload)
        .expect("relayed send");
    if let Some(receiver) = receiver {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let received = receiver.receive_secure_messages().expect("receive");
            if !received.is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "relayed message never arrived"
            );
            std::thread::yield_now();
        }
    }
    timing
}

/// One direct (same-broker) secure message between the first and last
/// client: the baseline a relayed cross-broker message is compared against.
pub fn measure_direct_message(world: &mut FederatedWorld, payload: &str) -> OperationTiming {
    let to = world.clients.last().expect("at least one client").id();
    let (sender, rest) = world.clients.split_first_mut().expect("at least one client");
    let receiver = rest.last_mut();
    let timing = sender
        .secure_msg_peer(&world.group, to, payload)
        .expect("direct send");
    if let Some(receiver) = receiver {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if !receiver.receive_secure_messages().expect("receive").is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "direct message never arrived"
            );
            std::thread::yield_now();
        }
    }
    timing
}

// ----------------------------------------------------------------------
// E3 — federation relay overhead and sharding scale
// ----------------------------------------------------------------------

/// One row of the relay-overhead sweep: cost of a cross-broker secure
/// message for a backbone configuration.
#[derive(Debug, Clone, Serialize)]
pub struct FederationRelayRow {
    /// Brokers in the backbone.
    pub broker_count: usize,
    /// `"full"` or `"k=<K>"` — the replication mode of the index.
    pub mode: String,
    /// End-to-end sender-side cost of `secureMsgPeerRelayed`.
    pub relayed: Stats,
    /// Relative overhead versus the direct same-broker baseline.
    pub overhead_percent: f64,
}

/// One row of the sharding scale table, measured on a plain (overlay-level)
/// federation so the numbers isolate replication behaviour from crypto cost.
#[derive(Debug, Clone, Serialize)]
pub struct ShardScalingRow {
    /// Brokers in the backbone.
    pub broker_count: usize,
    /// `"full"` or `"k=<K>"`.
    pub mode: String,
    /// Advertisements published (each with a distinct owner).
    pub publishes: usize,
    /// Index entries held per broker after convergence.
    pub per_broker_entries: Vec<usize>,
    /// The largest per-broker index.
    pub max_entries_per_broker: usize,
    /// Backbone gossip messages spent replicating the publishes.
    pub backbone_messages: u64,
}

/// Result of experiment E3.
#[derive(Debug, Clone, Serialize)]
pub struct FederationExperimentResult {
    /// Direct same-broker baseline.
    pub direct: Stats,
    /// Cross-broker relay cost per backbone configuration.
    pub relay_rows: Vec<FederationRelayRow>,
    /// Per-broker state and backbone message count, full vs sharded.
    pub scaling_rows: Vec<ShardScalingRow>,
}

fn mode_label(replication: Option<usize>) -> String {
    match replication {
        None => "full".to_string(),
        Some(k) => format!("k={k}"),
    }
}

/// Builds an overlay-level federation (brokers only, no crypto) driven
/// inline — the shared fixture of the E3 scaling and E4 repair measurements.
fn build_overlay_federation(
    broker_count: usize,
    replication: Option<usize>,
    rng: &mut jxta_crypto::drbg::HmacDrbg,
) -> (
    std::sync::Arc<jxta_overlay::SimNetwork>,
    jxta_overlay::federation::InlineFederation,
) {
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::net::SimNetwork;
    use jxta_overlay::{PeerId, UserDatabase};

    let network = SimNetwork::new(LinkModel::ideal());
    let database = std::sync::Arc::new(UserDatabase::new());
    let brokers: Vec<std::sync::Arc<Broker>> = (0..broker_count)
        .map(|i| {
            Broker::new(
                PeerId::random(rng),
                BrokerConfig {
                    name: format!("broker-{}", i + 1),
                    replication_factor: replication,
                    ..Default::default()
                },
                std::sync::Arc::clone(&network),
                std::sync::Arc::clone(&database),
            )
        })
        .collect();
    (network, InlineFederation::new(brokers))
}

/// Publishes `count` advertisements (distinct owners) round-robin over the
/// federation's brokers, pumping after each when `pump_each` (so that an
/// installed adversary interleaves with the gossip, as E4 needs).
fn publish_round_robin(
    federation: &jxta_overlay::federation::InlineFederation,
    count: usize,
    rng: &mut jxta_crypto::drbg::HmacDrbg,
    pump_each: bool,
) {
    let group = jxta_overlay::GroupId::new(EXPERIMENT_GROUP);
    for i in 0..count {
        let owner = jxta_overlay::PeerId::random(rng);
        federation.broker(i % federation.len()).index_and_distribute(
            owner,
            &group,
            "jxta:PipeAdvertisement",
            &format!("<adv n=\"{i}\"/>"),
        );
        if pump_each {
            federation.pump();
        }
    }
}

/// Replicates `publishes` advertisements over an overlay-level federation of
/// `broker_count` brokers and reports where the entries ended up and how
/// many backbone messages it took — the O(N) vs O(K) comparison the ROADMAP
/// asks for.
pub fn measure_shard_scaling(
    broker_count: usize,
    replication: Option<usize>,
    publishes: usize,
) -> ShardScalingRow {
    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(0xE3_5CAE);
    let (_network, federation) = build_overlay_federation(broker_count, replication, &mut rng);
    publish_round_robin(&federation, publishes, &mut rng, false);
    federation.pump();
    assert!(federation.converged(), "scaling run must converge");
    let per_broker_entries: Vec<usize> = (0..broker_count)
        .map(|i| federation.broker(i).advertisement_entry_count())
        .collect();
    let backbone_messages = (0..broker_count)
        .map(|i| federation.broker(i).federation_stats().syncs_sent)
        .sum();
    ShardScalingRow {
        broker_count,
        mode: mode_label(replication),
        publishes,
        max_entries_per_broker: per_broker_entries.iter().copied().max().unwrap_or(0),
        per_broker_entries,
        backbone_messages,
    }
}

/// Runs experiment E3: the cost a secure message pays for crossing the
/// broker backbone (federation relay overhead versus direct messaging), for
/// fully replicated and sharded (K=2) backbones, plus the per-broker state /
/// backbone traffic scale table.
pub fn experiment_federation(config: &ExperimentConfig) -> FederationExperimentResult {
    let payload = make_payload(1024);

    let mut world = build_federated_world(config, 1, 2);
    let direct: Vec<Duration> = (0..config.iterations)
        .map(|_| measure_direct_message(&mut world, &payload).total())
        .collect();
    let direct = Stats::from_samples(&direct);

    let relay_rows = [(2usize, None), (2, Some(2)), (4, None), (4, Some(2))]
        .into_iter()
        .map(|(broker_count, replication)| {
            let mut world =
                build_federated_world_with_replication(config, broker_count, 2, replication);
            let samples: Vec<Duration> = (0..config.iterations)
                .map(|_| measure_cross_broker_message(&mut world, &payload).total())
                .collect();
            let relayed = Stats::from_samples(&samples);
            FederationRelayRow {
                broker_count,
                mode: mode_label(replication),
                overhead_percent: overhead_percent(
                    Duration::from_secs_f64(direct.mean_ms / 1e3),
                    Duration::from_secs_f64(relayed.mean_ms / 1e3),
                ),
                relayed,
            }
        })
        .collect();

    let scaling_rows = [2usize, 4, 8]
        .into_iter()
        .flat_map(|broker_count| {
            [None, Some(2)].into_iter().map(move |replication| {
                measure_shard_scaling(broker_count, replication, 64)
            })
        })
        .collect();

    FederationExperimentResult {
        direct,
        relay_rows,
        scaling_rows,
    }
}

// ----------------------------------------------------------------------
// E4 — anti-entropy repair: divergence-to-reconvergence vs drop rate
// ----------------------------------------------------------------------

/// One row of the repair experiment: a workload replicated over a lossy
/// backbone at a given drop rate, then anti-entropy rounds until the
/// federation reconverges.
#[derive(Debug, Clone, Serialize)]
pub struct RepairRow {
    /// Probability (percent) that a backbone message was dropped.
    pub drop_percent: u32,
    /// `"full"` or `"k=<K>"` — the replication mode of the index.
    pub mode: String,
    /// Advertisements published during the lossy phase.
    pub ops: usize,
    /// Backbone messages the adversary actually dropped.
    pub messages_dropped: u64,
    /// Whether the loss left the replicas divergent once the adversary
    /// cleared (the state PR 3 could only detect).
    pub diverged: bool,
    /// Anti-entropy rounds needed to reconverge (`None` = bound of 16
    /// exhausted, which would be a repair bug).
    pub repair_rounds: Option<usize>,
    /// Entries healed by the repair rounds, summed over the federation.
    pub entries_repaired: u64,
}

/// Publishes `ops` advertisements over an overlay-level federation whose
/// backbone drops each inter-broker message with probability
/// `drop_percent`/100, then lifts the adversary and runs anti-entropy until
/// reconvergence — the divergence-to-reconvergence measurement of E4.
pub fn measure_repair(
    broker_count: usize,
    replication: Option<usize>,
    drop_percent: u32,
    ops: usize,
    seed: u64,
) -> RepairRow {
    use jxta_overlay::net::RandomDrop;
    use jxta_overlay::PeerId;

    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(seed);
    let (network, federation) = build_overlay_federation(broker_count, replication, &mut rng);
    let backbone: Vec<PeerId> = (0..broker_count)
        .map(|i| federation.broker(i).id())
        .collect();
    let dropper = RandomDrop::between(seed ^ 0xD40F, drop_percent, backbone);
    network.set_adversary(dropper.clone());
    publish_round_robin(&federation, ops, &mut rng, true);
    network.clear_adversary();
    federation.pump();

    let diverged = !federation.converged();
    let repair_rounds = federation.repair_until_converged(16);
    let entries_repaired = (0..broker_count)
        .map(|i| federation.broker(i).federation_stats().entries_repaired)
        .sum();
    RepairRow {
        drop_percent,
        mode: mode_label(replication),
        ops,
        messages_dropped: dropper.dropped_count(),
        diverged,
        repair_rounds,
        entries_repaired,
    }
}

/// Runs experiment E4: divergence-to-reconvergence across a sweep of
/// backbone drop rates, for fully replicated and sharded (K=2) backbones of
/// four brokers.
pub fn experiment_repair(config: &ExperimentConfig) -> Vec<RepairRow> {
    let ops = (config.iterations * 8).max(24);
    [0u32, 10, 25, 50, 75]
        .into_iter()
        .flat_map(|rate| {
            [None, Some(2)].into_iter().map(move |replication| {
                measure_repair(4, replication, rate, ops, 0xE4_5EED ^ u64::from(rate))
            })
        })
        .collect()
}

/// Formats E4 as a text table.
pub fn format_repair_report(rows: &[RepairRow]) -> String {
    let mut out = String::from(
        "E4 — anti-entropy: divergence-to-reconvergence vs backbone drop rate\n\
         ---------------------------------------------------------------------\n\
         drop % | mode  | ops | dropped | diverged | repair rounds | entries repaired\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>6} | {:<5} | {:>3} | {:>7} | {:>8} | {:>13} | {:>16}\n",
            row.drop_percent,
            row.mode,
            row.ops,
            row.messages_dropped,
            if row.diverged { "yes" } else { "no" },
            row.repair_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "UNHEALED".to_string()),
            row.entries_repaired,
        ));
    }
    out
}

// ----------------------------------------------------------------------
// E7 — delta repair: hash-tree descent vs flat full-section snapshots
// ----------------------------------------------------------------------

/// One (section size, divergence size, protocol) cell of the E7 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DeltaRepairRow {
    /// Advertisements seeded identically into both replicas.
    pub entries: usize,
    /// Entries perturbed on broker 0 with a newer version broker 1 missed.
    pub divergent: usize,
    /// `"tree"` (hash-tree descent) or `"flat"` (full-section snapshots).
    pub mode: String,
    /// Anti-entropy bytes on the wire (digests + range legs + snapshots),
    /// summed over both brokers — the headline O(delta) vs O(shard) number.
    pub repair_bytes: u64,
    /// `AntiEntropyRange` descent legs sent (0 in flat mode).
    pub descent_legs: u64,
    /// Range-scoped snapshot pages shipped (0 in flat mode).
    pub pages: u64,
    /// Repair rounds until reconvergence (`None` = bound exhausted, a bug).
    pub rounds: Option<usize>,
    /// Entries brought up to date across the federation.
    pub entries_repaired: u64,
}

/// The E7 result: rows plus the tree geometry they were measured under.
#[derive(Debug, Clone, Serialize)]
pub struct DeltaRepairResult {
    /// Experiment identifier (`"e7-delta-repair"`).
    pub experiment: String,
    /// Whether the quick (CI smoke) sweep was run.
    pub quick: bool,
    /// Repair-tree depth the overlay was built with.
    pub tree_depth: u32,
    /// Repair-tree fan-out per level.
    pub tree_arity: usize,
    /// The measured cells.
    pub rows: Vec<DeltaRepairRow>,
}

/// Measures one E7 cell: two fully replicating brokers are seeded with
/// `entries` identical advertisements, `divergent` of them are overwritten
/// on broker 0 with a newer version (writes broker 1 missed), and
/// anti-entropy runs to reconvergence.  Byte/leg counters are read as
/// deltas, so only the repair traffic of this cell is attributed.
pub fn measure_delta_repair(
    entries: usize,
    divergent: usize,
    tree: bool,
    seed: u64,
) -> DeltaRepairRow {
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::net::SimNetwork;
    use jxta_overlay::{GroupId, PeerId, UserDatabase};

    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(seed);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = std::sync::Arc::new(UserDatabase::new());
    let brokers: Vec<std::sync::Arc<Broker>> = (0..2)
        .map(|i| {
            let config = BrokerConfig {
                name: format!("broker-{}", i + 1),
                ..Default::default()
            };
            let config = if tree { config } else { config.with_flat_repair() };
            Broker::new(
                PeerId::random(&mut rng),
                config,
                std::sync::Arc::clone(&network),
                std::sync::Arc::clone(&database),
            )
        })
        .collect();
    let federation = InlineFederation::new(brokers);
    let group = GroupId::new(EXPERIMENT_GROUP);
    let origin = federation.broker(0).id();
    let mut owners = Vec::with_capacity(divergent);
    for i in 0..entries {
        let owner = PeerId::random(&mut rng);
        if owners.len() < divergent {
            owners.push(owner);
        }
        for b in 0..2 {
            federation.broker(b).load_advertisement(
                owner,
                &group,
                "jxta:PipeAdvertisement",
                &format!("<adv n=\"{i}\"/>"),
                (1, origin),
            );
        }
    }
    for (i, owner) in owners.iter().enumerate() {
        federation.broker(0).load_advertisement(
            *owner,
            &group,
            "jxta:PipeAdvertisement",
            &format!("<adv n=\"{i}\" rev=\"2\"/>"),
            (2, origin),
        );
    }

    let stats_sum = |field: fn(&jxta_overlay::metrics::FederationStats) -> u64| -> u64 {
        (0..2)
            .map(|b| field(&federation.broker(b).federation_stats()))
            .sum()
    };
    let bytes_before = stats_sum(|s| s.repair_bytes);
    let legs_before = stats_sum(|s| s.descent_rounds);
    let pages_before = stats_sum(|s| s.repair_pages);
    let repaired_before = stats_sum(|s| s.entries_repaired);

    let rounds = federation.repair_until_converged(8);

    let repair_bytes = stats_sum(|s| s.repair_bytes) - bytes_before;
    assert!(
        repair_bytes > 0,
        "repair traffic must be visible in FederationStats::repair_bytes"
    );
    DeltaRepairRow {
        entries,
        divergent,
        mode: if tree { "tree" } else { "flat" }.to_string(),
        repair_bytes,
        descent_legs: stats_sum(|s| s.descent_rounds) - legs_before,
        pages: stats_sum(|s| s.repair_pages) - pages_before,
        rounds,
        entries_repaired: stats_sum(|s| s.entries_repaired) - repaired_before,
    }
}

/// Runs experiment E7: repair bytes and exchange legs vs divergence size,
/// hash-tree descent against the flat full-section baseline.  The full
/// sweep adds a 10⁶-entry tree-only series — a flat snapshot at that size
/// would serialize a multi-hundred-MB `Message` per leg, which is exactly
/// the failure mode the tree exists to avoid, so it is skipped rather
/// than measured.
pub fn experiment_delta_repair(config: &ExperimentConfig) -> DeltaRepairResult {
    let quick = config.iterations <= ExperimentConfig::quick().iterations;
    let (sizes, divergences): (Vec<usize>, Vec<usize>) = if quick {
        (vec![100_000], vec![1, 100])
    } else {
        (vec![100_000, 1_000_000], vec![1, 10, 100, 1000])
    };
    let mut rows = Vec::new();
    for &entries in &sizes {
        for &divergent in &divergences {
            let seed = 0xE7_5EED ^ (entries as u64) ^ ((divergent as u64) << 32);
            rows.push(measure_delta_repair(entries, divergent, true, seed));
            if entries <= 100_000 {
                rows.push(measure_delta_repair(entries, divergent, false, seed));
            }
        }
    }
    DeltaRepairResult {
        experiment: "e7-delta-repair".to_string(),
        quick,
        tree_depth: jxta_overlay::shard::REPAIR_TREE_DEPTH,
        tree_arity: jxta_overlay::shard::REPAIR_TREE_ARITY,
        rows,
    }
}

/// Formats E7 as a text table.
pub fn format_delta_repair_report(result: &DeltaRepairResult) -> String {
    let mut out = String::from(
        "E7 — delta repair: hash-tree descent vs flat snapshots (2 brokers, full replication)\n\
         -------------------------------------------------------------------------------------\n\
         entries | divergent | mode | repair bytes | range legs | pages | rounds | repaired\n",
    );
    for row in &result.rows {
        out.push_str(&format!(
            "{:>7} | {:>9} | {:<4} | {:>12} | {:>10} | {:>5} | {:>6} | {:>8}\n",
            row.entries,
            row.divergent,
            row.mode,
            row.repair_bytes,
            row.descent_legs,
            row.pages,
            row.rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "UNHEALED".to_string()),
            row.entries_repaired,
        ));
    }
    for pair in result.rows.chunks(2) {
        if let [tree, flat] = pair {
            if tree.entries == flat.entries && tree.divergent == flat.divergent {
                out.push_str(&format!(
                    "\n{} entries, {} divergent: tree ships {:.3}% of flat bytes",
                    tree.entries,
                    tree.divergent,
                    100.0 * tree.repair_bytes as f64 / flat.repair_bytes as f64,
                ));
            }
        }
    }
    out.push('\n');
    out
}

/// Writes the E7 result as machine-readable `BENCH_7.json` at the workspace
/// root.  Returns the path.
pub fn write_bench7_json(result: &DeltaRepairResult) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_7.json");
    let json = serde_json::to_string_pretty(result).expect("serialise E7 result");
    std::fs::write(&path, json)?;
    Ok(path)
}

// ----------------------------------------------------------------------
// E8 — epidemic backbone: per-broker fan-out and convergence vs full mesh
// ----------------------------------------------------------------------

/// One (broker count, fabric) cell of the E8 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct EpidemicFanoutRow {
    /// Brokers in the federation.
    pub brokers: usize,
    /// `"epidemic"` (HyParView + Plumtree) or `"mesh"` (`with_full_mesh`).
    pub mode: String,
    /// Broadcasts measured (all from one origin broker, after warm-up).
    pub publishes: usize,
    /// Max over brokers of backbone messages sent per publish — the headline
    /// number: a full-mesh origin pays O(N) here, an epidemic broker pays
    /// O(active view) wherever it sits in the tree.
    pub peak_sends_per_publish: f64,
    /// Backbone messages federation-wide per publish (any broadcast costs at
    /// least N-1 of these; the fabrics differ in *who* pays them).
    pub total_messages_per_publish: f64,
    /// Wall-clock from first publish to quiescence of the measured batch.
    pub convergence_ms: f64,
    /// Whether the batch alone converged the federation (no repair needed).
    pub converged: bool,
    /// Plumtree eager pushes during the measured batch.
    pub eager_pushes: u64,
    /// Lazy `IHave` digests sent during the measured batch.
    pub ihaves_sent: u64,
    /// `Graft` repairs during the measured batch.
    pub grafts_sent: u64,
}

/// The E8 result.
#[derive(Debug, Clone, Serialize)]
pub struct EpidemicFanoutResult {
    /// Experiment identifier (`"e8-epidemic-fanout"`).
    pub experiment: String,
    /// Whether the quick (CI smoke) sweep was run.
    pub quick: bool,
    /// Active-view capacity the epidemic rows ran with.
    pub active_view: usize,
    /// Passive-view capacity the epidemic rows ran with.
    pub passive_view: usize,
    /// The measured cells.
    pub rows: Vec<EpidemicFanoutRow>,
}

/// Measures one E8 cell: a fully replicating `brokers`-wide federation
/// broadcasts `publishes` advertisements from a single origin broker and is
/// pumped to quiescence.  Two warm-up broadcasts run first so the epidemic
/// rows measure the *pruned* eager tree, not the initial flood.  Per-broker
/// send counts are read as [`SimNetwork::sent_by`] deltas around the batch,
/// so warm-up and any trailing repair traffic are not attributed.
pub fn measure_epidemic_fanout(
    brokers: usize,
    full_mesh: bool,
    publishes: usize,
    seed: u64,
) -> EpidemicFanoutRow {
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::net::SimNetwork;
    use jxta_overlay::{GroupId, PeerId, UserDatabase};

    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(seed);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    let members: Vec<Arc<Broker>> = (0..brokers)
        .map(|i| {
            let config = BrokerConfig::named(format!("broker-{}", i + 1));
            let config = if full_mesh { config.with_full_mesh() } else { config };
            Broker::new(
                PeerId::random(&mut rng),
                config,
                Arc::clone(&network),
                Arc::clone(&database),
            )
        })
        .collect();
    let federation = InlineFederation::new(members);
    let group = GroupId::new(EXPERIMENT_GROUP);
    let publish = |n: usize, rng: &mut jxta_crypto::drbg::HmacDrbg| {
        federation.broker(0).index_and_distribute(
            PeerId::random(rng),
            &group,
            "jxta:PipeAdvertisement",
            &format!("<adv n=\"{n}\"/>"),
        );
        federation.pump();
    };
    for warm in 0..2 {
        publish(warm, &mut rng);
    }

    let ids: Vec<jxta_overlay::PeerId> =
        (0..federation.len()).map(|i| federation.broker(i).id()).collect();
    let sent_before: Vec<u64> = ids.iter().map(|id| network.sent_by(id)).collect();
    let stats_sum = |field: fn(&jxta_overlay::metrics::FederationStats) -> u64| -> u64 {
        (0..federation.len())
            .map(|b| field(&federation.broker(b).federation_stats()))
            .sum()
    };
    let eager_before = stats_sum(|s| s.eager_pushes);
    let ihave_before = stats_sum(|s| s.ihaves_sent);
    let graft_before = stats_sum(|s| s.grafts_sent);

    let start = std::time::Instant::now();
    for n in 0..publishes {
        publish(2 + n, &mut rng);
    }
    let convergence_ms = start.elapsed().as_secs_f64() * 1000.0;
    let converged = federation.converged();

    let deltas: Vec<u64> = ids
        .iter()
        .zip(&sent_before)
        .map(|(id, before)| network.sent_by(id) - before)
        .collect();
    let peak = deltas.iter().copied().max().unwrap_or(0);
    let total: u64 = deltas.iter().sum();
    if !converged {
        // Divergence the tree could not carry: anti-entropy is the backstop,
        // and a federation it cannot heal either is a bug worth a panic.
        assert!(
            federation.repair_until_converged(8).is_some(),
            "E8 federation failed to converge even through repair"
        );
    }
    EpidemicFanoutRow {
        brokers,
        mode: if full_mesh { "mesh" } else { "epidemic" }.to_string(),
        publishes,
        peak_sends_per_publish: peak as f64 / publishes as f64,
        total_messages_per_publish: total as f64 / publishes as f64,
        convergence_ms,
        converged,
        eager_pushes: stats_sum(|s| s.eager_pushes) - eager_before,
        ihaves_sent: stats_sum(|s| s.ihaves_sent) - ihave_before,
        grafts_sent: stats_sum(|s| s.grafts_sent) - graft_before,
    }
}

/// Runs experiment E8: per-broker fan-out and convergence time of the
/// epidemic backbone against the full-mesh baseline at 32/128/512 brokers.
pub fn experiment_epidemic_fanout(config: &ExperimentConfig) -> EpidemicFanoutResult {
    let quick = config.iterations <= ExperimentConfig::quick().iterations;
    let publishes = if quick { 4 } else { 16 };
    let mut rows = Vec::new();
    for &brokers in &[32usize, 128, 512] {
        for &full_mesh in &[false, true] {
            let seed = 0xE8_5EED ^ (brokers as u64) ^ ((full_mesh as u64) << 32);
            rows.push(measure_epidemic_fanout(brokers, full_mesh, publishes, seed));
        }
    }
    EpidemicFanoutResult {
        experiment: "e8-epidemic-fanout".to_string(),
        quick,
        active_view: jxta_overlay::membership::DEFAULT_ACTIVE_VIEW,
        passive_view: jxta_overlay::membership::DEFAULT_PASSIVE_VIEW,
        rows,
    }
}

/// Formats E8 as a text table.
pub fn format_epidemic_fanout_report(result: &EpidemicFanoutResult) -> String {
    let mut out = String::from(
        "E8 — epidemic backbone vs full mesh: per-broker sends and convergence per broadcast\n\
         ------------------------------------------------------------------------------------\n\
         brokers | mode     | peak sends/publish | total msgs/publish | conv ms | eager | ihave | graft\n",
    );
    for row in &result.rows {
        out.push_str(&format!(
            "{:>7} | {:<8} | {:>18.1} | {:>18.1} | {:>7.2} | {:>5} | {:>5} | {:>5}\n",
            row.brokers,
            row.mode,
            row.peak_sends_per_publish,
            row.total_messages_per_publish,
            row.convergence_ms,
            row.eager_pushes,
            row.ihaves_sent,
            row.grafts_sent,
        ));
    }
    for pair in result.rows.chunks(2) {
        if let [epidemic, mesh] = pair {
            out.push_str(&format!(
                "\n{} brokers: epidemic peak is {:.1}% of the mesh origin's O(N) burst",
                epidemic.brokers,
                100.0 * epidemic.peak_sends_per_publish / mesh.peak_sends_per_publish,
            ));
        }
    }
    out.push('\n');
    out
}

/// Writes the E8 result as machine-readable `BENCH_8.json` at the workspace
/// root.  Returns the path.
pub fn write_bench8_json(result: &EpidemicFanoutResult) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_8.json");
    let json = serde_json::to_string_pretty(result).expect("serialise E8 result");
    std::fs::write(&path, json)?;
    Ok(path)
}

// ----------------------------------------------------------------------
// E9 — SWIM failure detection: latency and false positives vs drop rate
// ----------------------------------------------------------------------

/// One cell of the E9 sweep: an epidemic federation of `brokers`, one
/// crash-stopped victim, seeded flaky links at `drop_percent` on every
/// backbone edge.
#[derive(Debug, Clone, Serialize)]
pub struct SwimDetectionRow {
    /// Federation size (including the victim).
    pub brokers: usize,
    /// Per-edge message drop probability (percent) during the sweep.
    pub drop_percent: u32,
    /// Survivors whose detector confirmed the victim dead — and whose
    /// active view excluded it — within the sweep's tick budget.
    pub survivors_detected: usize,
    /// Survivors total (`brokers - 1`).
    pub survivors: usize,
    /// Median detection latency in repair ticks after the crash, over the
    /// survivors that detected.
    pub detection_p50_ticks: f64,
    /// 99th-percentile detection latency in repair ticks.
    pub detection_p99_ticks: f64,
    /// Whether every survivor detected the crash within
    /// [`jxta_overlay::swim::PROBE_BUDGET_TICKS`].
    pub detected_within_budget: bool,
    /// `(broker, live peer)` pairs held `Dead` at sweep end — live brokers
    /// falsely buried (and not yet dug out by refutation).
    pub false_positive_pairs: u64,
    /// `false_positive_pairs` over all ordered live pairs.
    pub false_positive_rate: f64,
    /// Direct SWIM probes sent across the federation during the sweep.
    pub swim_probes: u64,
    /// Indirect ping-requests relayed during the sweep.
    pub swim_indirect_probes: u64,
    /// Incarnation refutations broadcast during the sweep.
    pub swim_refutations: u64,
    /// Messages the fault plan dropped (crash plus flaky links).
    pub dropped_messages: u64,
}

/// The E9 result.
#[derive(Debug, Clone, Serialize)]
pub struct SwimDetectionResult {
    /// Experiment identifier (`"e9-swim-detection"`).
    pub experiment: String,
    /// Whether the quick (CI smoke) sweep was run.
    pub quick: bool,
    /// The detection budget the `detected_within_budget` column is judged
    /// against, in repair ticks.
    pub probe_budget_ticks: u64,
    /// The measured cells.
    pub rows: Vec<SwimDetectionRow>,
}

/// Nearest-rank percentile of a sorted sample (`q` in `[0, 1]`).
fn percentile_ticks(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Measures one E9 cell.  Broker 1 crash-stops mid-broadcast; every other
/// edge runs a seeded flaky link at `drop_percent`.  The surviving brokers
/// drive their repair cadence for `2 ×` the probe budget, and a survivor
/// counts as having *detected* the crash at the first tick where its SWIM
/// record for the victim is `Dead` **and** its active view excludes the
/// victim — the operator-free eviction the detector exists to deliver.
pub fn measure_swim_detection(brokers: usize, drop_percent: u32, seed: u64) -> SwimDetectionRow {
    use jxta_overlay::broker::{Broker, BrokerConfig};
    use jxta_overlay::federation::InlineFederation;
    use jxta_overlay::net::{FaultPlan, SimNetwork};
    use jxta_overlay::swim::{PeerState, PROBE_BUDGET_TICKS};
    use jxta_overlay::{GroupId, PeerId, UserDatabase};

    let mut rng = jxta_crypto::drbg::HmacDrbg::from_seed_u64(seed);
    let network = SimNetwork::new(LinkModel::ideal());
    let database = Arc::new(UserDatabase::new());
    let members: Vec<Arc<Broker>> = (0..brokers)
        .map(|i| {
            Broker::new(
                PeerId::random(&mut rng),
                BrokerConfig::named(format!("broker-{}", i + 1)).with_view_capacities(4, 12),
                Arc::clone(&network),
                Arc::clone(&database),
            )
        })
        .collect();
    let ids: Vec<PeerId> = members.iter().map(|b| b.id()).collect();
    let federation = InlineFederation::new(members);
    assert!(federation.broker(0).epidemic_engaged());

    let victim = 1usize;
    let mut plan = FaultPlan::new(seed ^ 0xE9_5EED).crash_stop(ids[victim], 0);
    if drop_percent > 0 {
        for a in 0..brokers {
            for b in (a + 1)..brokers {
                plan = plan.flaky_link(ids[a], ids[b], drop_percent);
            }
        }
    }
    let plan = plan.into_adversary();
    network.set_adversary(plan.clone());

    // The crash lands mid-broadcast: the victim holds an undelivered
    // forwarding obligation when it goes dark.
    federation.broker(0).index_and_distribute(
        PeerId::random(&mut rng),
        &GroupId::new(EXPERIMENT_GROUP),
        "jxta:PipeAdvertisement",
        "<casualty/>",
    );
    federation.pump();

    let max_ticks = 2 * PROBE_BUDGET_TICKS;
    let mut detected_at: Vec<Option<u64>> = vec![None; brokers];
    for tick in 1..=max_ticks {
        for (i, id) in ids.iter().enumerate() {
            if !plan.is_crashed(id) {
                federation.broker(i).start_repair_round();
            }
        }
        federation.pump();
        plan.advance_tick();
        for (i, slot) in detected_at.iter_mut().enumerate() {
            if i == victim || slot.is_some() {
                continue;
            }
            let dead = matches!(
                federation.broker(i).swim_record(&ids[victim]).map(|r| r.state),
                Some(PeerState::Dead)
            );
            if dead && !federation.broker(i).active_view().contains(&ids[victim]) {
                *slot = Some(tick);
            }
        }
    }

    let mut latencies: Vec<u64> = detected_at.iter().flatten().copied().collect();
    latencies.sort_unstable();
    let survivors = brokers - 1;
    let detected_within_budget = latencies.len() == survivors
        && latencies.last().copied().unwrap_or(u64::MAX) <= PROBE_BUDGET_TICKS;

    // False positives: live brokers held dead at sweep end (drops still
    // active — this is the rate the drop dimension exists to expose).
    let mut false_positive_pairs = 0u64;
    for (i, id) in ids.iter().enumerate() {
        if i == victim {
            continue;
        }
        false_positive_pairs += federation
            .broker(i)
            .swim_dead_members()
            .iter()
            .filter(|peer| **peer != ids[victim] && **peer != *id)
            .count() as u64;
    }
    let live_pairs = (survivors * survivors.saturating_sub(1)) as f64;
    let stats_sum = |field: fn(&jxta_overlay::metrics::FederationStats) -> u64| -> u64 {
        (0..federation.len())
            .map(|b| field(&federation.broker(b).federation_stats()))
            .sum()
    };
    SwimDetectionRow {
        brokers,
        drop_percent,
        survivors_detected: latencies.len(),
        survivors,
        detection_p50_ticks: percentile_ticks(&latencies, 0.50),
        detection_p99_ticks: percentile_ticks(&latencies, 0.99),
        detected_within_budget,
        false_positive_pairs,
        false_positive_rate: if live_pairs > 0.0 {
            false_positive_pairs as f64 / live_pairs
        } else {
            0.0
        },
        swim_probes: stats_sum(|s| s.swim_probes),
        swim_indirect_probes: stats_sum(|s| s.swim_indirect_probes),
        swim_refutations: stats_sum(|s| s.swim_refutations),
        dropped_messages: plan.dropped_count(),
    }
}

/// Runs experiment E9: SWIM detection latency (p50/p99 repair ticks) and
/// false-positive rate against the drop rate, at 32 and 128 brokers.  The
/// quick sweep keeps the cells CI asserts on: zero false positives at drop
/// rate 0 (both sizes) and within-budget detection at 128 brokers.
pub fn experiment_swim_detection(config: &ExperimentConfig) -> SwimDetectionResult {
    let quick = config.iterations <= ExperimentConfig::quick().iterations;
    let drops: &[u32] = if quick { &[0, 25] } else { &[0, 10, 25, 40] };
    let mut rows = Vec::new();
    for &brokers in &[32usize, 128] {
        for &drop_percent in drops {
            if quick && brokers == 128 && drop_percent > 0 {
                continue; // the quick sweep keeps only the asserted cells
            }
            let seed = 0xE9_0000 ^ (brokers as u64) ^ ((drop_percent as u64) << 32);
            rows.push(measure_swim_detection(brokers, drop_percent, seed));
        }
    }
    SwimDetectionResult {
        experiment: "e9-swim-detection".to_string(),
        quick,
        probe_budget_ticks: jxta_overlay::swim::PROBE_BUDGET_TICKS,
        rows,
    }
}

/// Formats E9 as a text table.
pub fn format_swim_detection_report(result: &SwimDetectionResult) -> String {
    let mut out = format!(
        "E9 — SWIM failure detection: latency (repair ticks) and false positives vs drop rate (budget = {} ticks)\n\
         -------------------------------------------------------------------------------------------------------\n\
         brokers | drop % | detected | p50 | p99 | in budget | false+ pairs | false+ rate | probes | indirect | refutations\n",
        result.probe_budget_ticks
    );
    for row in &result.rows {
        out.push_str(&format!(
            "{:>7} | {:>6} | {:>4}/{:<4} | {:>3.0} | {:>3.0} | {:>9} | {:>12} | {:>11.4} | {:>6} | {:>8} | {:>11}\n",
            row.brokers,
            row.drop_percent,
            row.survivors_detected,
            row.survivors,
            row.detection_p50_ticks,
            row.detection_p99_ticks,
            row.detected_within_budget,
            row.false_positive_pairs,
            row.false_positive_rate,
            row.swim_probes,
            row.swim_indirect_probes,
            row.swim_refutations,
        ));
    }
    out
}

/// Writes the E9 result as machine-readable `BENCH_9.json` at the workspace
/// root.  Returns the path.
pub fn write_bench9_json(result: &SwimDetectionResult) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_9.json");
    let json = serde_json::to_string_pretty(result).expect("serialise E9 result");
    std::fs::write(&path, json)?;
    Ok(path)
}

// ----------------------------------------------------------------------
// E6 — broker ingest throughput: lanes × verify workers × cache ablation
// ----------------------------------------------------------------------

/// One configuration of the ingest-throughput sweep.
#[derive(Debug, Clone, Serialize)]
pub struct IngestRow {
    /// Secure clients hammering the first broker with signed publishes.
    pub clients: usize,
    /// Ingress verify workers (0 = the classic single event-loop thread).
    pub verify_workers: usize,
    /// Apply lanes actually spawned at broker 0 (0 when the pipeline is
    /// off; 1 reproduces the PR 5 fully serialized apply stage).
    pub apply_lanes: u64,
    /// Whether the verified-signature cache was enabled.
    pub cache: bool,
    /// Signed publishes *applied* during the timed phase.  Shed traffic is
    /// never counted: the row fails outright if any measured publish was
    /// dropped under backpressure, so throughput is always over work the
    /// brokers actually performed.
    pub messages: usize,
    /// Publishes shed (dropped after the backpressure timeout) during the
    /// timed phase.  Always 0 in a row that made it into the report — a
    /// non-zero count panics instead of silently inflating `msgs_per_sec`.
    pub shed: u64,
    /// Wall-clock time of the timed phase (all publishes acknowledged and
    /// the 2-broker federation reconverged), in milliseconds.
    pub elapsed_ms: f64,
    /// `messages / elapsed` — the headline ingest throughput, over applied
    /// messages only.
    pub msgs_per_sec: f64,
    /// Verified-signature-cache hits summed over both brokers.
    pub verify_cache_hits: u64,
    /// Verified-signature-cache misses summed over both brokers.
    pub verify_cache_misses: u64,
    /// Cache hit rate over the *gossip/repair* phase alone: a lossy episode
    /// diverges the replicas, and the anti-entropy snapshots re-ship every
    /// signed advertisement — bytes the receiving broker has already
    /// verified, so this approaches 1.0 with the cache and 0.0 without.
    pub repair_cache_hit_rate: f64,
    /// Bounded-inbox overflow (backpressure) events observed.
    pub inbox_overflows: u64,
    /// Largest run of tickets the dispatcher drained at once.
    pub max_apply_batch: u64,
    /// Messages applied by the busiest lane at broker 0 — lane skew.
    pub busiest_lane_messages: u64,
    /// Partition-spanning messages that drained all lanes at broker 0.
    pub barriers_applied: u64,
}

/// Result of the E6 sweep, with the acceptance ratios precomputed.
#[derive(Debug, Clone, Serialize)]
pub struct IngestThroughputResult {
    /// The swept configurations.
    pub rows: Vec<IngestRow>,
    /// Best pipelined-and-cached throughput divided by the single-thread
    /// uncached baseline (the pre-pipeline broker loop).
    pub speedup_vs_single_thread: f64,
    /// Best `(verify_workers > 0, cache on)` throughput divided by the
    /// `(verify_workers = 0, cache on)` row — the PR 5 regression metric.
    /// Must be > 1: the laned pipeline beats the inline loop at equal cache
    /// settings, which the serialized single apply thread never managed.
    pub pipelined_vs_inline_cached: f64,
    /// Multi-lane cached throughput divided by the `apply_lanes = 1`
    /// (serialized-apply ablation) cached throughput, both pipelined.
    /// Isolates the win of partitioning the apply stage itself.
    pub laned_vs_serialized_apply: f64,
    /// The gossip/repair-phase cache hit rate of the best cached row.
    pub repair_cache_hit_rate: f64,
}

/// Measures one ingest-throughput configuration: `clients` secure clients
/// joined at broker 0 of a 2-broker federation re-publish their signed pipe
/// advertisement `republishes` times each from parallel threads.  The timed
/// phase ends when every publish is acknowledged and the federation has
/// reconverged (so the gossip application at broker 1 is part of the cost).
/// A lossy-backbone episode plus one anti-entropy repair round afterwards
/// measures the cache hit rate on re-shipped snapshot content.
///
/// `apply_lanes` is forwarded to [`SecureNetworkBuilder::with_apply_lanes`]
/// when `Some`; `Some(1)` is the serialized-apply ablation (the PR 5
/// pipeline), `None` sizes the lanes to the verify workers.
///
/// The row **panics** if any measured publish is shed under backpressure:
/// the backpressure timeout is raised far above the drain deadline so an
/// overloaded broker blocks its producers instead of dropping, and
/// `msgs_per_sec` is computed over applied messages only — never over
/// traffic that fell on the floor.
pub fn measure_ingest_throughput(
    config: &ExperimentConfig,
    clients: usize,
    verify_workers: usize,
    apply_lanes: Option<usize>,
    cache: bool,
    republishes: usize,
) -> IngestRow {
    use jxta_overlay::net::RandomDrop;
    use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
    use jxta_overlay::{Message, MessageKind};
    use jxta_overlay_secure::signed_adv::signed_pipe_advertisement;

    // Debug builds carry the lock-order detector, whose per-acquisition
    // bookkeeping taxes configurations in proportion to their lock traffic
    // — the very quantity this measurement compares across pipeline
    // shapes.  Pause it so the smoke assertions gate the pipeline, not the
    // instrument.  (Release/bench builds: no-op.)
    let _untimed = parking_lot::lock_order::pause_detection();

    // One group per client: the bench measures the broker's *verification*
    // path, so the member-push fan-out (a separate, already-benched cost) is
    // kept off the wire.  The key size is floored at the deployment default
    // (1024 bits) even in quick mode — the whole point of E6 is a
    // verification-heavy workload, and 512-bit verifies are too cheap to be
    // the bottleneck they are in production-sized deployments.
    let mut builder = SecureNetworkBuilder::new(config.seed)
        .with_key_bits(config.key_bits.max(DEFAULT_KEY_BITS))
        .with_link(LinkModel::ideal())
        .with_broker_count(2)
        .with_verify_workers(verify_workers)
        .with_inbox_capacity(256)
        .with_verify_cache_capacity(if cache { 4096 } else { 0 });
    if let Some(lanes) = apply_lanes {
        builder = builder.with_apply_lanes(lanes);
    }
    for i in 0..clients {
        let group = format!("{EXPERIMENT_GROUP}-{i}");
        builder = builder.with_user(
            &format!("user-{i}"),
            &format!("password-{i}"),
            &[group.as_str()],
        );
    }
    let mut setup = builder.build();
    let broker = setup.broker_id();
    // A measured row must not shed: raise the backpressure timeout far above
    // the drain deadline so an overloaded broker *blocks* the publish storm
    // instead of dropping part of it (and quietly inflating msgs/sec).
    setup
        .network()
        .set_backpressure_timeout(Duration::from_secs(120));

    // Warm-up (unmeasured): join, sign the advertisement once, publish it.
    let mut workers: Vec<(SecureClient, GroupId, String)> = (0..clients)
        .map(|i| {
            let group = GroupId::new(format!("{EXPERIMENT_GROUP}-{i}"));
            let mut client = setup.secure_client(&format!("ingest-{i}"));
            client
                .secure_join(broker, &format!("user-{i}"), &format!("password-{i}"))
                .expect("secure join");
            let advertisement = PipeAdvertisement {
                owner: client.id(),
                group: group.clone(),
                name: format!("ingest-{i}-inbox"),
            };
            let xml = signed_pipe_advertisement(
                &advertisement,
                client.identity(),
                client.credential().expect("credential after join"),
            )
            .expect("signing");
            client
                .inner_mut()
                .publish_advertisement(&group, PipeAdvertisement::DOC_TYPE, &xml)
                .expect("warm-up publish");
            (client, group, xml)
        })
        .collect();
    assert!(
        setup.federation().await_convergence(Duration::from_secs(10)),
        "warm-up must converge"
    );

    // Timed phase: every client's signed advertisement refresh — identical
    // bytes, identical signature, the JXTA advertisement-refresh pattern —
    // is fired into the broker without waiting for the acks, and the clock
    // stops when both brokers have fully drained (publishes verified,
    // indexed and gossip applied).  This measures broker ingest capacity,
    // not client round-trip scheduling.
    let network = Arc::clone(setup.network());
    let prepared: Vec<(jxta_overlay::PeerId, Vec<u8>)> = workers
        .iter()
        .map(|(client, group, xml)| {
            let message = Message::new(MessageKind::PublishAdvertisement, client.id(), 0)
                .with_str("group", group.as_str())
                .with_str("doc-type", PipeAdvertisement::DOC_TYPE)
                .with_str("xml", xml);
            (client.id(), message.to_bytes())
        })
        .collect();
    let broker_ids = [setup.broker_id_at(0), setup.broker_id_at(1)];
    let brokers = [
        Arc::clone(setup.broker_at(0)),
        Arc::clone(setup.broker_at(1)),
    ];
    let shed_before = network.stats().overflow_dropped;
    let started = std::time::Instant::now();
    for _ in 0..republishes {
        for (from, bytes) in &prepared {
            network
                .send(*from, broker_ids[0], bytes.clone())
                .expect("timed publish send");
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let drained = brokers
            .iter()
            .zip(&broker_ids)
            .all(|(broker, id)| broker.processed_count() == network.delivered_to(id));
        if drained {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "brokers must drain the publish storm"
        );
        // Sleep-poll rather than spin: on small machines a spinning waiter
        // competes with the broker threads for the same cores.
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = started.elapsed();
    let shed = network.stats().overflow_dropped - shed_before;
    assert_eq!(
        shed,
        0,
        "measured row shed {shed} publishes under backpressure \
         (broker0 {}, broker1 {}) — throughput over dropped traffic is \
         meaningless; raise the inbox capacity or backpressure timeout",
        network.shed_to(&broker_ids[0]),
        network.shed_to(&broker_ids[1]),
    );
    // Applied traffic only: with zero shed this equals the offered load,
    // and the assert above guarantees the two never silently diverge.
    let messages = clients * republishes - shed as usize;
    // Clear the acknowledgement backlog out of the client inboxes.
    for (client, _, _) in workers.iter_mut() {
        let _ = client.inner_mut().poll_events();
    }

    // Gossip/repair phase: drop all backbone gossip while each client
    // refreshes once more, then lift the drops and run anti-entropy — the
    // snapshots re-ship every signed advertisement to the diverged replica.
    let backbone = vec![setup.broker_id_at(0), setup.broker_id_at(1)];
    setup
        .network()
        .set_adversary(RandomDrop::between(config.seed ^ 0xE5, 100, backbone));
    for (client, group, xml) in workers.iter_mut() {
        client
            .inner_mut()
            .publish_advertisement(group, PipeAdvertisement::DOC_TYPE, xml)
            .expect("lossy-phase publish");
    }
    setup.network().clear_adversary();
    let before_repair: Vec<_> = (0..2)
        .map(|i| setup.broker_extension_at(i).verify_cache_stats())
        .collect();
    setup.federation().trigger_repair();
    assert!(
        setup.federation().await_convergence(Duration::from_secs(30)),
        "repair must reconverge the federation"
    );
    let after_repair: Vec<_> = (0..2)
        .map(|i| setup.broker_extension_at(i).verify_cache_stats())
        .collect();
    let repair_hits: u64 = after_repair
        .iter()
        .zip(&before_repair)
        .map(|(a, b)| a.hits - b.hits)
        .sum();
    let repair_misses: u64 = after_repair
        .iter()
        .zip(&before_repair)
        .map(|(a, b)| a.misses - b.misses)
        .sum();
    let repair_total = repair_hits + repair_misses;

    let cache_stats: Vec<_> = (0..2)
        .map(|i| setup.broker_extension_at(i).verify_cache_stats())
        .collect();
    let pipeline = setup.broker_at(0).pipeline_stats();
    let net_stats = setup.network().stats();
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    IngestRow {
        clients,
        verify_workers,
        apply_lanes: pipeline.apply_lanes,
        cache,
        messages,
        shed,
        elapsed_ms,
        msgs_per_sec: messages as f64 / elapsed.as_secs_f64(),
        verify_cache_hits: cache_stats.iter().map(|s| s.hits).sum(),
        verify_cache_misses: cache_stats.iter().map(|s| s.misses).sum(),
        repair_cache_hit_rate: if repair_total == 0 {
            0.0
        } else {
            repair_hits as f64 / repair_total as f64
        },
        inbox_overflows: net_stats.inbox_overflows,
        max_apply_batch: pipeline.max_apply_batch,
        busiest_lane_messages: pipeline.busiest_lane_messages,
        barriers_applied: pipeline.barriers_applied,
    }
}

/// Runs experiment E6: the ingest-throughput ablation over verify workers ×
/// apply lanes × cache, on a verification-heavy signed-publish workload.
/// The `apply_lanes = 1` row reproduces the PR 5 serialized apply stage, so
/// the sweep shows exactly where the old pipeline lost to the inline loop
/// and where the partitioned lanes win it back.
pub fn experiment_ingest_throughput(config: &ExperimentConfig) -> IngestThroughputResult {
    let clients = 8;
    // Per-row cost is dominated by the RSA deployment setup, not by the
    // publishes themselves, so a deep timed phase is nearly free — and it
    // keeps the measured window well above a scheduler quantum, where a
    // single preemption would otherwise swing a row by double digits.
    let republishes = (config.iterations * 40).max(40);
    // (verify_workers, apply_lanes, cache)
    let sweep: [(usize, Option<usize>, bool); 5] = [
        (0, None, false),    // classic inline loop
        (0, None, true),     // inline + cache: the row PR 5 lost to
        (4, Some(1), true),  // PR 5 ablation: pipelined, serialized apply
        (4, None, false),    // laned pipeline, no cache
        (4, None, true),     // laned pipeline + cache: the headline row
    ];
    let mut rows = Vec::new();
    for &(verify_workers, apply_lanes, cache) in &sweep {
        // Minimum-elapsed estimate: scheduling noise on a busy host only
        // ever *adds* time, so the fastest of five runs is the cleanest
        // estimate of what the configuration actually costs.
        let best = (0..5)
            .map(|_| {
                measure_ingest_throughput(
                    config,
                    clients,
                    verify_workers,
                    apply_lanes,
                    cache,
                    republishes,
                )
            })
            .max_by(|a, b| a.msgs_per_sec.total_cmp(&b.msgs_per_sec))
            .expect("three runs produce a row");
        rows.push(best);
    }
    summarize_ingest(rows)
}

/// Computes the acceptance ratios of an E6 sweep.  Speed-up compares rows of
/// the **same client count only** (same offered load): the best cached row
/// against the single-thread uncached baseline, maximised over the client
/// counts for which both exist.  The regression ratios
/// ([`IngestThroughputResult::pipelined_vs_inline_cached`] and
/// [`IngestThroughputResult::laned_vs_serialized_apply`]) likewise pair rows
/// at equal client counts and are `NaN` when a sweep lacks the paired rows.
pub fn summarize_ingest(rows: Vec<IngestRow>) -> IngestThroughputResult {
    let mut speedup = f64::NAN;
    let mut pipelined_vs_inline = f64::NAN;
    let mut laned_vs_serialized = f64::NAN;
    let mut repair_hit_rate = 0.0;
    let mut client_counts: Vec<usize> = rows.iter().map(|row| row.clients).collect();
    client_counts.sort_unstable();
    client_counts.dedup();
    for clients in client_counts {
        let at = |predicate: &dyn Fn(&&IngestRow) -> bool| -> Option<&IngestRow> {
            rows.iter()
                .filter(|row| row.clients == clients)
                .filter(predicate)
                .max_by(|a, b| a.msgs_per_sec.total_cmp(&b.msgs_per_sec))
        };
        if let (Some(baseline), Some(best_cached)) = (
            at(&|row| row.verify_workers == 0 && !row.cache),
            at(&|row| row.cache),
        ) {
            let ratio = best_cached.msgs_per_sec / baseline.msgs_per_sec;
            if speedup.is_nan() || ratio > speedup {
                speedup = ratio;
                repair_hit_rate = best_cached.repair_cache_hit_rate;
            }
        }
        if let (Some(inline_cached), Some(pipelined_cached)) = (
            at(&|row| row.verify_workers == 0 && row.cache),
            at(&|row| row.verify_workers > 0 && row.cache),
        ) {
            let ratio = pipelined_cached.msgs_per_sec / inline_cached.msgs_per_sec;
            if pipelined_vs_inline.is_nan() || ratio > pipelined_vs_inline {
                pipelined_vs_inline = ratio;
            }
        }
        if let (Some(serialized), Some(laned)) = (
            at(&|row| row.verify_workers > 0 && row.cache && row.apply_lanes == 1),
            at(&|row| row.verify_workers > 0 && row.cache && row.apply_lanes > 1),
        ) {
            let ratio = laned.msgs_per_sec / serialized.msgs_per_sec;
            if laned_vs_serialized.is_nan() || ratio > laned_vs_serialized {
                laned_vs_serialized = ratio;
            }
        }
    }
    IngestThroughputResult {
        speedup_vs_single_thread: speedup,
        pipelined_vs_inline_cached: pipelined_vs_inline,
        laned_vs_serialized_apply: laned_vs_serialized,
        repair_cache_hit_rate: repair_hit_rate,
        rows,
    }
}

/// Formats E6 as a text table.
pub fn format_ingest_report(result: &IngestThroughputResult) -> String {
    let mut out = String::from(
        "E6 — broker ingest throughput (signed publishes; lanes × verify workers × cache)\n\
         --------------------------------------------------------------------------------\n\
         clients | workers | lanes | cache | msgs | elapsed (ms) | msgs/sec | cache hits/misses | repair hit rate\n",
    );
    for row in &result.rows {
        out.push_str(&format!(
            "{:>7} | {:>7} | {:>5} | {:<5} | {:>4} | {:>12.1} | {:>8.0} | {:>9}/{:<7} | {:>14.2}\n",
            row.clients,
            row.verify_workers,
            row.apply_lanes,
            if row.cache { "on" } else { "off" },
            row.messages,
            row.elapsed_ms,
            row.msgs_per_sec,
            row.verify_cache_hits,
            row.verify_cache_misses,
            row.repair_cache_hit_rate,
        ));
    }
    out.push_str(&format!(
        "\nspeed-up (best cached vs single-thread uncached): {:.2}x\n\
         pipelined+cached vs inline+cached:                {:.2}x\n\
         laned apply vs serialized apply (both cached):    {:.2}x\n\
         gossip/repair-phase cache hit rate:               {:.2}\n",
        result.speedup_vs_single_thread,
        result.pipelined_vs_inline_cached,
        result.laned_vs_serialized_apply,
        result.repair_cache_hit_rate
    ));
    out
}

/// Writes the E6 result as machine-readable `BENCH_6.json` at the workspace
/// root (the second point of the repo's performance trajectory;
/// `BENCH_5.json` stays on disk as the pre-laned record).  Returns the path.
pub fn write_bench6_json(result: &IngestThroughputResult) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_6.json");
    let json = serde_json::to_string_pretty(result).expect("serialise E6 result");
    std::fs::write(&path, json)?;
    Ok(path)
}

// ----------------------------------------------------------------------
// Report formatting
// ----------------------------------------------------------------------

/// Formats E1 as a small text table.
pub fn format_join_report(result: &JoinOverheadResult) -> String {
    format!(
        "E1 — network join overhead (connect+login vs secureConnection+secureLogin)\n\
         ---------------------------------------------------------------------------\n\
         plain  join mean: {:>10.3} ms  (min {:.3}, max {:.3})\n\
         secure join mean: {:>10.3} ms  (min {:.3}, max {:.3})\n\
         measured overhead: {:>8.2} %\n\
         paper    overhead: {:>8.2} %\n",
        result.plain.mean_ms,
        result.plain.min_ms,
        result.plain.max_ms,
        result.secure.mean_ms,
        result.secure.min_ms,
        result.secure.max_ms,
        result.overhead_percent,
        result.paper_overhead_percent,
    )
}

/// Formats E2 as the series plotted in Figure 2.
pub fn format_msg_report(rows: &[MsgOverheadRow]) -> String {
    let mut out = String::from(
        "E2 — Figure 2: secureMsgPeer overhead vs payload size\n\
         ------------------------------------------------------\n\
         payload (bytes) | plain mean (ms) | secure mean (ms) | overhead (%)\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>15} | {:>15.3} | {:>16.3} | {:>11.2}\n",
            row.payload_bytes, row.plain.mean_ms, row.secure.mean_ms, row.overhead_percent
        ));
    }
    out
}

/// Formats E3 (relay overhead + sharding scale) as text tables.
pub fn format_federation_report(result: &FederationExperimentResult) -> String {
    let mut out = format!(
        "E3 — federation relay overhead vs direct messaging\n\
         ---------------------------------------------------\n\
         direct (same broker) mean: {:.3} ms\n\
         brokers | mode  | relayed mean (ms) | overhead (%)\n",
        result.direct.mean_ms
    );
    for row in &result.relay_rows {
        out.push_str(&format!(
            "{:>7} | {:<5} | {:>17.3} | {:>11.2}\n",
            row.broker_count, row.mode, row.relayed.mean_ms, row.overhead_percent
        ));
    }
    out.push_str(
        "\nSharding scale (64 publishes; index entries per broker, gossip messages)\n\
         brokers | mode  | max entries/broker | backbone msgs\n",
    );
    for row in &result.scaling_rows {
        out.push_str(&format!(
            "{:>7} | {:<5} | {:>18} | {:>13}\n",
            row.broker_count, row.mode, row.max_entries_per_broker, row.backbone_messages
        ));
    }
    out
}

/// Formats the fan-out ablation table.
pub fn format_fanout_report(rows: &[FanoutRow]) -> String {
    let mut out = String::from(
        "A3 — secureMsgPeerGroup fan-out\n\
         --------------------------------\n\
         group size | sequential (ms) | parallel (ms) | speed-up\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>10} | {:>15.3} | {:>13.3} | {:>7.2}x\n",
            row.group_size, row.sequential.mean_ms, row.parallel.mean_ms, row.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let samples = [
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(3),
        ];
        let stats = Stats::from_samples(&samples);
        assert!((stats.mean_ms - 2.0).abs() < 1e-9);
        assert!((stats.min_ms - 1.0).abs() < 1e-9);
        assert!((stats.max_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn stats_require_samples() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn payload_generation() {
        assert_eq!(make_payload(0).len(), 0);
        assert_eq!(make_payload(100).len(), 100);
        assert!(make_payload(64).is_ascii());
    }

    #[test]
    fn quick_join_experiment_shows_secure_is_slower() {
        let result = experiment_join_overhead(&ExperimentConfig::quick());
        assert!(result.secure.mean_ms > result.plain.mean_ms);
        assert!(result.overhead_percent > 0.0);
        assert!(format_join_report(&result).contains("81.76"));
    }

    #[test]
    fn quick_msg_experiment_overhead_decays_with_size() {
        let config = ExperimentConfig::quick();
        let rows = experiment_msg_overhead(&config, &[256, 256 << 10]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].overhead_percent > rows[1].overhead_percent,
            "relative overhead must fall as the payload (and thus wire time) grows: {rows:?}");
        assert!(format_msg_report(&rows).contains("payload"));
    }

    #[test]
    fn quick_federated_world_relays_across_brokers() {
        let config = ExperimentConfig::quick();
        let mut world = build_federated_world(&config, 2, 2);
        assert_eq!(world.setup.broker_count(), 2);
        assert_eq!(world.clients.len(), 2);
        let timing = measure_cross_broker_message(&mut world, "benchmark ping");
        assert!(timing.total() > Duration::ZERO);
        assert_eq!(
            world.setup.broker_at(0).federation_stats().relays_forwarded,
            1
        );
    }

    #[test]
    fn quick_sharded_federated_world_relays_across_brokers() {
        let config = ExperimentConfig::quick();
        let mut world = build_federated_world_with_replication(&config, 4, 2, Some(2));
        assert_eq!(world.setup.broker_count(), 4);
        let timing = measure_cross_broker_message(&mut world, "sharded ping");
        assert!(timing.total() > Duration::ZERO);
    }

    #[test]
    fn shard_scaling_shows_k_not_n_growth() {
        let full = measure_shard_scaling(4, None, 64);
        let sharded = measure_shard_scaling(4, Some(2), 64);
        assert_eq!(full.max_entries_per_broker, 64, "full replication: every entry everywhere");
        assert!(sharded.max_entries_per_broker < 64, "sharded: a shard per broker");
        assert_eq!(sharded.per_broker_entries.iter().sum::<usize>(), 64 * 2);
        assert!(sharded.backbone_messages < full.backbone_messages);
        assert!(format_federation_report(&FederationExperimentResult {
            direct: Stats::from_samples(&[Duration::from_millis(1)]),
            relay_rows: vec![],
            scaling_rows: vec![full, sharded],
        })
        .contains("backbone msgs"));
    }

    #[test]
    fn repair_experiment_heals_lossy_backbones() {
        // No loss: nothing diverges and repair has nothing to do.
        let clean = measure_repair(4, Some(2), 0, 24, 7);
        assert!(!clean.diverged);
        assert_eq!(clean.repair_rounds, Some(0));
        assert_eq!(clean.messages_dropped, 0);

        // Half the backbone messages lost: the replicas diverge, and a
        // bounded number of repair rounds reconverges them.
        let lossy = measure_repair(4, Some(2), 50, 24, 7);
        assert!(lossy.messages_dropped > 0);
        assert!(lossy.diverged, "50% loss must diverge the replicas");
        assert!(lossy.repair_rounds.is_some(), "repair must reconverge");
        assert!(lossy.entries_repaired > 0);
        assert!(format_repair_report(&[clean, lossy]).contains("repair rounds"));
    }

    #[test]
    fn ingest_smoke_verify_cache_stays_effective() {
        // The guard the CI bench smoke relies on: the verified-signature
        // cache must keep absorbing the gossip/repair phase (a silent
        // regression to 0% would leave the pipeline re-verifying everything
        // and the E6 acceptance numbers would quietly evaporate).
        let config = ExperimentConfig::quick();
        let cached = measure_ingest_throughput(&config, 4, 2, None, true, 6);
        assert!(
            cached.repair_cache_hit_rate > 0.5,
            "gossip/repair-phase cache hit rate regressed: {:.2}",
            cached.repair_cache_hit_rate
        );
        assert!(
            cached.verify_cache_hits > cached.verify_cache_misses,
            "re-published signatures must be cache hits ({}/{})",
            cached.verify_cache_hits,
            cached.verify_cache_misses
        );
        assert_eq!(cached.apply_lanes, 2, "lanes default to the worker count");
        assert_eq!(cached.shed, 0, "a measured row never sheds");

        // The ablation baseline really runs uncached and unlaned.
        let baseline = measure_ingest_throughput(&config, 4, 0, None, false, 6);
        assert_eq!(baseline.verify_cache_hits, 0);
        assert_eq!(baseline.verify_cache_misses, 0);
        assert_eq!(baseline.repair_cache_hit_rate, 0.0);
        assert_eq!(baseline.apply_lanes, 0, "no pipeline, no lanes");

        let result = summarize_ingest(vec![baseline, cached]);
        assert!(result.speedup_vs_single_thread.is_finite());
        assert!(format_ingest_report(&result).contains("repair hit rate"));
    }

    #[test]
    fn ingest_smoke_pipelined_apply_beats_inline_at_equal_cache() {
        // The PR 5 regression, pinned: with the cache on, adding verify
        // workers used to *lose* to the inline loop (~0.77x) because every
        // verified message still funnelled through one apply thread.  The
        // laned apply stage must keep the pipelined row at parity or
        // better.  Two things make the comparison noise-proof on small
        // shared boxes: a timed phase deep enough (1 280 messages) that a
        // single scheduler preemption can no longer swing a row by double
        // digits, and taking each side's fastest of three interleaved runs
        // — preemption only ever *adds* elapsed time, so minimum-elapsed is
        // the cleanest estimate of a configuration's true cost.  A 10 %
        // band absorbs the residue; the old regression (~0.77x) trips it
        // by a wide margin, and the BENCH_6.json sweep carries the strict
        // numbers.
        let config = ExperimentConfig::quick();
        let mut inline_cached: f64 = 0.0;
        let mut pipelined_cached: f64 = 0.0;
        for _ in 0..3 {
            inline_cached = inline_cached
                .max(measure_ingest_throughput(&config, 8, 0, None, true, 160).msgs_per_sec);
            pipelined_cached = pipelined_cached
                .max(measure_ingest_throughput(&config, 8, 4, None, true, 160).msgs_per_sec);
        }
        assert!(
            pipelined_cached >= inline_cached * 0.9,
            "laned pipeline regressed below the inline loop at equal cache \
             settings: {pipelined_cached:.0} < {inline_cached:.0} msgs/sec"
        );
    }

    #[test]
    fn quick_fanout_experiment_runs() {
        let config = ExperimentConfig::quick();
        let rows = experiment_group_fanout(&config, &[2]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].group_size, 2);
        assert!(rows[0].sequential.mean_ms > 0.0);
        assert!(rows[0].parallel.mean_ms > 0.0);
        assert!(format_fanout_report(&rows).contains("group size"));
    }
}
