//! Regenerates the paper's evaluation tables from the command line.
//!
//! ```text
//! cargo run --release -p jxta-bench --bin experiments -- all
//! cargo run --release -p jxta-bench --bin experiments -- e1        # join overhead
//! cargo run --release -p jxta-bench --bin experiments -- e2        # Figure 2
//! cargo run --release -p jxta-bench --bin experiments -- e3        # federation/sharding relay overhead
//! cargo run --release -p jxta-bench --bin experiments -- e4        # anti-entropy repair vs drop rate
//! cargo run --release -p jxta-bench --bin experiments -- e6        # ingest throughput (lanes × workers × cache), writes BENCH_6.json
//! cargo run --release -p jxta-bench --bin experiments -- e7        # delta repair: tree descent vs flat snapshots, writes BENCH_7.json
//! cargo run --release -p jxta-bench --bin experiments -- e8        # epidemic backbone vs full mesh fan-out, writes BENCH_8.json
//! cargo run --release -p jxta-bench --bin experiments -- e9        # SWIM detection latency & false positives vs drop rate, writes BENCH_9.json
//! cargo run --release -p jxta-bench --bin experiments -- fanout    # ablation A3
//! cargo run --release -p jxta-bench --bin experiments -- all --quick --json
//! ```
//!
//! `--quick` uses 512-bit keys and fewer repetitions (useful for CI smoke
//! runs); `--json` additionally prints machine-readable results.

use jxta_bench::{
    experiment_delta_repair, experiment_epidemic_fanout, experiment_federation,
    experiment_group_fanout, experiment_ingest_throughput, experiment_join_overhead,
    experiment_msg_overhead, experiment_repair, experiment_swim_detection,
    format_delta_repair_report, format_epidemic_fanout_report, format_fanout_report,
    format_federation_report, format_ingest_report, format_join_report, format_msg_report,
    format_repair_report, format_swim_detection_report, write_bench6_json, write_bench7_json,
    write_bench8_json, write_bench9_json, ExperimentConfig, FIGURE2_PAYLOAD_SIZES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    println!(
        "JXTA-Overlay security-cost experiments (key size: {} bits, link: {:?}, {} iterations)\n",
        config.key_bits, config.link, config.iterations
    );

    if which == "e1" || which == "all" {
        let result = experiment_join_overhead(&config);
        println!("{}", format_join_report(&result));
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if which == "e2" || which == "all" {
        let sizes: Vec<usize> = if quick {
            vec![256, 16 << 10, 256 << 10]
        } else {
            FIGURE2_PAYLOAD_SIZES.to_vec()
        };
        let rows = experiment_msg_overhead(&config, &sizes);
        println!("{}", format_msg_report(&rows));
        if json {
            println!("{}\n", serde_json::to_string_pretty(&rows).unwrap());
        }
    }

    if which == "e3" || which == "federation" || which == "all" {
        let result = experiment_federation(&config);
        println!("{}", format_federation_report(&result));
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if which == "e4" || which == "repair" || which == "all" {
        let rows = experiment_repair(&config);
        println!("{}", format_repair_report(&rows));
        if json {
            println!("{}\n", serde_json::to_string_pretty(&rows).unwrap());
        }
    }

    if which == "fanout" || which == "all" {
        let sizes: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 8, 16] };
        let rows = experiment_group_fanout(&config, &sizes);
        println!("{}", format_fanout_report(&rows));
        if json {
            println!("{}\n", serde_json::to_string_pretty(&rows).unwrap());
        }
    }

    // `e5` stays as an alias: the E6 sweep supersedes it (same workload, plus
    // the apply-lane dimension) and now writes BENCH_6.json.
    if which == "e5" || which == "e6" || which == "ingest" || which == "all" {
        let result = experiment_ingest_throughput(&config);
        println!("{}", format_ingest_report(&result));
        match write_bench6_json(&result) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(error) => eprintln!("could not write BENCH_6.json: {error}"),
        }
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if which == "e7" || which == "delta" || which == "all" {
        let result = experiment_delta_repair(&config);
        println!("{}", format_delta_repair_report(&result));
        match write_bench7_json(&result) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(error) => eprintln!("could not write BENCH_7.json: {error}"),
        }
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if which == "e8" || which == "epidemic" || which == "all" {
        let result = experiment_epidemic_fanout(&config);
        println!("{}", format_epidemic_fanout_report(&result));
        match write_bench8_json(&result) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(error) => eprintln!("could not write BENCH_8.json: {error}"),
        }
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if which == "e9" || which == "swim" || which == "all" {
        let result = experiment_swim_detection(&config);
        println!("{}", format_swim_detection_report(&result));
        match write_bench9_json(&result) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(error) => eprintln!("could not write BENCH_9.json: {error}"),
        }
        if json {
            println!("{}\n", serde_json::to_string_pretty(&result).unwrap());
        }
    }

    if ![
        "e1", "e2", "e3", "federation", "e4", "repair", "e5", "e6", "ingest", "e7", "delta",
        "e8", "epidemic", "e9", "swim", "fanout", "all",
    ]
    .contains(&which.as_str())
    {
        eprintln!("unknown experiment {which:?}; expected e1, e2, e3, e4, e5, e6, e7, e8, e9, fanout or all");
        std::process::exit(1);
    }
}
