// Fixture: allocations sized by wire-decoded integers with no clamp — a
// hostile peer controls the count.  Must trip `unchecked-capacity`.

fn decode_list(bytes: &[u8]) -> Vec<Entry> {
    let count = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let mut out = Vec::with_capacity(count);
    out
}

fn decode_text(body: &str) -> Vec<String> {
    let n: usize = body.lines().next().unwrap().parse().unwrap_or(0);
    let total = n * 2;
    Vec::with_capacity(total)
}
