// Fixture: parking_lot locks constructed without a lock class — the
// lock-order detector cannot name them.  Must trip `unclassed-lock`.

fn build_state() -> State {
    State {
        peers: Mutex::new(Vec::new()),
        routes: RwLock::new(HashMap::new()),
    }
}
