// Fixture: idiomatic code following every invariant.  Must scan clean.

impl Broker {
    fn adopt_session(&self, peer: PeerId, session: PeerSession) {
        self.sessions.write().insert(peer, session);
        self.touch_repair_state();
    }

    fn announce(&self, target: BrokerId, message: Message) {
        self.send_sequenced(target, message);
    }

    fn decode_list(&self, bytes: &[u8]) -> Vec<u8> {
        let count = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        Vec::with_capacity(count.min(bytes.len() / 4 + 1))
    }

    fn build_state() -> State {
        State {
            peers: Mutex::with_class("fixture.peers", Vec::new()),
            routes: RwLock::with_class("fixture.routes", HashMap::new()),
        }
    }

    fn deadline(&self) -> Deadline {
        crate::clock::Deadline::after(Duration::from_millis(50))
    }
}

#[cfg(test)]
mod tests {
    // Test code may use raw clocks and unclassed locks freely.
    fn spin_until() {
        let started = Instant::now();
        let gate = Mutex::new(());
        drop(gate);
        drop(started);
    }
}
