// Fixture: raw clock reads outside the clock abstraction.  Must trip
// `raw-clock`.

fn measure(&self) {
    let started = Instant::now();
    let wall = std::time::SystemTime::now();
    self.record(started.elapsed(), wall);
}
