// Fixture: one instance of each banned pattern, each suppressed by a
// well-formed `lint:allow(rule, reason)`.  Must scan clean.

impl Broker {
    // lint:allow(touch-repair, read-modify-write audited; caller touches)
    fn reindex_sessions(&self) {
        self.sessions.write().shrink_to_fit();
    }

    fn answer_client(&self, target: PeerId, message: Message) {
        // lint:allow(accounted-send, client-facing response, not broker traffic)
        self.network.send(target, message);
    }

    fn decode_trusted(&self, bytes: &[u8]) -> Vec<u8> {
        let count = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        // lint:allow(unchecked-capacity, count is validated against a signed manifest above)
        let out = Vec::with_capacity(count);
        out
    }

    fn ffi_shim(&self) {
        // lint:allow(std-sync-lock, required by an external callback ABI)
        let gate = std::sync::Mutex::new(());
        drop(gate);
    }

    fn wall_clock_stamp(&self) -> Instant {
        Instant::now() // lint:allow(raw-clock, operator-facing log timestamp only)
    }

    fn scratch_lock(&self) {
        // lint:allow(unclassed-lock, never held across another lock; local scratch)
        let scratch = Mutex::new(0u32);
        drop(scratch);
    }
}
