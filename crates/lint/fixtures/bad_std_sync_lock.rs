// Fixture: std::sync locks in library code — invisible to the lock-order
// detector and poisonable.  Must trip `std-sync-lock`.

use std::sync::{Arc, Mutex};

struct Cache {
    entries: Mutex<Vec<u64>>,
    index: std::sync::RwLock<u64>,
}
