// Fixture: mutates repair-tracked broker state without invalidating the
// cached hash trees.  Scanned as if it were broker.rs; must trip
// `touch-repair`.

impl Broker {
    fn adopt_session(&self, peer: PeerId, session: PeerSession) {
        self.sessions.write().insert(peer, session);
        self.peer_homes.write().insert(peer, self.id);
    }

    fn forget_group(&self, peer: PeerId) {
        self.groups.leave_all(peer);
    }
}
