// Fixture: raw network sends from broker code, bypassing the
// send_sequenced / send_repair accounting choke points.  Must trip
// `accounted-send`.

impl Broker {
    fn gossip_directly(&self, target: PeerId, message: Message) {
        self.network.send(target, message);
    }

    fn relay(&self, target: PeerId, message: Message) {
        self.network().forward(target, message);
    }
}
