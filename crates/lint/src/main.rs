//! `jxta-lint`: scan the workspace's library crates for project-invariant
//! violations and exit nonzero if any are found.  Run from anywhere inside
//! the workspace; CI runs it as `cargo run -p jxta-lint`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("jxta-lint: could not locate the workspace root");
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    match std::fs::read_dir(&crates_dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let path = entry.path();
                // The lint crate itself is exempt: its sources and fixtures
                // carry the banned patterns as data.
                if path.file_name().is_some_and(|n| n == "lint") {
                    continue;
                }
                collect_rs(&path.join("src"), &mut files);
            }
        }
        Err(err) => {
            eprintln!("jxta-lint: cannot read {}: {}", crates_dir.display(), err);
            return ExitCode::FAILURE;
        }
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("jxta-lint: cannot read {}: {}", file.display(), err);
                return ExitCode::FAILURE;
            }
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(jxta_lint::scan_source(&rel, &source));
        scanned += 1;
    }

    for v in &violations {
        println!("{}", v);
    }
    if violations.is_empty() {
        println!("jxta-lint: {} files clean", scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "jxta-lint: {} violation(s) in {} files scanned",
            violations.len(),
            scanned
        );
        println!("suppress a deliberate exception with: // lint:allow(<rule>, <reason>)");
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the `[workspace]` Cargo.toml,
/// falling back to the location baked in at compile time.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    baked.canonicalize().ok()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
