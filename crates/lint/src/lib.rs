//! Project-invariant lint: line-level checks for rules the compiler cannot
//! express, run as a CI gate (`cargo run -p jxta-lint`).
//!
//! The rules encode invariants this codebase has already been burned by or
//! deliberately designed around:
//!
//! - `touch-repair` — every broker mutation primitive (session, membership,
//!   advertisement, ring, home-shard or group state) must invalidate the
//!   cached repair hash trees via `touch_repair_state`, or anti-entropy
//!   serves stale digests (the PR 7 stale-tree bug class).
//! - `accounted-send` — inter-broker traffic must route through the
//!   sequenced/repair choke points so the delivery ledger and repair
//!   accounting see every message.  Raw `network.send` from broker code is
//!   only legal with an annotation explaining why it is client-facing.
//! - `unchecked-capacity` — `Vec::with_capacity(n)` where `n` was decoded
//!   from the wire (byte-array decode or string parse) must be clamped
//!   (`.min(...)` / `.clamp(...)`) by something derived from the physical
//!   payload size, or a hostile peer allocates gigabytes with a 4-byte
//!   count field.
//! - `std-sync-lock` — library crates must use the instrumented
//!   `parking_lot` locks (which feed the lock-order detector), never
//!   `std::sync::{Mutex, RwLock}`.
//! - `raw-clock` — wall-clock reads go through `overlay::clock`, keeping
//!   simulations deterministic and clock reads greppable.  The bench crate
//!   (whose job is timing) is exempt by path.
//! - `unclassed-lock` — every lock in library code is constructed with
//!   `with_class(...)` so the lock-order detector can name it; a bare
//!   `Mutex::new` is invisible to cycle detection.
//!
//! A violation is suppressed only by an explicit annotation on the same
//! line, the line above, or (for `touch-repair`) the `fn` signature line:
//!
//! ```text
//! // lint:allow(rule-name, reason why this site is exempt)
//! ```
//!
//! An allow with an empty reason does not suppress anything: the reason is
//! the audit trail.
//!
//! The analyzer is deliberately line-level, not AST-level: it strips
//! comments and string literals, tracks brace depth to scope functions and
//! skip `#[cfg(test)]` blocks, and propagates wire-integer taint within a
//! function.  That is crude but has the right property for a gate — it is
//! trivially auditable and fails loudly (a false positive costs one
//! annotation with a written reason; a parser bug cannot silently pass
//! bad code the way a mis-built AST visitor could).

use std::collections::HashSet;
use std::fmt;

/// The rule identifiers accepted by `lint:allow(...)`.
pub const RULES: &[&str] = &[
    "touch-repair",
    "accounted-send",
    "unchecked-capacity",
    "std-sync-lock",
    "raw-clock",
    "unclassed-lock",
];

/// One lint violation, addressable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Broker-state mutation patterns that must be paired with
/// `touch_repair_state` in the same function.  `.read()` accesses do not
/// match; only write-path acquisitions and the group primitives do.
const MUTATION_PATTERNS: &[&str] = &[
    ".advertisements.write()",
    ".membership_versions.write()",
    ".sessions.write()",
    ".displaced.write()",
    ".peer_homes.write()",
    ".ring.write()",
    ".groups.join(",
    ".groups.leave(",
    ".groups.leave_all(",
];

/// Raw send patterns that bypass the sequenced/repair choke points.
const SEND_PATTERNS: &[&str] = &[
    ".network.send(",
    ".network().send(",
    ".network.forward(",
    ".network().forward(",
];

/// Taint sources: an integer decoded from attacker-controlled bytes.
const TAINT_SOURCES: &[&str] = &["from_be_bytes", "from_le_bytes", ".parse::<", ".parse()"];

#[derive(Debug)]
struct Line {
    /// Source with comments and string-literal bodies blanked out.
    stripped: String,
    /// Rules named by a well-formed `lint:allow(rule, reason)` on this line.
    allows: Vec<String>,
}

/// One function currently open on the scan stack.
struct FnFrame {
    name: String,
    /// Brace depth just before the function's signature line.
    entry_depth: i32,
    /// Whether the body `{` has been consumed yet (signatures can span lines).
    opened: bool,
    /// Line index (0-based) of the `fn` signature, for signature-line allows.
    sig_line: usize,
    /// Repair-tree mutation sites seen in this body: (line#, pattern, allowed).
    mutations: Vec<(usize, &'static str, bool)>,
    /// Whether the body mentions `touch_repair_state`.
    has_touch: bool,
    /// Identifiers carrying wire-decoded integer taint.
    tainted: HashSet<String>,
}

/// Scan one file's source.  `rel_path` is the workspace-relative path and
/// drives per-rule scoping (which rules care about which files).
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let touch_scope = rel_path.ends_with("broker.rs");
    let send_scope = rel_path.ends_with("broker.rs")
        || rel_path.ends_with("federation.rs")
        || rel_path.ends_with("broker_ext.rs");
    let clock_scope = !rel_path.contains("crates/bench/");

    let lines = preprocess(source);
    let allowed = |rule: &str, idx: usize| -> bool {
        lines[idx].allows.iter().any(|r| r == rule)
            || (idx > 0 && lines[idx - 1].allows.iter().any(|r| r == rule))
    };

    let mut out = Vec::new();
    let mut depth: i32 = 0;
    // When inside a `#[cfg(test)]` block: the depth to return to.
    let mut skip_over: Option<i32> = None;
    let mut pending_cfg_test = false;
    let mut fn_stack: Vec<FnFrame> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let text = line.stripped.as_str();
        let lineno = idx + 1;
        let depth_before = depth;
        depth += brace_delta(text);

        if let Some(base) = skip_over {
            if depth <= base {
                skip_over = None;
            }
            continue;
        }

        if text.trim_start().starts_with("#[") && text.contains("cfg(test)") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            // The attribute applies to the next item; skip its whole block.
            if !text.trim().is_empty() {
                pending_cfg_test = false;
                if depth > depth_before {
                    skip_over = Some(depth_before);
                } else if !text.contains(';') {
                    // Item header without its `{` yet (e.g. a multi-line fn
                    // signature): skip from here until depth returns.
                    skip_over = Some(depth_before);
                }
            }
            continue;
        }

        // --- function tracking -----------------------------------------
        if let Some(name) = fn_name(text) {
            fn_stack.push(FnFrame {
                name,
                entry_depth: depth_before,
                opened: depth > depth_before,
                sig_line: idx,
                mutations: Vec::new(),
                has_touch: false,
                tainted: HashSet::new(),
            });
        } else if let Some(frame) = fn_stack.last_mut() {
            if !frame.opened {
                if depth > frame.entry_depth {
                    frame.opened = true;
                } else if text.contains(';') {
                    // Bodyless declaration (trait method): discard.
                    fn_stack.pop();
                }
            }
        }

        // --- per-line rules --------------------------------------------
        if send_scope {
            for pat in SEND_PATTERNS {
                if text.contains(pat) && !allowed("accounted-send", idx) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "accounted-send",
                        message: format!(
                            "raw `{}` bypasses send_sequenced/send_repair accounting",
                            pat.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
            // Method chains split across lines (`self.network\n.send(...)`)
            // must not evade the rule.
            let trimmed = text.trim_start();
            if (trimmed.starts_with(".send(") || trimmed.starts_with(".forward("))
                && idx > 0
                && {
                    let prev = lines[idx - 1].stripped.trim_end();
                    prev.ends_with(".network") || prev.ends_with(".network()")
                }
                && !allowed("accounted-send", idx)
            {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "accounted-send",
                    message: "raw network send (split method chain) bypasses \
                              send_sequenced/send_repair accounting"
                        .to_string(),
                });
            }
        }

        let std_lock = text.contains("std::sync::Mutex")
            || text.contains("std::sync::RwLock")
            || (text.contains("use std::sync")
                && (contains_word(text, "Mutex") || contains_word(text, "RwLock")));
        if std_lock && !allowed("std-sync-lock", idx) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: lineno,
                rule: "std-sync-lock",
                message: "std::sync lock is invisible to the lock-order detector; \
                          use the instrumented parking_lot types"
                    .to_string(),
            });
        }

        if clock_scope {
            for pat in ["Instant::now(", "SystemTime::now(", "std::time::SystemTime"] {
                if text.contains(pat) && !allowed("raw-clock", idx) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "raw-clock",
                        message: format!(
                            "raw `{}` breaks clock determinism; route through overlay::clock",
                            pat.trim_end_matches('(')
                        ),
                    });
                }
            }
        }

        for pat in ["Mutex::new(", "RwLock::new("] {
            for pos in match_positions(text, pat) {
                let prefix = &text[..pos];
                // `sync::Mutex::new` (an explicit std alias, as the vendored
                // lock internals use) is a different rule's business, and a
                // qualified `Std...` name is not a parking_lot constructor.
                if prefix.ends_with("sync::") || prefix.ends_with("Std") {
                    continue;
                }
                if !allowed("unclassed-lock", idx) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "unclassed-lock",
                        message: format!(
                            "`{}...)` has no lock class; use `with_class(\"component.field\", ..)` \
                             so the lock-order detector can name it",
                            pat
                        ),
                    });
                }
            }
        }

        // --- function-scoped rules -------------------------------------
        if let Some(frame) = fn_stack.last_mut() {
            // Taint: a let-binding fed by a wire decode, or by an already
            // tainted identifier.  A clamp on the binding line sanitizes.
            let sanitized = text.contains(".min(") || text.contains(".clamp(");
            if let Some(bound) = let_binding(text) {
                let from_source = TAINT_SOURCES.iter().any(|s| text.contains(s));
                let from_taint = frame.tainted.iter().any(|t| contains_word(text, t));
                if (from_source || from_taint) && !sanitized {
                    frame.tainted.insert(bound);
                } else {
                    // Rebinding an old name to something clean clears it.
                    frame.tainted.remove(&bound);
                }
            }
            if text.contains("with_capacity(") && !sanitized {
                let tainted_use = frame.tainted.iter().any(|t| {
                    text.split("with_capacity(")
                        .skip(1)
                        .any(|rest| contains_word(rest, t))
                });
                if tainted_use && !allowed("unchecked-capacity", idx) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "unchecked-capacity",
                        message: "allocation sized by a wire-decoded integer without a \
                                  `.min(...)` guard against hostile counts"
                            .to_string(),
                    });
                }
            }

            if touch_scope {
                if text.contains("touch_repair_state") {
                    for f in fn_stack.iter_mut() {
                        f.has_touch = true;
                    }
                } else {
                    let frame = fn_stack.last_mut().unwrap();
                    for pat in MUTATION_PATTERNS {
                        if text.contains(pat) {
                            let ok = allowed("touch-repair", idx)
                                || allowed("touch-repair", frame.sig_line);
                            frame.mutations.push((lineno, pat, ok));
                        }
                    }
                }
            }
        }

        // --- close finished functions ----------------------------------
        while let Some(frame) = fn_stack.last() {
            if frame.opened && depth <= frame.entry_depth {
                let frame = fn_stack.pop().unwrap();
                if !frame.has_touch {
                    for (line, pat, ok) in frame.mutations {
                        if !ok {
                            out.push(Violation {
                                file: rel_path.to_string(),
                                line,
                                rule: "touch-repair",
                                message: format!(
                                    "`{}` mutates repair-tracked state but fn `{}` never \
                                     calls touch_repair_state; anti-entropy will serve \
                                     stale digests",
                                    pat, frame.name
                                ),
                            });
                        }
                    }
                }
            } else {
                break;
            }
        }
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

// ---------------------------------------------------------------------
// preprocessing
// ---------------------------------------------------------------------

/// Blank out comments and string-literal bodies (so patterns never match
/// inside prose or data), and collect `lint:allow` annotations — which are
/// read from the raw text, since they live inside comments.
fn preprocess(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for raw in source.lines() {
        let allows = parse_allows(raw);
        let mut stripped = String::with_capacity(raw.len());
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        let mut in_string = false;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            if in_block_comment {
                if c == '*' && next == Some('/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                if c == '\\' {
                    i += 2; // skip the escaped character
                } else {
                    if c == '"' {
                        in_string = false;
                        stripped.push('"');
                    }
                    i += 1;
                }
                continue;
            }
            if c == '/' && next == Some('/') {
                break; // rest of line is a comment
            }
            if c == '/' && next == Some('*') {
                in_block_comment = true;
                i += 2;
                continue;
            }
            if c == '"' {
                in_string = true;
                stripped.push('"');
                i += 1;
                continue;
            }
            // Char literals like '"' or '{' would confuse the string and
            // brace tracking: skip a short quoted char outright.
            if c == '\'' {
                if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                    continue;
                }
                if next == Some('\\') && chars.get(i + 3) == Some(&'\'') {
                    i += 4;
                    continue;
                }
            }
            stripped.push(c);
            i += 1;
        }
        // An unterminated string keeps state only within the line: Rust
        // multi-line strings exist, but none of the patterns span lines, so
        // resetting per line is the safe failure mode for brace tracking.
        out.push(Line { stripped, allows });
    }
    out
}

/// Parse every well-formed `lint:allow(rule, reason)` on a raw line.  The
/// reason is mandatory: an allow without one suppresses nothing.
fn parse_allows(raw: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        if let Some(close) = rest.find(')') {
            let body = &rest[..close];
            if let Some((rule, reason)) = body.split_once(',') {
                let rule = rule.trim();
                if !reason.trim().is_empty() && RULES.contains(&rule) {
                    allows.push(rule.to_string());
                }
            }
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
    allows
}

fn brace_delta(text: &str) -> i32 {
    let mut d = 0;
    for c in text.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Extract the function name if this line begins a `fn` item.
fn fn_name(text: &str) -> Option<String> {
    let pos = match_positions(text, "fn ").into_iter().find(|&p| {
        // Word boundary on the left: `fn` must not be the tail of another
        // identifier (`stale_fn `), and closures/paths don't use `fn `.
        p == 0 || !text.as_bytes()[p - 1].is_ascii_alphanumeric() && text.as_bytes()[p - 1] != b'_'
    })?;
    let rest = text[pos + 3..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !rest[name.len()..].trim_start().starts_with(['(', '<']) {
        return None;
    }
    Some(name)
}

/// Extract the identifier bound by a `let` on this line, if any.
fn let_binding(text: &str) -> Option<String> {
    let trimmed = text.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn contains_word(hay: &str, word: &str) -> bool {
    for pos in match_positions(hay, word) {
        let before_ok = pos == 0 || {
            let b = hay.as_bytes()[pos - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        let after = pos + word.len();
        let after_ok = after >= hay.len() || {
            let b = hay.as_bytes()[after];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

fn match_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        out.push(start + pos);
        start += pos + 1;
    }
    out
}

// ---------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    const BROKER_PATH: &str = "crates/overlay/src/broker.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> =
            scan_source(path, src).into_iter().map(|v| v.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn fixture_touch_repair_fires() {
        let src = include_str!("../fixtures/bad_touch_repair.rs");
        let v = scan_source(BROKER_PATH, src);
        assert!(
            v.iter().any(|v| v.rule == "touch-repair"),
            "expected touch-repair violation, got {:?}",
            v
        );
    }

    #[test]
    fn fixture_accounted_send_fires() {
        let src = include_str!("../fixtures/bad_accounted_send.rs");
        assert_eq!(rules_fired(BROKER_PATH, src), vec!["accounted-send"]);
    }

    #[test]
    fn fixture_unchecked_capacity_fires() {
        let src = include_str!("../fixtures/bad_unchecked_capacity.rs");
        let v = scan_source("crates/core/src/broker_ext.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "unchecked-capacity"),
            "expected unchecked-capacity violation, got {:?}",
            v
        );
    }

    #[test]
    fn fixture_std_sync_lock_fires() {
        let src = include_str!("../fixtures/bad_std_sync_lock.rs");
        let v = scan_source("crates/crypto/src/sigcache.rs", src);
        assert!(v.iter().any(|v| v.rule == "std-sync-lock"), "{:?}", v);
    }

    #[test]
    fn fixture_raw_clock_fires() {
        let src = include_str!("../fixtures/bad_raw_clock.rs");
        let v = scan_source("crates/overlay/src/federation.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-clock"), "{:?}", v);
    }

    #[test]
    fn fixture_unclassed_lock_fires() {
        let src = include_str!("../fixtures/bad_unclassed_lock.rs");
        let v = scan_source("crates/overlay/src/net.rs", src);
        assert!(v.iter().any(|v| v.rule == "unclassed-lock"), "{:?}", v);
    }

    #[test]
    fn fixture_good_annotated_is_clean() {
        let src = include_str!("../fixtures/good_annotated.rs");
        let v = scan_source(BROKER_PATH, src);
        assert!(v.is_empty(), "annotated fixture must be clean: {:?}", v);
    }

    #[test]
    fn fixture_good_clean_is_clean() {
        let src = include_str!("../fixtures/good_clean.rs");
        let v = scan_source(BROKER_PATH, src);
        assert!(v.is_empty(), "clean fixture must be clean: {:?}", v);
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "fn f(&self) {\n    // lint:allow(raw-clock)\n    let t = Instant::now();\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-clock"), "{:?}", v);
    }

    #[test]
    fn allow_with_unknown_rule_does_not_suppress() {
        let src = "fn f(&self) {\n    let t = Instant::now(); // lint:allow(clock, hush)\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-clock"), "{:?}", v);
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let t = Instant::now();\n        self.network.send(x);\n    }\n}\n";
        let v = scan_source(BROKER_PATH, src);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn patterns_inside_strings_do_not_match() {
        let src = "fn f(&self) {\n    let s = \"Instant::now( is banned\";\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn taint_propagates_through_bindings() {
        let src = "fn f(&self, b: &[u8]) {\n    let n = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize;\n    let cap = n * 2;\n    let v: Vec<u8> = Vec::with_capacity(cap);\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "unchecked-capacity"), "{:?}", v);
    }

    #[test]
    fn clamped_capacity_is_clean() {
        let src = "fn f(&self, b: &[u8]) {\n    let n = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize;\n    let v: Vec<u8> = Vec::with_capacity(n.min(b.len()));\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn clamped_binding_sanitizes_taint() {
        let src = "fn f(&self, b: &[u8]) {\n    let n: usize = text.parse().unwrap_or(0);\n    let cap = n.min(b.len() / 4 + 1);\n    let v: Vec<u8> = Vec::with_capacity(cap);\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn split_method_chain_send_is_caught() {
        let src = "fn gossip(&self) {\n    self.network\n        .send(self.id, target, bytes);\n}\n";
        let v = scan_source(BROKER_PATH, src);
        assert!(v.iter().any(|v| v.rule == "accounted-send"), "{:?}", v);
    }

    #[test]
    fn send_rule_is_scoped_to_broker_layers() {
        let src = "fn request(&self) {\n    self.network.send(msg);\n}\n";
        let v = scan_source("crates/overlay/src/client.rs", src);
        assert!(v.is_empty(), "client-side sends are not broker traffic: {:?}", v);
        let v = scan_source("crates/overlay/src/federation.rs", src);
        assert!(!v.is_empty(), "federation sends must be accounted");
    }

    #[test]
    fn bench_crate_is_clock_exempt() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let v = scan_source("crates/bench/src/main.rs", src);
        assert!(v.is_empty(), "{:?}", v);
    }

    #[test]
    fn sync_aliased_std_constructor_is_not_unclassed() {
        // The vendored lock internals wrap `sync::Mutex::new` (an explicit
        // std alias); that is not a parking_lot construction site.
        let src = "fn f() {\n    let inner = sync::Mutex::new(());\n}\n";
        let v = scan_source("crates/overlay/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "unclassed-lock"), "{:?}", v);
    }
}
