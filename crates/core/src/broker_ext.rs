//! The broker-side half of the secure primitives.
//!
//! [`SecureBrokerExtension`] plugs into a plain [`jxta_overlay::Broker`]
//! through the [`BrokerExtension`] hook and implements the broker's part of
//! the `secureConnection` (paper §4.2.1) and `secureLogin` (§4.2.2)
//! protocols:
//!
//! * **secureConnection** — on receiving a client challenge the broker
//!   generates a sufficiently long random session identifier `sid`, stores
//!   it, and answers with `sid`, the challenge signed with `SK_Br` and its
//!   admin-issued credential `Cred^Adm_Br`.  In a broker federation the
//!   response additionally carries the admin-issued credentials of the
//!   *peer brokers*, so a client joined at broker A can later validate
//!   signed advertisements whose credentials were issued by broker B — the
//!   client still verifies every one of them against the administrator
//!   trust anchor before accepting it.
//! * **secureLogin** — the broker decrypts the wrapped login request with its
//!   private key, consumes the `sid` (each identifier is single-use, which is
//!   what defeats replayed login attempts), checks the username/password
//!   against the central database, checks that the enclosed public key really
//!   belongs to the claiming peer (CBID binding), and finally issues the
//!   client credential `Cred^Br_Cl`.

use crate::credential::{Credential, CredentialRole, RevocationList};
use crate::identity::PeerIdentity;
use jxta_crypto::cbid::Cbid;
use jxta_crypto::envelope::{open_envelope, Envelope};
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::error::CryptoError;
use jxta_crypto::rsa::RsaPublicKey;
use jxta_crypto::sigcache::{DigestCache, SigCacheStats, VerifiedSigCache};
use jxta_overlay::broker::{Broker, BrokerExtension};
use jxta_overlay::{GroupId, Message, MessageKind, OverlayError, PeerId};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Length of the random session identifier in bytes ("sufficiently long", per
/// the paper; 32 bytes makes guessing or collision attacks irrelevant).
pub const SESSION_ID_LEN: usize = 32;

/// Computes the byte string signed by the client inside a secure login
/// request: `S_SKCl(username, password, PK_Cl)`.
pub fn login_signed_content(username: &str, password: &str, public_key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + username.len() + password.len() + public_key.len());
    out.extend_from_slice(b"JXTA-OVERLAY-SECURE-LOGIN-V1");
    out.extend_from_slice(&(username.len() as u32).to_be_bytes());
    out.extend_from_slice(username.as_bytes());
    out.extend_from_slice(&(password.len() as u32).to_be_bytes());
    out.extend_from_slice(password.as_bytes());
    out.extend_from_slice(&(public_key.len() as u32).to_be_bytes());
    out.extend_from_slice(public_key);
    out
}

/// Serialises a list of credentials into one message element (2-byte count,
/// then per credential a 4-byte length and its bytes, big-endian).
pub fn encode_credential_list(credentials: &[Credential]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(credentials.len() as u16).to_be_bytes());
    for credential in credentials {
        let bytes = credential.to_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Parses a credential list encoded by [`encode_credential_list`].
pub fn decode_credential_list(
    bytes: &[u8],
) -> Result<Vec<Credential>, jxta_overlay::OverlayError> {
    let err = |what: &str| jxta_overlay::OverlayError::MalformedMessage(what.to_string());
    if bytes.len() < 2 {
        return Err(err("truncated credential list"));
    }
    let count = u16::from_be_bytes(bytes[..2].try_into().unwrap()) as usize;
    let mut offset = 2usize;
    // A forged count must not reserve memory the blob cannot back (each
    // credential costs at least a 4-byte length prefix).
    let mut credentials = Vec::with_capacity(count.min(bytes.len() / 4 + 1));
    for _ in 0..count {
        if bytes.len() < offset + 4 {
            return Err(err("truncated credential length"));
        }
        let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        if bytes.len() < offset + len {
            return Err(err("truncated credential"));
        }
        let credential = Credential::from_bytes(&bytes[offset..offset + len])
            .map_err(|e| err(&format!("malformed credential: {e}")))?;
        credentials.push(credential);
        offset += len;
    }
    if offset != bytes.len() {
        return Err(err("trailing bytes after credential list"));
    }
    Ok(credentials)
}

/// Computes the byte string a broker signs over a pushed federation
/// credential-set update (`blob` is the [`encode_credential_list`] payload).
/// The outer signature authenticates the *push* to the client — each listed
/// credential is additionally verified by the client against the
/// administrator trust anchor before it is accepted.
pub fn credential_update_signed_content(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + blob.len());
    out.extend_from_slice(b"JXTA-OVERLAY-CREDENTIAL-UPDATE-V1");
    out.extend_from_slice(&(blob.len() as u32).to_be_bytes());
    out.extend_from_slice(blob);
    out
}

/// Computes the byte string signed by the sender of a `secureMsgPeer`
/// message: `S_SKCl1(m)` with the group identifier bound in.
pub fn message_signed_content(group: &str, text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + group.len() + text.len());
    out.extend_from_slice(b"JXTA-OVERLAY-SECURE-MSG-V1");
    out.extend_from_slice(&(group.len() as u32).to_be_bytes());
    out.extend_from_slice(group.as_bytes());
    out.extend_from_slice(&(text.len() as u32).to_be_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

/// Counters describing the secure broker's activity (used by tests and the
/// experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecureBrokerStats {
    /// Challenges answered (secureConnection attempts served).
    pub challenges_answered: u64,
    /// Credentials issued after successful secure logins.
    pub credentials_issued: u64,
    /// Login attempts rejected because of a missing or reused session id
    /// (replay attempts).
    pub replays_rejected: u64,
    /// Login attempts rejected for bad credentials or key binding.
    pub logins_rejected: u64,
    /// Requests refused because a credential involved was expired at the
    /// broker's deployment clock.
    pub expired_rejected: u64,
    /// Requests refused because the subject appears on an installed
    /// revocation list.
    pub revoked_rejected: u64,
    /// Publishes refused because the signed advertisement's signature did
    /// not verify or its credential chains to no known issuer.
    pub forged_rejected: u64,
    /// Signed advertisements whose signatures were pre-verified at ingress
    /// (on a verify worker when the broker is pipelined).
    pub ingress_preverified: u64,
    /// Ingress signatures that failed pre-verification (forged or corrupted
    /// bytes observed in publishes, gossip or anti-entropy snapshots).
    pub ingress_sig_failures: u64,
}

/// Stateless verdict over one advertisement XML document: everything about
/// it that is a **pure function of the bytes** — parseability, whether it is
/// signed, the embedded credential, and whether the XMLdsig signature
/// verifies under that credential's key.  Pure means cacheable by digest;
/// the checks that depend on mutable broker state (expiry clock, revocation
/// lists, the set of known issuers) are deliberately *not* part of the
/// verdict and re-run on every use.
#[derive(Debug, Clone)]
enum VetVerdict {
    /// Unparseable or unsigned content — not policy material.
    Unsigned,
    /// Signed, but the embedded credential does not decode.
    MalformedCredential,
    /// Signed, but the signature does not verify under the embedded
    /// credential's key (or the signature structure is malformed).
    SignatureInvalid,
    /// Signed and the signature verifies under this credential.
    Verified(Box<Credential>),
}

/// The broker-side secure extension.
pub struct SecureBrokerExtension {
    identity: PeerIdentity,
    credential: Credential,
    credential_lifetime: u64,
    sessions: Mutex<HashSet<Vec<u8>>>,
    rng: Mutex<HmacDrbg>,
    stats: Mutex<SecureBrokerStats>,
    /// Admin-issued credentials of the other brokers in the federation,
    /// beaconed to clients during `secureConnection`.
    peer_credentials: Mutex<Vec<Credential>>,
    /// The broker's deployment clock: seconds since the deployment epoch
    /// (virtual — the simulation has no wall clock), used to evaluate
    /// credential expiry.
    now: AtomicU64,
    /// Administrator public key, required to verify pushed revocation lists.
    admin_key: Mutex<Option<RsaPublicKey>>,
    /// Revoked peer identifiers (merged from installed revocation lists).
    revoked_ids: Mutex<HashSet<PeerId>>,
    /// Revoked usernames (merged from installed revocation lists).
    revoked_names: Mutex<HashSet<String>>,
    /// The verified revocation lists themselves, kept so they can be
    /// re-gossiped over the backbone and carried in anti-entropy snapshots —
    /// each list is admin-signed, so transit needs no extra trust and a
    /// late-joining broker can verify them from scratch.
    revocation_lists: Mutex<Vec<RevocationList>>,
    /// Cache of successful RSA verifications: advertisement signatures,
    /// credential chains and revocation lists verified once (typically on an
    /// ingress verify worker) are recognised by digest everywhere else —
    /// re-publishes, gossip and anti-entropy snapshots skip RSA entirely.
    /// `None` disables caching (the bench ablation's baseline).
    verify_cache: Mutex<Option<Arc<VerifiedSigCache>>>,
    /// Memo table of stateless advertisement verdicts keyed by the XML's
    /// SHA-256 digest: a re-published or re-gossiped advertisement skips the
    /// XML parse *and* the RSA, leaving only the stateful expiry /
    /// revocation / issuer checks on the hot path.  Enabled and disabled
    /// together with [`SecureBrokerExtension::verify_cache`].
    vet_cache: Mutex<DigestCache<VetVerdict>>,
    /// Chain verdicts (by digest of the credential's encoding), each stamped
    /// with the [`SecureBrokerExtension::issuer_epoch`] it was computed in.
    /// A **positive** verdict is valid at any epoch: the issuer set grows
    /// monotonically (broker admissions add peer credentials, nothing
    /// removes a trust anchor), so a success can never become stale.  A
    /// **negative** verdict can go stale the moment a new issuer is learned,
    /// so it is honoured only while its stamp equals the current epoch and
    /// recomputed after any bump — which makes the expensive
    /// every-issuer-fails case (e.g. a flood of foreign credentials)
    /// cacheable between admissions instead of re-running RSA every time.
    chain_cache: Mutex<DigestCache<(u64, bool)>>,
    /// Issuer-set epoch: bumped whenever this broker learns a new trust
    /// anchor (a beaconed peer-broker credential on admission, or the
    /// provisioned admin key), invalidating every cached *negative* chain
    /// verdict at once.
    issuer_epoch: AtomicU64,
    /// Signature verifications avoided by the digest-level memo tables
    /// (`vet_cache` + `chain_cache`); aggregated with the RSA-level
    /// [`VerifiedSigCache`] counters in
    /// [`SecureBrokerExtension::verify_cache_stats`].
    memo_hits: AtomicU64,
    /// Signature verifications that had to be computed at the digest level.
    memo_misses: AtomicU64,
}

/// Serialises a set of revocation lists into one opaque blob (2-byte count,
/// then per list a 4-byte length and its [`RevocationList::to_bytes`]
/// encoding) — the extension-state payload brokers exchange.
pub fn encode_revocation_lists(lists: &[RevocationList]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(lists.len() as u16).to_be_bytes());
    for list in lists {
        let bytes = list.to_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Parses a blob produced by [`encode_revocation_lists`].
pub fn decode_revocation_lists(bytes: &[u8]) -> Result<Vec<RevocationList>, OverlayError> {
    let err = |what: &str| OverlayError::MalformedMessage(what.to_string());
    if bytes.len() < 2 {
        return Err(err("truncated revocation-list blob"));
    }
    let count = u16::from_be_bytes(bytes[..2].try_into().unwrap()) as usize;
    let mut offset = 2usize;
    // Same guard as decode_credential_list: never trust a wire count to
    // size an allocation past what the payload can hold.
    let mut lists = Vec::with_capacity(count.min(bytes.len() / 4 + 1));
    for _ in 0..count {
        if bytes.len() < offset + 4 {
            return Err(err("truncated revocation-list length"));
        }
        let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        if bytes.len() < offset + len {
            return Err(err("truncated revocation list"));
        }
        let list = RevocationList::from_bytes(&bytes[offset..offset + len])
            .map_err(|e| err(&format!("malformed revocation list: {e}")))?;
        lists.push(list);
        offset += len;
    }
    if offset != bytes.len() {
        return Err(err("trailing bytes after revocation lists"));
    }
    Ok(lists)
}

impl SecureBrokerExtension {
    /// Creates the extension from the broker's identity and its admin-issued
    /// credential.
    ///
    /// `rng_seed` seeds the extension's internal DRBG (session identifiers);
    /// `credential_lifetime` is the expiry offset of issued client
    /// credentials, in seconds since the deployment epoch.
    pub fn new(
        identity: PeerIdentity,
        credential: Credential,
        credential_lifetime: u64,
        rng_seed: u64,
    ) -> Self {
        debug_assert_eq!(credential.role, CredentialRole::Broker);
        SecureBrokerExtension {
            identity,
            credential,
            credential_lifetime,
            sessions: Mutex::with_class("secure.sessions", HashSet::new()),
            rng: Mutex::with_class("secure.rng", HmacDrbg::from_seed_u64(rng_seed)),
            stats: Mutex::with_class("secure.stats", SecureBrokerStats::default()),
            peer_credentials: Mutex::with_class("secure.peer_credentials", Vec::new()),
            now: AtomicU64::new(0),
            admin_key: Mutex::with_class("secure.admin_key", None),
            revoked_ids: Mutex::with_class("secure.revoked_ids", HashSet::new()),
            revoked_names: Mutex::with_class("secure.revoked_names", HashSet::new()),
            revocation_lists: Mutex::with_class("secure.revocation_lists", Vec::new()),
            verify_cache: Mutex::with_class("secure.verify_cache", Some(Arc::new(VerifiedSigCache::default()))),
            vet_cache: Mutex::with_class("secure.vet_cache", DigestCache::new(
                jxta_crypto::sigcache::DEFAULT_SIG_CACHE_CAPACITY,
            )),
            chain_cache: Mutex::with_class("secure.chain_cache", DigestCache::new(
                jxta_crypto::sigcache::DEFAULT_SIG_CACHE_CAPACITY,
            )),
            issuer_epoch: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Verified-signature cache
    // ------------------------------------------------------------------

    /// Replaces the verified-signature cache: `capacity` entries, or `0` to
    /// disable caching entirely (every verification runs RSA — the baseline
    /// of the `ingest_throughput` ablation).  Resets the hit/miss counters.
    pub fn set_verify_cache_capacity(&self, capacity: usize) {
        *self.verify_cache.lock() = if capacity == 0 {
            None
        } else {
            Some(Arc::new(VerifiedSigCache::new(capacity)))
        };
        *self.vet_cache.lock() = DigestCache::new(capacity.max(1));
        *self.chain_cache.lock() = DigestCache::new(capacity.max(1));
    }

    /// Hit/miss counters of the verification-caching layers combined: the
    /// digest-level memo tables (advertisement verdicts, credential chains)
    /// plus the RSA-level [`VerifiedSigCache`].  A *hit* is a signature
    /// check answered without recomputation; zeros when caching is
    /// disabled.
    pub fn verify_cache_stats(&self) -> SigCacheStats {
        let rsa = self
            .verify_cache
            .lock()
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default();
        SigCacheStats {
            hits: rsa.hits + self.memo_hits.load(Ordering::Relaxed),
            misses: rsa.misses + self.memo_misses.load(Ordering::Relaxed),
            entries: rsa.entries,
        }
    }

    /// Verifies through the cache when one is installed, directly otherwise.
    fn cached_verify(
        &self,
        key: &RsaPublicKey,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let cache = self.verify_cache.lock().clone();
        match cache {
            Some(cache) => cache.verify(key, message, signature),
            None => key.verify(message, signature),
        }
    }

    /// Verifies `credential` against this broker's known issuers — its own
    /// identity, the beaconed peer-broker credentials and the administrator
    /// anchor — through the caches.  A credential chaining to none of them
    /// is not one this federation issued.  Verdicts are memoised by
    /// credential digest, stamped with the issuer-set epoch (see the
    /// `chain_cache` field for the validity rules); without the positive
    /// memo, a credential issued by a *peer* broker would pay a full —
    /// failing — RSA verification against this broker's own key on every
    /// single gossip message it rides in, and without the epoch-stamped
    /// negative memo a credential this federation never issued would pay
    /// the full every-issuer walk on every sighting.
    fn credential_chains(&self, credential: &Credential) -> bool {
        let caching = self.verify_cache.lock().is_some();
        let digest = jxta_crypto::sha2::sha256(&credential.to_bytes());
        // Load the epoch *before* computing: if an issuer arrives while the
        // verdict is being computed, the stored stamp is already stale and
        // the next sighting recomputes — conservative, never wrong.
        let epoch = self.issuer_epoch.load(Ordering::Acquire);
        if caching {
            if let Some((stamped, chains)) = self.chain_cache.lock().get(&digest) {
                if chains || stamped == epoch {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    return chains;
                }
            }
        }
        let chains = self.credential_chains_uncached(credential);
        if caching {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            self.chain_cache.lock().insert(digest, (epoch, chains));
        }
        chains
    }

    /// Invalidates all cached negative chain verdicts: the issuer set just
    /// grew, so "chains to nobody" may no longer hold.
    fn bump_issuer_epoch(&self) {
        self.issuer_epoch.fetch_add(1, Ordering::Release);
    }

    /// Current issuer-set epoch (bumped per newly learned trust anchor).
    pub fn issuer_epoch(&self) -> u64 {
        self.issuer_epoch.load(Ordering::Acquire)
    }

    /// The chain check proper, one issuer key at a time.
    fn credential_chains_uncached(&self, credential: &Credential) -> bool {
        if credential
            .verify_with(self.identity.public_key(), |k, m, s| {
                self.cached_verify(k, m, s)
            })
            .is_ok()
        {
            return true;
        }
        let peers = self.peer_credentials.lock().clone();
        for peer in &peers {
            if credential
                .verify_with(&peer.public_key, |k, m, s| self.cached_verify(k, m, s))
                .is_ok()
            {
                return true;
            }
        }
        let admin_key = self.admin_key.lock().clone();
        if let Some(admin_key) = admin_key {
            if credential
                .verify_with(&admin_key, |k, m, s| self.cached_verify(k, m, s))
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// The stateless verdict over `xml` (see [`VetVerdict`]): parse, extract
    /// the embedded credential and verify the XMLdsig signature, memoised by
    /// the XML's SHA-256 digest so repeated sightings of the same bytes —
    /// re-publishes, gossip replicas, anti-entropy snapshots — skip both the
    /// parse and the RSA.  With caching disabled the verdict is computed
    /// from scratch every time.
    fn vet_verdict_for(&self, xml: &str) -> VetVerdict {
        let caching = self.verify_cache.lock().is_some();
        let digest = jxta_crypto::sha2::sha256(xml.as_bytes());
        if caching {
            if let Some(verdict) = self.vet_cache.lock().get(&digest) {
                if !matches!(verdict, VetVerdict::Unsigned) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                }
                return verdict;
            }
        }
        let verdict = self.compute_vet_verdict(xml);
        if caching {
            if !matches!(verdict, VetVerdict::Unsigned) {
                self.memo_misses.fetch_add(1, Ordering::Relaxed);
            }
            self.vet_cache.lock().insert(digest, verdict.clone());
        }
        verdict
    }

    /// Computes the stateless verdict without consulting the memo table
    /// (the RSA inside still goes through the signature cache when enabled).
    fn compute_vet_verdict(&self, xml: &str) -> VetVerdict {
        let Ok(element) = jxta_xmldoc::parse(xml) else {
            return VetVerdict::Unsigned;
        };
        if !jxta_xmldoc::dsig::is_signed(&element) {
            return VetVerdict::Unsigned;
        }
        let Ok(credential_bytes) = jxta_xmldoc::dsig::key_info(&element) else {
            return VetVerdict::SignatureInvalid;
        };
        let Ok(credential) = Credential::from_bytes(&credential_bytes) else {
            return VetVerdict::MalformedCredential;
        };
        if jxta_xmldoc::dsig::verify_element_with(&element, &credential.public_key, |k, m, s| {
            self.cached_verify(k, m, s)
        })
        .is_err()
        {
            return VetVerdict::SignatureInvalid;
        }
        VetVerdict::Verified(Box::new(credential))
    }

    // ------------------------------------------------------------------
    // Deployment clock, expiry and revocation
    // ------------------------------------------------------------------

    /// The broker's current deployment time (seconds since the epoch the
    /// credential lifetimes are expressed in).
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Sets the deployment clock (monotone by convention; the simulation
    /// advances it explicitly instead of reading a wall clock).
    pub fn set_now(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }

    /// Provisions the administrator's public key, the trust anchor against
    /// which pushed revocation lists are verified.  A new anchor can turn a
    /// previously failing credential chain into a passing one, so the
    /// issuer-set epoch is bumped.
    pub fn set_admin_public_key(&self, key: RsaPublicKey) {
        *self.admin_key.lock() = Some(key);
        self.bump_issuer_epoch();
    }

    /// Installs a revocation list pushed by the administrator.  The list's
    /// signature must verify against the provisioned admin key; verified
    /// entries are merged into the broker's revocation state (revocation is
    /// monotone — there is no un-revoke short of a new credential for a new
    /// identity).
    pub fn install_revocation_list(&self, list: &RevocationList) -> Result<(), OverlayError> {
        self.merge_revocation_list(list).map(|_| ())
    }

    /// Like [`SecureBrokerExtension::install_revocation_list`], but reports
    /// how many previously unknown subjects the list added (what the repair
    /// metrics count).
    fn merge_revocation_list(&self, list: &RevocationList) -> Result<u64, OverlayError> {
        let admin_key = self.admin_key.lock().clone().ok_or_else(|| {
            OverlayError::SecurityViolation(
                "no administrator key provisioned; cannot verify revocation list".into(),
            )
        })?;
        // Routed through the verified-signature cache: the same admin-signed
        // list travels in every extension-state gossip and anti-entropy
        // snapshot, so only its first sighting pays for RSA.
        list.verify_with(&admin_key, |k, m, s| self.cached_verify(k, m, s))
            .map_err(|_| {
                OverlayError::SecurityViolation(
                    "revocation list not signed by the administrator".into(),
                )
            })?;
        let mut added = 0u64;
        {
            let mut ids = self.revoked_ids.lock();
            for id in &list.revoked_ids {
                if ids.insert(*id) {
                    added += 1;
                }
            }
        }
        {
            let mut names = self.revoked_names.lock();
            for name in &list.revoked_names {
                if names.insert(name.clone()) {
                    added += 1;
                }
            }
        }
        let mut lists = self.revocation_lists.lock();
        if !lists.iter().any(|stored| stored == list) {
            lists.push(list.clone());
        }
        Ok(added)
    }

    /// The verified revocation lists installed on this broker.
    pub fn revocation_lists(&self) -> Vec<RevocationList> {
        self.revocation_lists.lock().clone()
    }

    /// Returns `true` if the peer identifier or username is revoked.
    pub fn is_revoked(&self, id: &PeerId, name: Option<&str>) -> bool {
        self.revoked_ids.lock().contains(id)
            || name.is_some_and(|n| self.revoked_names.lock().contains(n))
    }

    /// Registers the admin-issued credential of a peer broker so this broker
    /// can beacon it to connecting clients.  Admission grows the issuer set,
    /// so a genuinely new credential bumps the issuer-set epoch and thereby
    /// invalidates every cached negative chain verdict.
    pub fn add_peer_broker_credential(&self, credential: Credential) {
        debug_assert_eq!(credential.role, CredentialRole::Broker);
        let mut peers = self.peer_credentials.lock();
        if !peers.iter().any(|c| c == &credential) {
            peers.push(credential);
            drop(peers);
            self.bump_issuer_epoch();
        }
    }

    /// The peer broker credentials this broker beacons.
    pub fn peer_broker_credentials(&self) -> Vec<Credential> {
        self.peer_credentials.lock().clone()
    }

    /// Pushes a signed update of the federation's current credential set
    /// (this broker's plus every beaconed peer's) to every client currently
    /// connected to `broker`.
    ///
    /// This is the re-beaconing half of broker admission: a client that ran
    /// `secureConnection` *before* a broker joined only knows the
    /// credentials beaconed at that time, so it could never validate
    /// advertisements signed under the newcomer's credentials.  Clients
    /// verify the push's outer signature against their authenticated home
    /// broker's key and every contained credential against the
    /// administrator anchor, so a forged push teaches them nothing.
    /// Returns the number of clients the update was delivered to.
    pub fn push_credential_update(&self, broker: &Broker) -> usize {
        let mut credentials = vec![self.credential.clone()];
        credentials.extend(self.peer_credentials.lock().iter().cloned());
        let blob = encode_credential_list(&credentials);
        let Ok(signature) = self.identity.sign(&credential_update_signed_content(&blob)) else {
            return 0;
        };
        // The push is identical for every client: serialise it once.
        let push = Message::new(MessageKind::CredentialUpdate, broker.id(), 0)
            .with_element("credentials", blob)
            .with_element("signature", signature)
            .to_bytes();
        let mut sent = 0;
        for client in broker.client_peers() {
            if broker
                .network()
                // lint:allow(accounted-send, credential push to an attached client peer)
                .send(broker.id(), client, push.clone())
                .is_ok()
            {
                sent += 1;
            }
        }
        sent
    }

    /// The broker's admin-issued credential (`Cred^Adm_Br`).
    pub fn credential(&self) -> &Credential {
        &self.credential
    }

    /// The broker's identity.
    pub fn identity(&self) -> &PeerIdentity {
        &self.identity
    }

    /// Number of session identifiers currently outstanding (issued but not
    /// yet consumed by a login).
    pub fn outstanding_sessions(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Activity counters.
    pub fn stats(&self) -> SecureBrokerStats {
        *self.stats.lock()
    }

    fn error_response(&self, broker: &Broker, message: &Message, kind: MessageKind, reason: &str) -> Message {
        Message::new(kind, broker.id(), message.request_id)
            .with_str("status", "error")
            .with_str("reason", reason)
    }

    /// secureConnection, broker side (paper §4.2.1 steps 4-5).
    fn handle_secure_connect(&self, broker: &Broker, message: &Message) -> Message {
        // A broker whose own admin-issued credential lapsed can no longer
        // prove its legitimacy; serving secure connections with it would
        // teach clients to accept expired credentials.
        if self.credential.is_expired(self.now()) {
            self.stats.lock().expired_rejected += 1;
            return self.error_response(
                broker,
                message,
                MessageKind::SecureConnectResponse,
                "broker credential expired",
            );
        }
        if self.is_revoked(&message.sender, None) {
            self.stats.lock().revoked_rejected += 1;
            return self.error_response(
                broker,
                message,
                MessageKind::SecureConnectResponse,
                "peer credential revoked",
            );
        }
        let Ok(challenge) = message.require("challenge") else {
            return self.error_response(broker, message, MessageKind::SecureConnectResponse, "missing challenge");
        };
        // Generate and remember a fresh session identifier.
        let sid = self.rng.lock().generate_vec(SESSION_ID_LEN);
        self.sessions.lock().insert(sid.clone());

        let Ok(signature) = self.identity.sign(challenge) else {
            return self.error_response(broker, message, MessageKind::SecureConnectResponse, "signing failure");
        };
        broker.mark_connected(message.sender);
        self.stats.lock().challenges_answered += 1;

        let mut response =
            Message::new(MessageKind::SecureConnectResponse, broker.id(), message.request_id)
                .with_str("status", "ok")
                .with_element("sid", sid)
                .with_element("challenge-signature", signature)
                .with_element("broker-credential", self.credential.to_bytes());
        // Beacon the rest of the federation; absent for a single broker, so
        // the single-broker wire format stays unchanged.
        let peers = self.peer_credentials.lock();
        if !peers.is_empty() {
            response.push_element("federation-credentials", encode_credential_list(&peers));
        }
        response
    }

    /// secureLogin, broker side (paper §4.2.2 steps 4-9).
    fn handle_secure_login(&self, broker: &Broker, message: &Message) -> Message {
        let reply_err = |reason: &str| {
            self.error_response(broker, message, MessageKind::SecureLoginResponse, reason)
        };

        // Step 4: decrypt the wrapped request with SK_Br.
        let Ok(envelope_bytes) = message.require("envelope") else {
            return reply_err("missing envelope");
        };
        let Ok(envelope) = Envelope::from_bytes(envelope_bytes) else {
            return reply_err("malformed envelope");
        };
        let Ok(plaintext) = open_envelope(self.identity.private_key(), &envelope) else {
            return reply_err("envelope does not decrypt");
        };
        let Ok(inner) = Message::from_bytes(&plaintext) else {
            return reply_err("malformed login request");
        };
        let (Some(username), Some(password), Some(public_key_bytes), Some(signature), Some(sid)) = (
            inner.element_str("username"),
            inner.element_str("password"),
            inner.element("public-key"),
            inner.element("signature"),
            inner.element("sid"),
        ) else {
            return reply_err("incomplete login request");
        };

        // Step 5: the session identifier must be outstanding; consume it so a
        // replayed request can never succeed.
        if !self.sessions.lock().remove(&sid.to_vec()) {
            self.stats.lock().replays_rejected += 1;
            return reply_err("unknown or already-used session identifier");
        }

        // The request must be signed by the enclosed key.
        let Ok(public_key) = RsaPublicKey::from_bytes(public_key_bytes) else {
            self.stats.lock().logins_rejected += 1;
            return reply_err("malformed public key");
        };
        let signed = login_signed_content(&username, &password, public_key_bytes);
        if public_key.verify(&signed, signature).is_err() {
            self.stats.lock().logins_rejected += 1;
            return reply_err("login request signature does not verify");
        }

        // Step 6: username/password against the central database.
        if !broker.database().verify(&username, &password) {
            self.stats.lock().logins_rejected += 1;
            return reply_err("authentication failed");
        }

        // Step 7: key authenticity against the claimed client peer identifier
        // (CBID binding).  Both the transport-level sender and the inner
        // request must match the key.
        let expected_id = PeerId::from_cbid(&Cbid::from_public_key(&public_key));
        if message.sender != expected_id || inner.sender != expected_id {
            self.stats.lock().logins_rejected += 1;
            return reply_err("public key does not belong to the claimed peer identifier");
        }

        // Revocation: a revoked identity or username is refused a (new)
        // credential even with valid database credentials.
        if self.is_revoked(&expected_id, Some(&username)) {
            self.stats.lock().revoked_rejected += 1;
            return reply_err("credential revoked by the administrator");
        }

        // Step 8: issue Cred^Br_Cl, expiring `credential_lifetime` seconds
        // from *now* on the deployment clock.
        let credential = match Credential::issue(
            CredentialRole::Client,
            &username,
            message.sender,
            public_key,
            &self.credential.subject_name,
            self.now().saturating_add(self.credential_lifetime),
            self.identity.private_key(),
        ) {
            Ok(c) => c,
            Err(_) => return reply_err("credential issuance failed"),
        };

        // Book-keeping shared with the plain broker: session + groups.
        let session = broker.establish_session(message.sender, &username);
        let groups = session
            .groups
            .iter()
            .map(|g| g.as_str().to_string())
            .collect::<Vec<_>>()
            .join(",");

        self.stats.lock().credentials_issued += 1;
        Message::new(MessageKind::SecureLoginResponse, broker.id(), message.request_id)
            .with_str("status", "ok")
            .with_element("credential", credential.to_bytes())
            .with_str("groups", &groups)
    }
}

impl BrokerExtension for SecureBrokerExtension {
    fn handle(&self, broker: &Broker, message: &Message) -> Option<Message> {
        match message.kind {
            MessageKind::SecureConnectChallenge => Some(self.handle_secure_connect(broker, message)),
            MessageKind::SecureLoginRequest => Some(self.handle_secure_login(broker, message)),
            _ => None,
        }
    }

    /// Stateless ingress pre-verification: the expensive RSA checks of the
    /// message kinds that carry signatures run here — on a verify-pool
    /// worker when the broker is pipelined — and record their verdicts in
    /// the verified-signature cache, so the serialized apply stage
    /// ([`SecureBrokerExtension::vet_publish`], revocation-list merges)
    /// finds them already paid for.  Client publishes, gossip digests and
    /// anti-entropy snapshots are walked for embedded signed advertisements;
    /// nothing here mutates broker state.
    fn preverify(&self, _broker: &Broker, message: &Message) {
        if self.verify_cache.lock().is_none() {
            // Without a cache to warm, pre-verification would only duplicate
            // the apply-stage checks — skip it (the ablation baseline).
            return;
        }
        let warm = |xml: &str| match self.vet_verdict_for(xml) {
            VetVerdict::Verified(credential) => {
                // Warm the credential-chain verdict too, so the apply-stage
                // policy check is pure cache lookups.
                let _ = self.credential_chains(&credential);
                self.stats.lock().ingress_preverified += 1;
            }
            VetVerdict::SignatureInvalid | VetVerdict::MalformedCredential => {
                self.stats.lock().ingress_sig_failures += 1;
            }
            VetVerdict::Unsigned => {}
        };
        match message.kind {
            MessageKind::PublishAdvertisement => {
                if let Some(xml) = message.element_str("xml") {
                    warm(&xml);
                }
            }
            MessageKind::BrokerSync => {
                if let Some(count) = message
                    .element_str("count")
                    .and_then(|c| c.parse::<usize>().ok())
                {
                    for i in 0..count {
                        if let Some(xml) = message.element_str(&format!("e{i}-xml")) {
                            warm(&xml);
                        }
                    }
                } else if let Some(xml) = message.element_str("xml") {
                    warm(&xml);
                }
            }
            MessageKind::AntiEntropySnapshot => {
                if let Some(count) = message
                    .element_str("a-count")
                    .and_then(|c| c.parse::<usize>().ok())
                {
                    for i in 0..count {
                        if let Some(xml) = message.element_str(&format!("a{i}-xml")) {
                            warm(&xml);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Publish policy: a *signed* advertisement is refused at the broker
    /// when its embedded credential is expired or revoked, when its XMLdsig
    /// signature does not verify under that credential's key, or when the
    /// credential chains to no issuer this federation knows — forged content
    /// must not enter (or be gossiped out of) the index.  The RSA work is
    /// served by the verified-signature cache, which the ingress
    /// [`SecureBrokerExtension::preverify`] stage has normally already
    /// warmed, so this apply-thread check is digest lookups, not modular
    /// exponentiation.  The *owner binding* (advertisement owner ==
    /// credential subject) deliberately stays client-side: clients hold the
    /// trust anchors and re-check on every use, and the attack suite pins
    /// that division of labour.  Unsigned advertisements (the plain
    /// overlay's publishes) pass through untouched.
    fn vet_publish(
        &self,
        _broker: &Broker,
        from: PeerId,
        _group: &GroupId,
        _doc_type: &str,
        xml: &str,
    ) -> Result<(), String> {
        // Stateless part (parse + signature), memoised by content digest —
        // normally a cache hit because the ingress stage pre-verified it.
        let credential = match self.vet_verdict_for(xml) {
            VetVerdict::Unsigned => return Ok(()), // no credential to vet
            VetVerdict::MalformedCredential => {
                return Err("malformed credential embedded in signed advertisement".to_string());
            }
            VetVerdict::SignatureInvalid => {
                self.stats.lock().forged_rejected += 1;
                return Err("advertisement signature does not verify".to_string());
            }
            VetVerdict::Verified(credential) => credential,
        };
        // Stateful part, re-evaluated on every publish: the deployment
        // clock, the revocation lists and the known-issuer set all move.
        if credential.is_expired(self.now()) {
            self.stats.lock().expired_rejected += 1;
            return Err("credential expired".to_string());
        }
        if self.is_revoked(&credential.subject_id, Some(&credential.subject_name))
            || self.is_revoked(&from, None)
        {
            self.stats.lock().revoked_rejected += 1;
            return Err("credential revoked".to_string());
        }
        if !self.credential_chains(&credential) {
            self.stats.lock().forged_rejected += 1;
            return Err("credential does not chain to a known issuer".to_string());
        }
        Ok(())
    }

    /// Canonical summary of the merged revocation state: the sorted revoked
    /// identifiers and usernames.  Two brokers with the same *effective*
    /// revocations hash equal even if they received them via different
    /// lists, so healthy backbones exchange nothing.
    fn repair_digest(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        let mut ids: Vec<PeerId> = self.revoked_ids.lock().iter().copied().collect();
        ids.sort();
        for id in ids {
            out.extend_from_slice(id.as_bytes());
        }
        let mut names: Vec<String> = self.revoked_names.lock().iter().cloned().collect();
        names.sort();
        for name in names {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        Some(out)
    }

    /// The installed admin-signed lists, encoded for transit.  Signed
    /// content needs no transport trust — a receiving broker re-verifies
    /// every list against its own administrator key.
    fn repair_snapshot(&self) -> Option<Vec<u8>> {
        Some(encode_revocation_lists(&self.revocation_lists.lock()))
    }

    /// Verifies and merges a peer broker's revocation lists.  Unverifiable
    /// lists (wrong signature, garbage bytes) are dropped without touching
    /// local state; the return value counts newly revoked subjects.
    fn apply_repair_snapshot(&self, _broker: &Broker, blob: &[u8]) -> u64 {
        let Ok(lists) = decode_revocation_lists(blob) else {
            return 0;
        };
        let mut added = 0u64;
        for list in lists {
            if let Ok(n) = self.merge_revocation_list(&list) {
                added += n;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::Administrator;
    use jxta_crypto::envelope::seal_envelope;
    use jxta_overlay::broker::BrokerConfig;
    use jxta_overlay::net::LinkModel;
    use jxta_overlay::{GroupId, SimNetwork, UserDatabase};
    use std::sync::Arc;

    struct World {
        broker: Arc<Broker>,
        extension: Arc<SecureBrokerExtension>,
        admin: Administrator,
        rng: HmacDrbg,
    }

    fn world() -> World {
        let mut rng = HmacDrbg::from_seed_u64(0xB0EE);
        let admin = Administrator::new(&mut rng, "admin", 512).unwrap();
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        let broker_identity = PeerIdentity::generate(&mut rng, 1024).unwrap();
        let broker_credential = admin
            .issue_broker_credential(
                "broker-1",
                broker_identity.peer_id(),
                broker_identity.public_key(),
                u64::MAX,
            )
            .unwrap();
        let network = SimNetwork::new(LinkModel::ideal());
        let broker = Broker::new(
            broker_identity.peer_id(),
            BrokerConfig::named("broker-1"),
            network,
            database,
        );
        let extension = Arc::new(SecureBrokerExtension::new(
            broker_identity,
            broker_credential,
            3600,
            0x5EED,
        ));
        broker.set_extension(extension.clone() as Arc<dyn BrokerExtension>);
        World {
            broker,
            extension,
            admin,
            rng,
        }
    }

    fn client_identity(rng: &mut HmacDrbg) -> PeerIdentity {
        PeerIdentity::generate(rng, 1024).unwrap()
    }

    fn do_secure_connect(w: &World, client: &PeerIdentity, challenge: &[u8]) -> Message {
        let msg = Message::new(MessageKind::SecureConnectChallenge, client.peer_id(), 1)
            .with_element("challenge", challenge.to_vec());
        w.broker.handle_message(&msg).unwrap()
    }

    fn build_login_request(
        w: &mut World,
        client: &PeerIdentity,
        username: &str,
        password: &str,
        sid: &[u8],
    ) -> Message {
        let pk_bytes = client.public_key().to_bytes();
        let signature = client
            .sign(&login_signed_content(username, password, &pk_bytes))
            .unwrap();
        let inner = Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 0)
            .with_str("username", username)
            .with_str("password", password)
            .with_element("public-key", pk_bytes)
            .with_element("signature", signature)
            .with_element("sid", sid.to_vec());
        let envelope = seal_envelope(
            &mut w.rng,
            w.extension.identity().public_key(),
            &inner.to_bytes(),
        )
        .unwrap();
        Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 2)
            .with_element("envelope", envelope.to_bytes())
    }

    #[test]
    fn secure_connect_issues_sid_and_signs_challenge() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let resp = do_secure_connect(&w, &client, &challenge);
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        assert_eq!(resp.element("sid").unwrap().len(), SESSION_ID_LEN);
        assert_eq!(w.extension.outstanding_sessions(), 1);

        // The credential chains to the admin and the signature covers our
        // challenge — exactly the client-side checks of §4.2.1 steps 6-7.
        let credential = Credential::from_bytes(resp.element("broker-credential").unwrap()).unwrap();
        credential.verify(w.admin.public_key()).unwrap();
        credential
            .public_key
            .verify(&challenge, resp.element("challenge-signature").unwrap())
            .unwrap();
        assert!(w.broker.is_connected(&client.peer_id()));
        assert_eq!(w.extension.stats().challenges_answered, 1);
    }

    #[test]
    fn credential_list_roundtrip_and_rejection_of_garbage() {
        let mut w = world();
        let other_broker = PeerIdentity::generate(&mut w.rng, 512).unwrap();
        let other_credential = w
            .admin
            .issue_broker_credential(
                "broker-2",
                other_broker.peer_id(),
                other_broker.public_key(),
                u64::MAX,
            )
            .unwrap();
        let list = vec![w.extension.credential().clone(), other_credential];
        let bytes = encode_credential_list(&list);
        assert_eq!(decode_credential_list(&bytes).unwrap(), list);
        assert_eq!(decode_credential_list(&encode_credential_list(&[])).unwrap(), vec![]);

        assert!(decode_credential_list(b"").is_err());
        assert!(decode_credential_list(&[0, 3]).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(truncated.len() - 1);
        assert!(decode_credential_list(&truncated).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_credential_list(&trailing).is_err());
    }

    #[test]
    fn secure_connect_beacons_federation_credentials() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        // Without peers, the response omits the federation element.
        let challenge = w.rng.generate_vec(32);
        let resp = do_secure_connect(&w, &client, &challenge);
        assert!(resp.element("federation-credentials").is_none());

        let other_broker = PeerIdentity::generate(&mut w.rng, 512).unwrap();
        let other_credential = w
            .admin
            .issue_broker_credential(
                "broker-2",
                other_broker.peer_id(),
                other_broker.public_key(),
                u64::MAX,
            )
            .unwrap();
        w.extension.add_peer_broker_credential(other_credential.clone());
        w.extension.add_peer_broker_credential(other_credential.clone());
        assert_eq!(w.extension.peer_broker_credentials().len(), 1, "no duplicates");

        let challenge = w.rng.generate_vec(32);
        let resp = do_secure_connect(&w, &client, &challenge);
        let beaconed =
            decode_credential_list(resp.element("federation-credentials").unwrap()).unwrap();
        assert_eq!(beaconed, vec![other_credential]);
    }

    #[test]
    fn secure_connect_without_challenge_fails() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let msg = Message::new(MessageKind::SecureConnectChallenge, client.peer_id(), 1);
        let resp = w.broker.handle_message(&msg).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn secure_login_happy_path_issues_credential() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let connect_resp = do_secure_connect(&w, &client, &challenge);
        let sid = connect_resp.element("sid").unwrap().to_vec();

        let login = build_login_request(&mut w, &client, "alice", "pw-a", &sid);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok", "{:?}", resp.element_str("reason"));

        let credential = Credential::from_bytes(resp.element("credential").unwrap()).unwrap();
        credential.verify(w.extension.identity().public_key()).unwrap();
        assert_eq!(credential.subject_name, "alice");
        assert_eq!(credential.subject_id, client.peer_id());
        assert!(credential.binds_key_to_subject());
        assert!(resp.element_str("groups").unwrap().contains("math"));
        assert_eq!(w.broker.session_count(), 1);
        assert_eq!(w.extension.outstanding_sessions(), 0, "sid consumed");
        assert_eq!(w.extension.stats().credentials_issued, 1);
    }

    #[test]
    fn secure_login_rejects_replayed_request() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge)
            .element("sid")
            .unwrap()
            .to_vec();
        let login = build_login_request(&mut w, &client, "alice", "pw-a", &sid);
        // First attempt succeeds.
        assert_eq!(
            w.broker.handle_message(&login).unwrap().element_str("status").unwrap(),
            "ok"
        );
        // Replaying the exact same captured request fails: the sid was
        // consumed.
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("session identifier"));
        assert_eq!(w.extension.stats().replays_rejected, 1);
    }

    #[test]
    fn secure_login_rejects_unknown_sid() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let login = build_login_request(&mut w, &client, "alice", "pw-a", &[9u8; SESSION_ID_LEN]);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert_eq!(w.extension.stats().replays_rejected, 1);
    }

    #[test]
    fn secure_login_rejects_wrong_password() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge).element("sid").unwrap().to_vec();
        let login = build_login_request(&mut w, &client, "alice", "wrong", &sid);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("authentication"));
        assert_eq!(w.extension.stats().logins_rejected, 1);
        assert_eq!(w.broker.session_count(), 0);
    }

    #[test]
    fn secure_login_rejects_stolen_key_identity() {
        // An attacker sends a login request from their own peer id but with
        // the victim's username/password guess and their own key — if the
        // sender id does not match the key's CBID the broker refuses.
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let attacker_transport_id = PeerId::random(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge).element("sid").unwrap().to_vec();

        let mut login = build_login_request(&mut w, &client, "alice", "pw-a", &sid);
        login.sender = attacker_transport_id; // transport-level mismatch
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("claimed peer identifier"));
    }

    #[test]
    fn secure_login_rejects_tampered_signature() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge).element("sid").unwrap().to_vec();

        // Build a request where the signature covers a different password.
        let pk_bytes = client.public_key().to_bytes();
        let signature = client
            .sign(&login_signed_content("alice", "other-password", &pk_bytes))
            .unwrap();
        let inner = Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 0)
            .with_str("username", "alice")
            .with_str("password", "pw-a")
            .with_element("public-key", pk_bytes)
            .with_element("signature", signature)
            .with_element("sid", sid);
        let envelope = seal_envelope(
            &mut w.rng,
            w.extension.identity().public_key(),
            &inner.to_bytes(),
        )
        .unwrap();
        let login = Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 2)
            .with_element("envelope", envelope.to_bytes());
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("signature"));
    }

    #[test]
    fn secure_login_rejects_garbage_envelope() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let login = Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 2)
            .with_element("envelope", b"not an envelope".to_vec());
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        // Missing the element entirely is also handled.
        let login = Message::new(MessageKind::SecureLoginRequest, client.peer_id(), 2);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
    }

    #[test]
    fn expired_broker_credential_refuses_secure_connect() {
        let mut w = world();
        // The broker credential in `world()` never expires; build one that
        // lapsed at t=100 and advance the clock past it.
        let identity = PeerIdentity::generate(&mut w.rng, 512).unwrap();
        let credential = w
            .admin
            .issue_broker_credential("short-lived", identity.peer_id(), identity.public_key(), 100)
            .unwrap();
        let extension = Arc::new(SecureBrokerExtension::new(identity, credential, 3600, 1));
        w.broker.set_extension(extension.clone() as Arc<dyn BrokerExtension>);

        extension.set_now(99);
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let resp = do_secure_connect(&w, &client, &challenge);
        assert_eq!(resp.element_str("status").unwrap(), "ok", "still valid at t=99");

        extension.set_now(101);
        let resp = do_secure_connect(&w, &client, &challenge);
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("expired"));
        assert_eq!(extension.stats().expired_rejected, 1);
    }

    #[test]
    fn issued_credentials_expire_relative_to_the_deployment_clock() {
        let mut w = world();
        w.extension.set_now(500);
        let client = client_identity(&mut w.rng);
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge).element("sid").unwrap().to_vec();
        let login = build_login_request(&mut w, &client, "alice", "pw-a", &sid);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "ok");
        let credential = Credential::from_bytes(resp.element("credential").unwrap()).unwrap();
        assert_eq!(credential.expires_at, 500 + 3600, "now + lifetime");
        assert!(!credential.is_expired(500 + 3600));
        assert!(credential.is_expired(500 + 3601));
    }

    #[test]
    fn revocation_list_requires_admin_signature_and_key() {
        let mut w = world();
        let victim = client_identity(&mut w.rng);
        let list = w
            .admin
            .issue_revocation_list(&[victim.peer_id()], &["alice"], 7)
            .unwrap();

        // Without a provisioned admin key the broker cannot verify anything.
        let bare = SecureBrokerExtension::new(
            PeerIdentity::generate(&mut w.rng, 512).unwrap(),
            w.extension.credential().clone(),
            3600,
            2,
        );
        assert!(bare.install_revocation_list(&list).is_err());

        // A list signed by someone other than the admin is rejected.
        let impostor = crate::admin::Administrator::new(&mut w.rng, "impostor", 512).unwrap();
        let forged = impostor
            .issue_revocation_list(&[victim.peer_id()], &[], 7)
            .unwrap();
        w.extension.set_admin_public_key(w.admin.public_key().clone());
        assert!(w.extension.install_revocation_list(&forged).is_err());
        assert!(!w.extension.is_revoked(&victim.peer_id(), Some("alice")));

        // The genuine list installs and revokes both the id and the name.
        w.extension.install_revocation_list(&list).unwrap();
        assert!(w.extension.is_revoked(&victim.peer_id(), None));
        assert!(w.extension.is_revoked(&PeerId::random(&mut w.rng), Some("alice")));
        assert!(!w.extension.is_revoked(&PeerId::random(&mut w.rng), Some("bob")));
    }

    #[test]
    fn revoked_peer_is_refused_login_and_connect() {
        let mut w = world();
        w.extension.set_admin_public_key(w.admin.public_key().clone());
        let client = client_identity(&mut w.rng);

        // Revoked by username: the login (with a fresh sid and valid
        // password) is refused.
        let list = w.admin.issue_revocation_list(&[], &["alice"], 0).unwrap();
        w.extension.install_revocation_list(&list).unwrap();
        let challenge = w.rng.generate_vec(32);
        let sid = do_secure_connect(&w, &client, &challenge).element("sid").unwrap().to_vec();
        let login = build_login_request(&mut w, &client, "alice", "pw-a", &sid);
        let resp = w.broker.handle_message(&login).unwrap();
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("revoked"));
        assert_eq!(w.extension.stats().revoked_rejected, 1);
        assert_eq!(w.broker.session_count(), 0);

        // Revoked by peer identifier: even the secureConnection is refused.
        let list = w
            .admin
            .issue_revocation_list(&[client.peer_id()], &[], 0)
            .unwrap();
        w.extension.install_revocation_list(&list).unwrap();
        let challenge = w.rng.generate_vec(32);
        let resp = do_secure_connect(&w, &client, &challenge);
        assert_eq!(resp.element_str("status").unwrap(), "error");
        assert!(resp.element_str("reason").unwrap().contains("revoked"));
    }

    #[test]
    fn vet_publish_rejects_expired_and_revoked_credentials_only() {
        use crate::signed_adv::signed_pipe_advertisement;
        use jxta_overlay::advertisement::PipeAdvertisement;
        let mut w = world();
        w.extension.set_admin_public_key(w.admin.public_key().clone());
        let client = client_identity(&mut w.rng);
        let group = jxta_overlay::GroupId::new("math");
        let credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            client.peer_id(),
            client.public_key().clone(),
            "broker-1",
            1_000,
            w.extension.identity().private_key(),
        )
        .unwrap();
        let advertisement = PipeAdvertisement {
            owner: client.peer_id(),
            group: group.clone(),
            name: "alice-inbox".into(),
        };
        let xml = signed_pipe_advertisement(&advertisement, &client, &credential).unwrap();

        // Fresh credential: accepted.
        assert!(w
            .extension
            .vet_publish(&w.broker, client.peer_id(), &group, "jxta:PipeAdvertisement", &xml)
            .is_ok());
        // Unsigned advertisements are never vetted.
        assert!(w
            .extension
            .vet_publish(
                &w.broker,
                client.peer_id(),
                &group,
                "jxta:PipeAdvertisement",
                "<jxta:PipeAdvertisement/>"
            )
            .is_ok());

        // Expired credential: refused.
        w.extension.set_now(1_001);
        let err = w
            .extension
            .vet_publish(&w.broker, client.peer_id(), &group, "jxta:PipeAdvertisement", &xml)
            .unwrap_err();
        assert!(err.contains("expired"));
        assert_eq!(w.extension.stats().expired_rejected, 1);

        // Revoked credential: refused even while unexpired.
        w.extension.set_now(0);
        let list = w
            .admin
            .issue_revocation_list(&[client.peer_id()], &[], 0)
            .unwrap();
        w.extension.install_revocation_list(&list).unwrap();
        let err = w
            .extension
            .vet_publish(&w.broker, client.peer_id(), &group, "jxta:PipeAdvertisement", &xml)
            .unwrap_err();
        assert!(err.contains("revoked"));
        assert_eq!(w.extension.stats().revoked_rejected, 1);
    }

    #[test]
    fn extension_ignores_unrelated_kinds() {
        let mut w = world();
        let client = client_identity(&mut w.rng);
        let msg = Message::new(MessageKind::PeerText, client.peer_id(), 1);
        assert!(w.extension.handle(&w.broker, &msg).is_none());
    }

    #[test]
    fn negative_chain_verdicts_cache_within_an_issuer_epoch() {
        let w = world();
        // A credential issued by a *foreign* federation: chains to nobody
        // this broker knows.
        let mut rng = HmacDrbg::from_seed_u64(0xF0E1);
        let foreign_admin = Administrator::new(&mut rng, "foreign-admin", 512).unwrap();
        let foreign_identity = PeerIdentity::generate(&mut rng, 1024).unwrap();
        let foreign = foreign_admin
            .issue_broker_credential(
                "foreign",
                foreign_identity.peer_id(),
                foreign_identity.public_key(),
                u64::MAX,
            )
            .unwrap();

        let epoch0 = w.extension.issuer_epoch();
        let hits0 = w.extension.memo_hits.load(Ordering::Relaxed);
        let misses0 = w.extension.memo_misses.load(Ordering::Relaxed);

        // First sighting computes the failing chain walk and memoises the
        // negative verdict; the second is answered from the memo.
        assert!(!w.extension.credential_chains(&foreign));
        assert!(!w.extension.credential_chains(&foreign));
        assert_eq!(w.extension.memo_misses.load(Ordering::Relaxed), misses0 + 1);
        assert_eq!(w.extension.memo_hits.load(Ordering::Relaxed), hits0 + 1);

        // Admission of a broker whose credential binds the foreign admin's
        // key grows the issuer set: the epoch bumps, the stale negative
        // verdict is recomputed — and now chains.
        let bridge = w
            .admin
            .issue_broker_credential(
                "bridge",
                foreign_identity.peer_id(),
                foreign_admin.public_key(),
                u64::MAX,
            )
            .unwrap();
        w.extension.add_peer_broker_credential(bridge.clone());
        assert_eq!(w.extension.issuer_epoch(), epoch0 + 1);
        assert!(
            w.extension.credential_chains(&foreign),
            "the epoch bump must invalidate the cached negative verdict"
        );
        assert_eq!(w.extension.memo_misses.load(Ordering::Relaxed), misses0 + 2);

        // The now-positive verdict is epoch-independent, and re-adding a
        // known credential does not bump the epoch.
        w.extension.add_peer_broker_credential(bridge);
        assert_eq!(w.extension.issuer_epoch(), epoch0 + 1);
        assert!(w.extension.credential_chains(&foreign));
        assert_eq!(w.extension.memo_hits.load(Ordering::Relaxed), hits0 + 2);
    }

    #[test]
    fn signed_content_helpers_are_injective_enough() {
        // Field boundaries are length-prefixed, so shifting bytes between
        // fields changes the encoding.
        assert_ne!(
            login_signed_content("ab", "c", b"k"),
            login_signed_content("a", "bc", b"k")
        );
        assert_ne!(
            message_signed_content("g1", "hello"),
            message_signed_content("g", "1hello")
        );
        assert_eq!(
            message_signed_content("g", "t"),
            message_signed_content("g", "t")
        );
    }
}
