//! Peer cryptographic identities.
//!
//! At boot time every entity taking part in the secure extension generates an
//! RSA key pair (paper §4.1).  A [`PeerIdentity`] bundles the key pair with
//! the identifiers derived from it: the CBID (hash of the public key) and the
//! CBID-derived [`PeerId`] used on the overlay.  Deriving the peer identifier
//! from the key is what makes the key/identifier binding checkable by anyone
//! (`secureLogin` step 7, signed-advertisement validation).

use jxta_crypto::cbid::Cbid;
use jxta_crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use jxta_crypto::CryptoError;
use jxta_overlay::PeerId;
use rand::RngCore;

/// Default RSA modulus size used by identities in examples and benchmarks.
/// The paper's JXTA deployment used 1024-bit keys (the JXTA PSE default of
/// its era).
pub const DEFAULT_KEY_BITS: usize = 1024;

/// A peer's cryptographic identity: key pair, CBID and peer identifier.
#[derive(Debug, Clone)]
pub struct PeerIdentity {
    keypair: RsaKeyPair,
    cbid: Cbid,
    peer_id: PeerId,
}

impl PeerIdentity {
    /// Generates a fresh identity with a modulus of `bits` bits.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> Result<Self, CryptoError> {
        let keypair = RsaKeyPair::generate(rng, bits)?;
        Ok(Self::from_keypair(keypair))
    }

    /// Generates a fresh identity with the default key size.
    pub fn generate_default<R: RngCore + ?Sized>(rng: &mut R) -> Result<Self, CryptoError> {
        Self::generate(rng, DEFAULT_KEY_BITS)
    }

    /// Builds an identity from an existing key pair.
    pub fn from_keypair(keypair: RsaKeyPair) -> Self {
        let cbid = Cbid::from_public_key(&keypair.public);
        let peer_id = PeerId::from_cbid(&cbid);
        PeerIdentity {
            keypair,
            cbid,
            peer_id,
        }
    }

    /// The public half of the key pair.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.keypair.public
    }

    /// The private half of the key pair (never leaves the peer).
    pub fn private_key(&self) -> &RsaPrivateKey {
        &self.keypair.private
    }

    /// The crypto-based identifier of the public key.
    pub fn cbid(&self) -> &Cbid {
        &self.cbid
    }

    /// The CBID-derived overlay peer identifier.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// Signs `message` with this identity's private key (`S_SK(x)`).
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.keypair.private.sign(message)
    }

    /// Verifies a signature made by this identity.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        self.keypair.public.verify(message, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    #[test]
    fn identity_derivation_is_consistent() {
        let mut rng = HmacDrbg::from_seed_u64(0x1D);
        let identity = PeerIdentity::generate(&mut rng, 512).unwrap();
        assert_eq!(identity.cbid(), &Cbid::from_public_key(identity.public_key()));
        assert_eq!(identity.peer_id(), PeerId::from_cbid(identity.cbid()));
        assert!(identity.peer_id().matches_cbid(identity.cbid()));
    }

    #[test]
    fn different_identities_have_different_ids() {
        let mut rng = HmacDrbg::from_seed_u64(0x1E);
        let a = PeerIdentity::generate(&mut rng, 512).unwrap();
        let b = PeerIdentity::generate(&mut rng, 512).unwrap();
        assert_ne!(a.peer_id(), b.peer_id());
        assert_ne!(a.cbid(), b.cbid());
    }

    #[test]
    fn sign_and_verify() {
        let mut rng = HmacDrbg::from_seed_u64(0x1F);
        let identity = PeerIdentity::generate(&mut rng, 512).unwrap();
        let sig = identity.sign(b"boot-time message").unwrap();
        identity.verify(b"boot-time message", &sig).unwrap();
        assert!(identity.verify(b"different message", &sig).is_err());
    }

    #[test]
    fn from_keypair_matches_generate() {
        let mut rng = HmacDrbg::from_seed_u64(0x20);
        let keypair = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let identity = PeerIdentity::from_keypair(keypair.clone());
        assert_eq!(identity.public_key(), &keypair.public);
        assert_eq!(
            identity.peer_id(),
            PeerId::from_cbid(&Cbid::from_public_key(&keypair.public))
        );
    }

    #[test]
    fn generate_rejects_tiny_keys() {
        let mut rng = HmacDrbg::from_seed_u64(0x21);
        assert!(PeerIdentity::generate(&mut rng, 64).is_err());
    }
}
