//! Signed advertisements and the trust anchors used to validate them.
//!
//! The secure extension distributes credentials (and hence authentic public
//! keys) by embedding them into the XMLdsig-style signature of the
//! advertisements peers already publish: "once each client peer or a broker
//! has established its credential, it is distributed to other group members
//! using the approach in \[16\].  This grants an authentic credential
//! distribution mechanism based on Crypto Based IDentifiers, which is
//! invisible to both JXTA-Overlay and JXTA" (paper §4.1).
//!
//! Validation of a signed advertisement checks four things:
//!
//! 1. The embedded credential verifies against a trusted issuer (the
//!    administrator or a broker whose own credential chains to the
//!    administrator).
//! 2. The credential's public key matches its subject's CBID-derived peer
//!    identifier (key authenticity).
//! 3. The XMLdsig signature over the advertisement body verifies with that
//!    public key (integrity + source authenticity).
//! 4. The advertisement's owner is the credential subject (no grafting a
//!    valid credential onto someone else's advertisement).

use crate::credential::{Credential, CredentialRole};
use crate::identity::PeerIdentity;
use jxta_crypto::rsa::RsaPublicKey;
use jxta_crypto::CryptoError;
use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
use jxta_overlay::{OverlayError, PeerId};
use jxta_xmldoc::{dsig, Element};

/// The trust anchors a peer uses to validate credentials.
#[derive(Debug, Clone)]
pub struct TrustAnchors {
    /// The administrator's self-signed credential (`Cred^Adm_Adm`), copied to
    /// every peer at deployment time.
    admin: Credential,
    /// Broker credentials this peer has verified (learned during
    /// `secureConnection`).
    brokers: Vec<Credential>,
}

impl TrustAnchors {
    /// Creates trust anchors from the administrator credential.
    ///
    /// Fails if the administrator credential is not a valid self-signed
    /// administrator credential.
    pub fn new(admin: Credential) -> Result<Self, OverlayError> {
        if admin.role != CredentialRole::Administrator {
            return Err(OverlayError::SecurityViolation(
                "trust anchor is not an administrator credential".into(),
            ));
        }
        admin
            .verify_self_signed()
            .map_err(|_| OverlayError::SecurityViolation("administrator credential does not verify".into()))?;
        Ok(TrustAnchors {
            admin,
            brokers: Vec::new(),
        })
    }

    /// The administrator credential.
    pub fn admin(&self) -> &Credential {
        &self.admin
    }

    /// Verifies a broker credential against the administrator key and, on
    /// success, remembers it as trusted.
    pub fn add_broker(&mut self, broker: Credential) -> Result<(), OverlayError> {
        if broker.role != CredentialRole::Broker {
            return Err(OverlayError::SecurityViolation(
                "credential does not assert the Broker role".into(),
            ));
        }
        broker.verify(&self.admin.public_key).map_err(|_| {
            OverlayError::SecurityViolation("broker credential not issued by the administrator".into())
        })?;
        if !broker.binds_key_to_subject() {
            return Err(OverlayError::SecurityViolation(
                "broker credential key does not match its CBID".into(),
            ));
        }
        if !self.brokers.iter().any(|b| b == &broker) {
            self.brokers.push(broker);
        }
        Ok(())
    }

    /// The trusted broker credentials learned so far.
    pub fn brokers(&self) -> &[Credential] {
        &self.brokers
    }

    /// Verifies an arbitrary credential against the trust anchors: the
    /// administrator key or any trusted broker key.
    pub fn verify_credential(&self, credential: &Credential) -> Result<(), OverlayError> {
        self.verify_credential_with(credential, |key, message, signature| {
            key.verify(message, signature)
        })
    }

    /// Like [`TrustAnchors::verify_credential`], but delegating every RSA
    /// operation to `verify` — so callers can route the chain walk through a
    /// [`jxta_crypto::sigcache::VerifiedSigCache`] and pay for each
    /// (key, bytes, signature) triple only once.
    pub fn verify_credential_with<V>(
        &self,
        credential: &Credential,
        verify: V,
    ) -> Result<(), OverlayError>
    where
        V: Fn(&RsaPublicKey, &[u8], &[u8]) -> Result<(), CryptoError>,
    {
        if credential
            .verify_with(&self.admin.public_key, &verify)
            .is_ok()
        {
            return Ok(());
        }
        for broker in &self.brokers {
            if credential.verify_with(&broker.public_key, &verify).is_ok() {
                return Ok(());
            }
        }
        Err(OverlayError::SecurityViolation(
            "credential does not chain to any trust anchor".into(),
        ))
    }
}

/// Signs an advertisement element in place, embedding `credential` (the
/// signer's own credential) as the `KeyInfo` payload.
pub fn sign_advertisement(
    element: &mut Element,
    signer: &PeerIdentity,
    credential: &Credential,
) -> Result<(), OverlayError> {
    dsig::sign_element(element, signer.private_key(), &credential.to_bytes())?;
    Ok(())
}

/// Builds and signs a pipe advertisement for `owner`.
pub fn signed_pipe_advertisement(
    advertisement: &PipeAdvertisement,
    signer: &PeerIdentity,
    credential: &Credential,
) -> Result<String, OverlayError> {
    let mut element = advertisement.to_element();
    sign_advertisement(&mut element, signer, credential)?;
    Ok(element.to_xml())
}

/// Outcome of validating a signed advertisement: the parsed advertisement and
/// the authenticated credential of its owner.
#[derive(Debug, Clone)]
pub struct ValidatedAdvertisement<A> {
    /// The advertisement content.
    pub advertisement: A,
    /// The owner's credential, verified against the trust anchors.
    pub credential: Credential,
}

/// Validates a signed advertisement document of type `A`.
///
/// `expected_owner` is the peer the caller believes published the
/// advertisement (e.g. the destination of a `secureMsgPeer`); the check that
/// credential subject, advertisement owner and CBID-derived identifier all
/// agree is what defeats advertisement forgery by otherwise legitimate peers.
pub fn validate_signed_advertisement<A, F>(
    xml: &str,
    expected_owner: PeerId,
    trust: &TrustAnchors,
    owner_of: F,
) -> Result<ValidatedAdvertisement<A>, OverlayError>
where
    A: Advertisement,
    F: Fn(&A) -> PeerId,
{
    validate_signed_advertisement_with(xml, expected_owner, trust, owner_of, |key, message, signature| {
        key.verify(message, signature)
    })
}

/// Like [`validate_signed_advertisement`], but delegating every RSA
/// verification — the credential chain walk *and* the XMLdsig check — to
/// `verify`.  Clients route this through their
/// [`jxta_crypto::sigcache::VerifiedSigCache`] so re-validating an
/// advertisement (or another advertisement embedding the same credential)
/// skips the RSA entirely.
pub fn validate_signed_advertisement_with<A, F, V>(
    xml: &str,
    expected_owner: PeerId,
    trust: &TrustAnchors,
    owner_of: F,
    verify: V,
) -> Result<ValidatedAdvertisement<A>, OverlayError>
where
    A: Advertisement,
    F: Fn(&A) -> PeerId,
    V: Fn(&RsaPublicKey, &[u8], &[u8]) -> Result<(), CryptoError>,
{
    let element = jxta_xmldoc::parse(xml)?;

    // 1. Extract and authenticate the embedded credential.
    let credential_bytes = dsig::key_info(&element)?;
    let credential = Credential::from_bytes(&credential_bytes)
        .map_err(|e| OverlayError::SecurityViolation(format!("embedded credential: {e}")))?;
    trust.verify_credential_with(&credential, &verify)?;

    // 2. Key authenticity: the credential's key must hash to its subject id.
    if !credential.binds_key_to_subject() {
        return Err(OverlayError::SecurityViolation(
            "credential public key does not match the subject identifier".into(),
        ));
    }

    // 3. Advertisement integrity and source authenticity.
    dsig::verify_element_with(&element, &credential.public_key, &verify)?;

    // 4. The advertisement must belong to the credential subject and to the
    //    peer the caller expected.
    let advertisement = A::from_element(&element)?;
    let owner = owner_of(&advertisement);
    if owner != credential.subject_id {
        return Err(OverlayError::SecurityViolation(
            "advertisement owner differs from the credential subject".into(),
        ));
    }
    if owner != expected_owner {
        return Err(OverlayError::SecurityViolation(format!(
            "advertisement owner {owner} is not the expected peer {expected_owner}"
        )));
    }

    Ok(ValidatedAdvertisement {
        advertisement,
        credential,
    })
}

/// Convenience wrapper for the common case: a signed pipe advertisement.
pub fn validate_signed_pipe_advertisement(
    xml: &str,
    expected_owner: PeerId,
    trust: &TrustAnchors,
) -> Result<ValidatedAdvertisement<PipeAdvertisement>, OverlayError> {
    validate_signed_advertisement(xml, expected_owner, trust, |adv: &PipeAdvertisement| adv.owner)
}

/// [`validate_signed_pipe_advertisement`] with the RSA verification
/// delegated to `verify` (see [`validate_signed_advertisement_with`]).
pub fn validate_signed_pipe_advertisement_with<V>(
    xml: &str,
    expected_owner: PeerId,
    trust: &TrustAnchors,
    verify: V,
) -> Result<ValidatedAdvertisement<PipeAdvertisement>, OverlayError>
where
    V: Fn(&RsaPublicKey, &[u8], &[u8]) -> Result<(), CryptoError>,
{
    validate_signed_advertisement_with(
        xml,
        expected_owner,
        trust,
        |adv: &PipeAdvertisement| adv.owner,
        verify,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::Administrator;
    use jxta_crypto::drbg::HmacDrbg;
    use jxta_overlay::GroupId;
    use std::sync::OnceLock;

    struct World {
        admin: Administrator,
        broker_identity: PeerIdentity,
        broker_credential: Credential,
        alice: PeerIdentity,
        alice_credential: Credential,
        mallory: PeerIdentity,
        mallory_credential: Credential,
    }

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed_u64(0x5AD7);
            let admin = Administrator::new(&mut rng, "admin", 512).unwrap();
            let broker_identity = PeerIdentity::generate(&mut rng, 512).unwrap();
            let broker_credential = admin
                .issue_broker_credential(
                    "broker-1",
                    broker_identity.peer_id(),
                    broker_identity.public_key(),
                    u64::MAX,
                )
                .unwrap();
            let alice = PeerIdentity::generate(&mut rng, 512).unwrap();
            let alice_credential = Credential::issue(
                CredentialRole::Client,
                "alice",
                alice.peer_id(),
                alice.public_key().clone(),
                "broker-1",
                u64::MAX,
                broker_identity.private_key(),
            )
            .unwrap();
            let mallory = PeerIdentity::generate(&mut rng, 512).unwrap();
            let mallory_credential = Credential::issue(
                CredentialRole::Client,
                "mallory",
                mallory.peer_id(),
                mallory.public_key().clone(),
                "broker-1",
                u64::MAX,
                broker_identity.private_key(),
            )
            .unwrap();
            World {
                admin,
                broker_identity,
                broker_credential,
                alice,
                alice_credential,
                mallory,
                mallory_credential,
            }
        })
    }

    fn trust() -> TrustAnchors {
        let w = world();
        let mut trust = TrustAnchors::new(w.admin.credential().clone()).unwrap();
        trust.add_broker(w.broker_credential.clone()).unwrap();
        trust
    }

    fn alice_pipe() -> PipeAdvertisement {
        PipeAdvertisement {
            owner: world().alice.peer_id(),
            group: GroupId::new("math"),
            name: "alice-inbox".into(),
        }
    }

    #[test]
    fn trust_anchor_construction_checks_admin_credential() {
        let w = world();
        assert!(TrustAnchors::new(w.admin.credential().clone()).is_ok());
        // A broker credential is not an acceptable anchor.
        assert!(TrustAnchors::new(w.broker_credential.clone()).is_err());
        // A forged "self-signed" admin credential signed by someone else fails.
        let forged = Credential::issue(
            CredentialRole::Administrator,
            "fake-admin",
            w.mallory.peer_id(),
            w.mallory.public_key().clone(),
            "fake-admin",
            u64::MAX,
            w.broker_identity.private_key(),
        )
        .unwrap();
        assert!(TrustAnchors::new(forged).is_err());
    }

    #[test]
    fn add_broker_validates_the_chain() {
        let w = world();
        let mut trust = TrustAnchors::new(w.admin.credential().clone()).unwrap();
        trust.add_broker(w.broker_credential.clone()).unwrap();
        assert_eq!(trust.brokers().len(), 1);
        // Adding the same broker twice does not duplicate it.
        trust.add_broker(w.broker_credential.clone()).unwrap();
        assert_eq!(trust.brokers().len(), 1);
        // A client credential cannot be added as a broker anchor.
        assert!(trust.add_broker(w.alice_credential.clone()).is_err());
        // A broker credential not issued by the admin is rejected.
        let rogue = Credential::issue(
            CredentialRole::Broker,
            "rogue",
            w.mallory.peer_id(),
            w.mallory.public_key().clone(),
            "rogue",
            u64::MAX,
            w.mallory.private_key(),
        )
        .unwrap();
        assert!(trust.add_broker(rogue).is_err());
    }

    #[test]
    fn verify_credential_accepts_admin_and_broker_issued() {
        let w = world();
        let trust = trust();
        trust.verify_credential(&w.broker_credential).unwrap();
        trust.verify_credential(&w.alice_credential).unwrap();
        // Self-issued credential chains to nothing.
        let rogue = Credential::issue(
            CredentialRole::Client,
            "rogue",
            w.mallory.peer_id(),
            w.mallory.public_key().clone(),
            "rogue",
            u64::MAX,
            w.mallory.private_key(),
        )
        .unwrap();
        assert!(trust.verify_credential(&rogue).is_err());
    }

    #[test]
    fn signed_pipe_advertisement_validates() {
        let w = world();
        let xml = signed_pipe_advertisement(&alice_pipe(), &w.alice, &w.alice_credential).unwrap();
        let validated =
            validate_signed_pipe_advertisement(&xml, w.alice.peer_id(), &trust()).unwrap();
        assert_eq!(validated.advertisement, alice_pipe());
        assert_eq!(validated.credential.subject_name, "alice");
        // The advertisement keeps its original document type.
        assert!(xml.starts_with("<jxta:PipeAdvertisement"));
    }

    #[test]
    fn unsigned_advertisement_is_rejected() {
        let w = world();
        let xml = alice_pipe().to_xml();
        assert!(matches!(
            validate_signed_pipe_advertisement(&xml, w.alice.peer_id(), &trust()),
            Err(OverlayError::Signature(_))
        ));
    }

    #[test]
    fn tampered_advertisement_is_rejected() {
        let w = world();
        let xml = signed_pipe_advertisement(&alice_pipe(), &w.alice, &w.alice_credential).unwrap();
        let tampered = xml.replace("alice-inbox", "mallory-inbox");
        assert!(validate_signed_pipe_advertisement(&tampered, w.alice.peer_id(), &trust()).is_err());
    }

    #[test]
    fn forged_owner_is_rejected() {
        // Mallory (a legitimate, credentialed peer) publishes an advertisement
        // claiming to be Alice's pipe.  The plain overlay would happily accept
        // it; the secure validation refuses because the advertisement owner
        // does not match Mallory's credential subject.
        let w = world();
        let forged = PipeAdvertisement {
            owner: w.alice.peer_id(),
            group: GroupId::new("math"),
            name: "fake-alice-inbox".into(),
        };
        let xml = signed_pipe_advertisement(&forged, &w.mallory, &w.mallory_credential).unwrap();
        let err = validate_signed_pipe_advertisement(&xml, w.alice.peer_id(), &trust()).unwrap_err();
        assert!(matches!(err, OverlayError::SecurityViolation(_)));
    }

    #[test]
    fn self_issued_credential_in_advertisement_is_rejected() {
        // Mallory signs with a credential she issued to herself for Alice's
        // identity; the chain check fails.
        let w = world();
        let fake_credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            w.alice.peer_id(),
            w.mallory.public_key().clone(),
            "mallory-ca",
            u64::MAX,
            w.mallory.private_key(),
        )
        .unwrap();
        let mut element = alice_pipe().to_element();
        dsig::sign_element(&mut element, w.mallory.private_key(), &fake_credential.to_bytes()).unwrap();
        let err = validate_signed_pipe_advertisement(&element.to_xml(), w.alice.peer_id(), &trust())
            .unwrap_err();
        assert!(matches!(err, OverlayError::SecurityViolation(_)));
    }

    #[test]
    fn credential_key_mismatch_is_rejected() {
        // A broker-issued credential whose subject id is Alice but whose key
        // is Mallory's: the CBID binding check fails even though the chain
        // verifies.
        let w = world();
        let bad_binding = Credential::issue(
            CredentialRole::Client,
            "alice",
            w.alice.peer_id(),
            w.mallory.public_key().clone(),
            "broker-1",
            u64::MAX,
            w.broker_identity.private_key(),
        )
        .unwrap();
        let mut element = alice_pipe().to_element();
        dsig::sign_element(&mut element, w.mallory.private_key(), &bad_binding.to_bytes()).unwrap();
        let err = validate_signed_pipe_advertisement(&element.to_xml(), w.alice.peer_id(), &trust())
            .unwrap_err();
        assert!(err.to_string().contains("subject identifier"));
    }

    #[test]
    fn wrong_expected_owner_is_rejected() {
        let w = world();
        let xml = signed_pipe_advertisement(&alice_pipe(), &w.alice, &w.alice_credential).unwrap();
        assert!(validate_signed_pipe_advertisement(&xml, w.mallory.peer_id(), &trust()).is_err());
    }

    #[test]
    fn garbage_key_info_is_rejected() {
        let w = world();
        let mut element = alice_pipe().to_element();
        dsig::sign_element(&mut element, w.alice.private_key(), b"not a credential").unwrap();
        let err = validate_signed_pipe_advertisement(&element.to_xml(), w.alice.peer_id(), &trust())
            .unwrap_err();
        assert!(matches!(err, OverlayError::SecurityViolation(_)));
    }
}
