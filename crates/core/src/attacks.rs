//! Programmable adversaries.
//!
//! Section 2.3 of the paper lists the threats the plain JXTA-Overlay is
//! exposed to: eavesdropping of transmitted data (including the clear-text
//! username and password), advertisement forgery by legitimate users, and
//! fake brokers reached through traffic redirection (e.g. DNS spoofing).
//! The paper argues informally that the secure primitives defeat them; this
//! module makes those arguments *testable* by implementing each adversary
//! against the simulated network:
//!
//! * [`Eavesdropper`] — records every payload crossing the network and can be
//!   asked whether a given byte string (e.g. a password) was visible.
//! * [`LoginReplayAttacker`] — captures login traffic and replays it later,
//!   the attack `secureLogin`'s session identifier defeats.
//! * [`RedirectToFakeBroker`] — redirects all traffic addressed to the real
//!   broker towards a rogue peer, modelling DNS spoofing.
//! * [`FakeBroker`] — the rogue peer itself: it happily answers `connect`
//!   and `secureConnection` requests with a self-made credential, which a
//!   plain client accepts and a secure client rejects.
//!
//! With a broker *federation*, the attack surface grows by the inter-broker
//! links, which group-security work on structured overlays shows must be
//! re-validated separately: a message that was safe client→broker may become
//! attackable while transiting the backbone.  The edge-targeting adversaries
//! model that:
//!
//! * [`InterBrokerReplayAttacker`] — captures gossip/relay traffic on a
//!   specific broker–broker edge and re-injects it later (the per-origin
//!   sequence numbers of the federation protocol defeat it).
//! * [`EdgeAdversary`] — redirects, tampers with or drops traffic on one
//!   directed edge only, leaving everything else untouched (a compromised
//!   backbone router between two brokers).

use crate::credential::{Credential, CredentialRole};
use crate::identity::PeerIdentity;
use jxta_crypto::drbg::HmacDrbg;
use jxta_overlay::net::{Adversary, NetMessage, SimNetwork, Verdict};
use jxta_overlay::{Message, MessageKind, PeerId};
use parking_lot::Mutex;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Eavesdropper
// ----------------------------------------------------------------------

/// A passive adversary that records every payload it sees.
pub struct Eavesdropper {
    captured: Mutex<Vec<Vec<u8>>>,
}

impl Default for Eavesdropper {
    fn default() -> Self {
        Eavesdropper {
            captured: Mutex::with_class("attacks.captured", Vec::new()),
        }
    }
}

impl Eavesdropper {
    /// Creates an eavesdropper.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of messages observed.
    pub fn observed_count(&self) -> usize {
        self.captured.lock().len()
    }

    /// Returns `true` if `needle` appears anywhere in the captured traffic —
    /// used to show that the plain `login` leaks the password while
    /// `secureLogin` does not.
    pub fn saw_bytes(&self, needle: &[u8]) -> bool {
        if needle.is_empty() {
            return false;
        }
        self.captured
            .lock()
            .iter()
            .any(|payload| payload.windows(needle.len()).any(|w| w == needle))
    }

    /// Convenience for textual needles.
    pub fn saw_text(&self, needle: &str) -> bool {
        self.saw_bytes(needle.as_bytes())
    }

    /// Total bytes captured.
    pub fn bytes_captured(&self) -> usize {
        self.captured.lock().iter().map(|p| p.len()).sum()
    }
}

impl Adversary for Eavesdropper {
    fn observe(&self, message: &NetMessage) {
        self.captured.lock().push(message.payload.clone());
    }
}

// ----------------------------------------------------------------------
// Replay attacker
// ----------------------------------------------------------------------

/// Captures messages of one kind and can replay the first one on demand.
pub struct LoginReplayAttacker {
    kind: MessageKind,
    captured: Mutex<Option<NetMessage>>,
}

impl LoginReplayAttacker {
    /// Creates an attacker interested in messages of `kind` (typically
    /// [`MessageKind::LoginRequest`] or [`MessageKind::SecureLoginRequest`]).
    pub fn new(kind: MessageKind) -> Arc<Self> {
        Arc::new(LoginReplayAttacker {
            kind,
            captured: Mutex::with_class("attacks.captured", None),
        })
    }

    /// Returns `true` once a matching message has been captured.
    pub fn has_capture(&self) -> bool {
        self.captured.lock().is_some()
    }

    /// The captured message, if any.
    pub fn capture(&self) -> Option<NetMessage> {
        self.captured.lock().clone()
    }

    /// Re-injects the captured message into the network, optionally
    /// impersonating a different sender at the transport level.
    ///
    /// Returns `false` when nothing was captured yet.
    pub fn replay(&self, network: &SimNetwork, impersonate_as: Option<PeerId>) -> bool {
        let Some(captured) = self.capture() else {
            return false;
        };
        let from = impersonate_as.unwrap_or(captured.from);
        network.send(from, captured.to, captured.payload).is_ok()
    }
}

impl Adversary for LoginReplayAttacker {
    fn observe(&self, message: &NetMessage) {
        let mut slot = self.captured.lock();
        if slot.is_some() {
            return;
        }
        if let Ok(parsed) = Message::from_bytes(&message.payload) {
            if parsed.kind == self.kind {
                *slot = Some(message.clone());
            }
        }
    }
}

// ----------------------------------------------------------------------
// Inter-broker (backbone) adversaries
// ----------------------------------------------------------------------

/// Captures inter-broker traffic of one [`MessageKind`] crossing the
/// directed `from → to` edge and can re-inject the first captured message
/// later, optionally spoofing the transport-level sender.
///
/// Used to show that replays on the *broker–broker* links are detected: the
/// federation protocol's per-origin sequence numbers make the receiving
/// broker reject the duplicate (`rejected_replayed` in its
/// [`jxta_overlay::metrics::FederationStats`]).
pub struct InterBrokerReplayAttacker {
    edge: (PeerId, PeerId),
    kind: MessageKind,
    captured: Mutex<Option<NetMessage>>,
}

impl InterBrokerReplayAttacker {
    /// Creates an attacker sitting on the `from → to` backbone edge,
    /// interested in messages of `kind` (typically
    /// [`MessageKind::BrokerSync`] or [`MessageKind::BrokerRelay`]).
    pub fn new(from: PeerId, to: PeerId, kind: MessageKind) -> Arc<Self> {
        Arc::new(InterBrokerReplayAttacker {
            edge: (from, to),
            kind,
            captured: Mutex::with_class("attacks.captured", None),
        })
    }

    /// Returns `true` once a matching message has been captured.
    pub fn has_capture(&self) -> bool {
        self.captured.lock().is_some()
    }

    /// The captured message, if any.
    pub fn capture(&self) -> Option<NetMessage> {
        self.captured.lock().clone()
    }

    /// Re-injects the captured message, optionally impersonating a different
    /// transport-level sender.  Returns `false` when nothing was captured.
    pub fn replay(&self, network: &SimNetwork, impersonate_as: Option<PeerId>) -> bool {
        let Some(captured) = self.capture() else {
            return false;
        };
        let from = impersonate_as.unwrap_or(captured.from);
        network.send(from, captured.to, captured.payload).is_ok()
    }
}

impl Adversary for InterBrokerReplayAttacker {
    fn observe(&self, message: &NetMessage) {
        if (message.from, message.to) != self.edge {
            return;
        }
        let mut slot = self.captured.lock();
        if slot.is_some() {
            return;
        }
        if let Ok(parsed) = Message::from_bytes(&message.payload) {
            if parsed.kind == self.kind {
                *slot = Some(message.clone());
            }
        }
    }
}

/// What an [`EdgeAdversary`] does with the traffic on its edge.
enum EdgeBehavior {
    /// Deliver to a rogue peer instead of the real destination.
    Redirect(PeerId),
    /// Flip a byte in the middle of every payload.
    Tamper,
    /// Silently drop.
    Drop,
}

/// An adversary controlling exactly one directed edge of the network —
/// a compromised router between two brokers.  All other traffic flows
/// untouched.
pub struct EdgeAdversary {
    edge: (PeerId, PeerId),
    behavior: EdgeBehavior,
    intercepted: Mutex<u64>,
}

impl EdgeAdversary {
    /// Redirects everything on `from → to` towards `rogue`.
    pub fn redirect(from: PeerId, to: PeerId, rogue: PeerId) -> Arc<Self> {
        Arc::new(EdgeAdversary {
            edge: (from, to),
            behavior: EdgeBehavior::Redirect(rogue),
            intercepted: Mutex::with_class("attacks.intercepted", 0),
        })
    }

    /// Corrupts every payload on `from → to`.
    pub fn tamper(from: PeerId, to: PeerId) -> Arc<Self> {
        Arc::new(EdgeAdversary {
            edge: (from, to),
            behavior: EdgeBehavior::Tamper,
            intercepted: Mutex::with_class("attacks.intercepted", 0),
        })
    }

    /// Drops every message on `from → to`.
    pub fn drop_all(from: PeerId, to: PeerId) -> Arc<Self> {
        Arc::new(EdgeAdversary {
            edge: (from, to),
            behavior: EdgeBehavior::Drop,
            intercepted: Mutex::with_class("attacks.intercepted", 0),
        })
    }

    /// Number of messages this adversary acted upon.
    pub fn intercepted_count(&self) -> u64 {
        *self.intercepted.lock()
    }
}

impl Adversary for EdgeAdversary {
    fn intercept(&self, message: &NetMessage) -> Verdict {
        if (message.from, message.to) != self.edge {
            return Verdict::Deliver;
        }
        *self.intercepted.lock() += 1;
        match &self.behavior {
            EdgeBehavior::Redirect(rogue) => Verdict::Redirect(*rogue),
            EdgeBehavior::Tamper => {
                let mut forged = message.payload.clone();
                let idx = forged.len() / 2;
                if let Some(byte) = forged.get_mut(idx) {
                    *byte ^= 0xff;
                }
                Verdict::Tamper(forged)
            }
            EdgeBehavior::Drop => Verdict::Drop,
        }
    }
}

// ----------------------------------------------------------------------
// Traffic redirection and the fake broker
// ----------------------------------------------------------------------

/// Redirects every message addressed to `victim` towards `rogue`, modelling
/// DNS spoofing of the broker's well-known name.
pub struct RedirectToFakeBroker {
    victim: PeerId,
    rogue: PeerId,
}

impl RedirectToFakeBroker {
    /// Creates the redirection adversary.
    pub fn new(victim: PeerId, rogue: PeerId) -> Arc<Self> {
        Arc::new(RedirectToFakeBroker { victim, rogue })
    }
}

impl Adversary for RedirectToFakeBroker {
    fn intercept(&self, message: &NetMessage) -> Verdict {
        if message.to == self.victim {
            Verdict::Redirect(self.rogue)
        } else {
            Verdict::Deliver
        }
    }
}

/// A rogue peer that pretends to be a broker.
///
/// It answers plain `connect` requests convincingly (a plain client has no
/// way to notice) and answers `secureConnection` challenges with a
/// self-issued "broker" credential, which the secure client rejects because
/// the credential does not chain to the administrator.
pub struct FakeBroker {
    identity: PeerIdentity,
    credential: Credential,
    /// Username/password pairs harvested from plain logins.
    harvested: Mutex<Vec<(String, String)>>,
}

impl FakeBroker {
    /// Creates the fake broker with a self-issued credential and registers it
    /// on the network, spawning its answering thread.
    pub fn spawn(network: &Arc<SimNetwork>, seed: u64, key_bits: usize) -> Arc<Self> {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let identity = PeerIdentity::generate(&mut rng, key_bits).expect("fake broker keys");
        // Self-issued "broker" credential: mallory vouching for herself.
        let credential = Credential::issue(
            CredentialRole::Broker,
            "totally-legit-broker",
            identity.peer_id(),
            identity.public_key().clone(),
            "totally-legit-admin",
            u64::MAX,
            identity.private_key(),
        )
        .expect("fake broker credential");
        let fake = Arc::new(FakeBroker {
            identity,
            credential,
            harvested: Mutex::with_class("attacks.harvested", Vec::new()),
        });

        let receiver = network.register(fake.id());
        let network = Arc::clone(network);
        let this = Arc::clone(&fake);
        std::thread::Builder::new()
            .name("fake-broker".to_string())
            .spawn(move || {
                while let Ok(net_message) = receiver.recv() {
                    if let Ok(message) = Message::from_bytes(&net_message.payload) {
                        if let Some(response) = this.answer(&message) {
                            let _ = network.send(this.id(), net_message.from, response.to_bytes());
                        }
                    }
                }
            })
            .expect("failed to spawn fake broker thread");
        fake
    }

    /// The rogue peer's identifier.
    pub fn id(&self) -> PeerId {
        self.identity.peer_id()
    }

    /// Credentials (username/password pairs) harvested from plain-text logins
    /// that were redirected to this rogue broker.
    pub fn harvested_credentials(&self) -> Vec<(String, String)> {
        self.harvested.lock().clone()
    }

    fn answer(&self, message: &Message) -> Option<Message> {
        match message.kind {
            MessageKind::ConnectRequest => Some(
                Message::new(MessageKind::ConnectResponse, self.id(), message.request_id)
                    .with_str("status", "ok")
                    .with_str("broker-name", "broker-1"),
            ),
            MessageKind::LoginRequest => {
                // Harvest the clear-text credentials, then pretend everything
                // is fine.
                let username = message.element_str("username").unwrap_or_default();
                let password = message.element_str("password").unwrap_or_default();
                self.harvested.lock().push((username.clone(), password));
                Some(
                    Message::new(MessageKind::LoginResponse, self.id(), message.request_id)
                        .with_str("status", "ok")
                        .with_str("username", &username)
                        .with_str("groups", "everything"),
                )
            }
            MessageKind::SecureConnectChallenge => {
                let challenge = message.element("challenge").unwrap_or_default().to_vec();
                let signature = self.identity.sign(&challenge).ok()?;
                Some(
                    Message::new(
                        MessageKind::SecureConnectResponse,
                        self.id(),
                        message.request_id,
                    )
                    .with_str("status", "ok")
                    .with_element("sid", vec![0u8; 32])
                    .with_element("challenge-signature", signature)
                    .with_element("broker-credential", self.credential.to_bytes()),
                )
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SecureNetworkBuilder;
    use jxta_overlay::OverlayError;

    #[test]
    fn eavesdropper_sees_plain_login_but_not_secure_login() {
        let mut setup = SecureNetworkBuilder::new(0xEAE5)
            .with_key_bits(512)
            .with_user("alice", "hunter2-secret", &["g"])
            .build();
        let spy = Eavesdropper::new();
        setup.network().set_adversary(spy.clone());

        // Plain login: the password crosses the wire in the clear.
        let mut plain = setup.plain_client("old-client");
        plain.connect(setup.broker_id()).unwrap();
        plain.login("alice", "hunter2-secret").unwrap();
        assert!(spy.saw_text("hunter2-secret"), "plain login leaks the password");
        assert!(spy.observed_count() > 0);
        assert!(spy.bytes_captured() > 0);

        // Secure login: the password never appears on the wire.
        let spy2 = Eavesdropper::new();
        setup.network().set_adversary(spy2.clone());
        let mut secure = setup.secure_client("new-client");
        secure.secure_join(setup.broker_id(), "alice", "hunter2-secret").unwrap();
        assert!(
            !spy2.saw_text("hunter2-secret"),
            "secureLogin must not leak the password"
        );
        assert!(!spy2.saw_bytes(b""), "empty needle never matches");
    }

    #[test]
    fn eavesdropper_sees_plain_chat_but_not_secure_chat() {
        let mut setup = SecureNetworkBuilder::new(0xEAE6)
            .with_key_bits(512)
            .with_user("alice", "pw-a", &["g"])
            .with_user("bob", "pw-b", &["g"])
            .build();
        let group = jxta_overlay::GroupId::new("g");

        // Plain messaging leaks content.
        let spy = Eavesdropper::new();
        setup.network().set_adversary(spy.clone());
        let mut alice = setup.plain_client("alice");
        let mut bob = setup.plain_client("bob");
        alice.connect(setup.broker_id()).unwrap();
        alice.login("alice", "pw-a").unwrap();
        bob.connect(setup.broker_id()).unwrap();
        bob.login("bob", "pw-b").unwrap();
        alice.publish_pipe(&group).unwrap();
        bob.publish_pipe(&group).unwrap();
        alice.send_msg_peer(&group, bob.id(), "meet at midnight").unwrap();
        assert!(spy.saw_text("meet at midnight"));

        // Secure messaging does not.
        let spy2 = Eavesdropper::new();
        setup.network().set_adversary(spy2.clone());
        let mut s_alice = setup.secure_client("s-alice");
        let mut s_bob = setup.secure_client("s-bob");
        s_alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        s_bob.secure_join(setup.broker_id(), "bob", "pw-b").unwrap();
        s_alice.publish_secure_pipe(&group).unwrap();
        s_bob.publish_secure_pipe(&group).unwrap();
        s_alice.secure_msg_peer(&group, s_bob.id(), "meet at midnight").unwrap();
        let received = s_bob.receive_secure_messages().unwrap();
        assert_eq!(received[0].text, "meet at midnight");
        assert!(!spy2.saw_text("meet at midnight"));
    }

    #[test]
    fn replayed_plain_login_succeeds_but_secure_replay_is_rejected() {
        let mut setup = SecureNetworkBuilder::new(0x5E71A)
            .with_key_bits(512)
            .with_user("alice", "pw-a", &["g"])
            .build();

        // Plain login capture and replay: the broker cannot tell the replay
        // apart and creates a session for the attacker-controlled sender.
        let replayer = LoginReplayAttacker::new(MessageKind::LoginRequest);
        setup.network().set_adversary(replayer.clone());
        let mut victim = setup.plain_client("victim");
        victim.connect(setup.broker_id()).unwrap();
        victim.login("alice", "pw-a").unwrap();
        assert!(replayer.has_capture());
        setup.network().clear_adversary();
        let sessions_before = setup.broker().session_count();
        assert!(replayer.replay(setup.network(), None));
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert_eq!(
            setup.broker().session_count(),
            sessions_before,
            "replaying re-authenticates the same peer id (session already present)"
        );

        // Secure login capture and replay: rejected because the session
        // identifier was consumed.
        let replayer2 = LoginReplayAttacker::new(MessageKind::SecureLoginRequest);
        setup.network().set_adversary(replayer2.clone());
        let mut secure_victim = setup.secure_client("secure-victim");
        secure_victim.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        assert!(replayer2.has_capture());
        setup.network().clear_adversary();

        let rejected_before = setup.broker_extension().stats().replays_rejected;
        assert!(replayer2.replay(setup.network(), None));
        // Give the broker thread a moment to process the injected message.
        let deadline = jxta_overlay::clock::now() + std::time::Duration::from_secs(2);
        while setup.broker_extension().stats().replays_rejected == rejected_before
            && jxta_overlay::clock::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(
            setup.broker_extension().stats().replays_rejected,
            rejected_before + 1,
            "the broker must reject the replayed secureLogin"
        );
    }

    #[test]
    fn fake_broker_fools_plain_client_but_not_secure_client() {
        let mut setup = SecureNetworkBuilder::new(0xFAB)
            .with_key_bits(512)
            .with_user("alice", "pw-a", &["g"])
            .build();
        let fake = FakeBroker::spawn(setup.network(), 0xBAD5EED, 512);
        let redirect = RedirectToFakeBroker::new(setup.broker_id(), fake.id());
        setup.network().set_adversary(redirect);

        // The plain client connects and "logs in" against the rogue broker,
        // handing over the password.
        let mut plain = setup.plain_client("naive");
        plain.connect(setup.broker_id()).unwrap();
        plain.login("alice", "pw-a").unwrap();
        assert!(plain.is_logged_in(), "the plain client cannot tell");
        assert_eq!(
            fake.harvested_credentials(),
            vec![("alice".to_string(), "pw-a".to_string())],
            "the rogue broker harvested the clear-text password"
        );

        // The secure client detects the rogue broker during secureConnection
        // and aborts before any secret is sent.
        let mut secure = setup.secure_client("careful");
        let err = secure.secure_connection(setup.broker_id()).unwrap_err();
        assert!(matches!(err, OverlayError::SecurityViolation(_)), "{err}");
        assert!(secure.broker_credential().is_none());
        assert!(fake.harvested_credentials().len() == 1, "nothing new harvested");

        setup.network().clear_adversary();
    }

    #[test]
    fn fake_broker_ignores_unknown_kinds() {
        let setup = SecureNetworkBuilder::new(0xFAC).with_key_bits(512).build();
        let fake = FakeBroker::spawn(setup.network(), 1, 512);
        assert!(fake
            .answer(&Message::new(MessageKind::PeerText, fake.id(), 1))
            .is_none());
    }
}
