//! The JXTA-Overlay administrator (trust anchor).
//!
//! System setup (paper §4.1): the administrator `Adm` generates a key pair
//! and a self-signed credential `Cred^Adm_Adm`, "thus acting as trusted party
//! by all peers.  This is a sensible stance, since the system administrator
//! is the entity that grants access to the JXTA-Overlay network by creating
//! legitimate usernames and passwords into the database."
//!
//! The administrator provisions each broker `Br_i` with a credential
//! `Cred^Adm_{Br_i}` over the broker's public key, and registers end users in
//! the central [`jxta_overlay::UserDatabase`].

use crate::credential::{Credential, CredentialRole, RevocationList};
use crate::identity::PeerIdentity;
use jxta_crypto::rsa::RsaPublicKey;
use jxta_crypto::CryptoError;
use jxta_overlay::{GroupId, PeerId, UserDatabase};
use rand::RngCore;

/// Default credential lifetime handed out by the administrator and brokers
/// (in seconds relative to the deployment epoch).
pub const DEFAULT_CREDENTIAL_LIFETIME: u64 = 30 * 24 * 3600;

/// The administrator of a JXTA-Overlay deployment.
pub struct Administrator {
    identity: PeerIdentity,
    credential: Credential,
    name: String,
}

impl Administrator {
    /// Creates the administrator: generates its key pair and self-signed
    /// credential.
    pub fn new<R: RngCore + ?Sized>(
        rng: &mut R,
        name: &str,
        key_bits: usize,
    ) -> Result<Self, CryptoError> {
        let identity = PeerIdentity::generate(rng, key_bits)?;
        let credential = Credential::self_signed(
            CredentialRole::Administrator,
            name,
            identity.peer_id(),
            identity.public_key().clone(),
            identity.private_key(),
            u64::MAX,
        )?;
        Ok(Administrator {
            identity,
            credential,
            name: name.to_string(),
        })
    }

    /// The administrator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The administrator's identity.
    pub fn identity(&self) -> &PeerIdentity {
        &self.identity
    }

    /// The administrator's public key (`PK_Adm`).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.identity.public_key()
    }

    /// The self-signed trust-anchor credential (`Cred^Adm_Adm`), which is
    /// copied to every client peer at deployment time.
    pub fn credential(&self) -> &Credential {
        &self.credential
    }

    /// Provisions a broker: issues `Cred^Adm_Br` over the broker's public
    /// key.
    pub fn issue_broker_credential(
        &self,
        broker_name: &str,
        broker_id: PeerId,
        broker_key: &RsaPublicKey,
        expires_at: u64,
    ) -> Result<Credential, CryptoError> {
        Credential::issue(
            CredentialRole::Broker,
            broker_name,
            broker_id,
            broker_key.clone(),
            &self.name,
            expires_at,
            self.identity.private_key(),
        )
    }

    /// Issues a signed revocation list naming subjects whose credentials
    /// brokers must stop honouring.  The administrator pushes the list to
    /// every broker (see `SecureBrokerExtension::install_revocation_list`);
    /// brokers merge successive lists.
    pub fn issue_revocation_list(
        &self,
        revoked_ids: &[PeerId],
        revoked_names: &[&str],
        issued_at: u64,
    ) -> Result<RevocationList, CryptoError> {
        RevocationList::issue(
            revoked_ids,
            revoked_names,
            issued_at,
            self.identity.private_key(),
        )
    }

    /// Registers an end user in the central database (the administrative task
    /// the paper assumes: "some administrator takes care of properly
    /// configuring the database, registering new end-users").
    pub fn register_user<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        database: &UserDatabase,
        username: &str,
        password: &str,
        groups: &[GroupId],
    ) -> bool {
        database.register_user(rng, username, password, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    #[test]
    fn administrator_credential_is_self_signed() {
        let mut rng = HmacDrbg::from_seed_u64(0xAD);
        let admin = Administrator::new(&mut rng, "net-admin", 512).unwrap();
        admin.credential().verify_self_signed().unwrap();
        assert_eq!(admin.credential().role, CredentialRole::Administrator);
        assert_eq!(admin.credential().subject_name, "net-admin");
        assert_eq!(admin.name(), "net-admin");
        assert!(admin.credential().binds_key_to_subject());
    }

    #[test]
    fn broker_credential_chain() {
        let mut rng = HmacDrbg::from_seed_u64(0xAE);
        let admin = Administrator::new(&mut rng, "admin", 512).unwrap();
        let broker_identity = PeerIdentity::generate(&mut rng, 512).unwrap();
        let broker_cred = admin
            .issue_broker_credential(
                "fit-broker",
                broker_identity.peer_id(),
                broker_identity.public_key(),
                1_000,
            )
            .unwrap();
        // The broker credential verifies against the admin public key
        // (contained in the admin's credential) — exactly what a client does
        // in secureConnection step 6.
        broker_cred.verify(&admin.credential().public_key).unwrap();
        assert_eq!(broker_cred.role, CredentialRole::Broker);
        assert!(broker_cred.binds_key_to_subject());
        // A credential issued by someone else does not verify.
        let impostor = Administrator::new(&mut rng, "impostor", 512).unwrap();
        assert!(broker_cred.verify(impostor.public_key()).is_err());
    }

    #[test]
    fn register_user_delegates_to_database() {
        let mut rng = HmacDrbg::from_seed_u64(0xAF);
        let admin = Administrator::new(&mut rng, "admin", 512).unwrap();
        let db = UserDatabase::new();
        assert!(admin.register_user(&mut rng, &db, "alice", "pw", &[GroupId::new("g")]));
        assert!(!admin.register_user(&mut rng, &db, "alice", "pw2", &[]));
        assert!(db.verify("alice", "pw"));
    }

    #[test]
    fn identity_accessors() {
        let mut rng = HmacDrbg::from_seed_u64(0xB0);
        let admin = Administrator::new(&mut rng, "admin", 512).unwrap();
        assert_eq!(admin.identity().public_key(), admin.public_key());
    }
}
