//! System setup helpers.
//!
//! Assembling a secured JXTA-Overlay deployment involves several steps that
//! the paper's §4.1 describes: the administrator generates its key pair and
//! self-signed credential, each broker generates a key pair and receives an
//! admin-issued credential, end users are registered in the central database,
//! and every client peer is provisioned with a copy of the administrator
//! credential.  [`SecureNetworkBuilder`] performs all of that and hands out
//! ready-to-use [`SecureClient`]s and plain [`ClientPeer`]s, which is what
//! the examples, integration tests and the benchmark harness build on.
//!
//! A deployment may span a whole **broker federation**
//! ([`SecureNetworkBuilder::with_broker_count`]): every broker gets its own
//! identity and admin-issued credential, so a secure client can run
//! `secureConnection`/`secureLogin` against whichever broker it lands on and
//! verify that broker's credential against the same administrator trust
//! anchor.

use crate::admin::Administrator;
use crate::broker_ext::SecureBrokerExtension;
use crate::identity::PeerIdentity;
use crate::secure_client::SecureClient;
use jxta_crypto::drbg::HmacDrbg;
use jxta_overlay::broker::{Broker, BrokerConfig};
use jxta_overlay::client::{ClientConfig, ClientPeer};
use jxta_overlay::federation::BrokerNetwork;
use jxta_overlay::net::LinkModel;
use jxta_overlay::{GroupId, PeerId, SimNetwork, UserDatabase};
use rand::RngCore;
use std::sync::Arc;
use std::time::Duration;

/// Builder for a complete secured JXTA-Overlay deployment.
pub struct SecureNetworkBuilder {
    seed: u64,
    key_bits: usize,
    link: LinkModel,
    users: Vec<(String, String, Vec<GroupId>)>,
    broker_names: Vec<String>,
    replication_factor: Option<usize>,
    repair_interval: Option<Duration>,
    request_timeout: Duration,
    verify_workers: usize,
    inbox_capacity: Option<usize>,
    apply_lanes: Option<usize>,
    verify_cache_capacity: Option<usize>,
}

impl SecureNetworkBuilder {
    /// Starts a builder.  `seed` makes the whole deployment (keys, session
    /// identifiers, peer identifiers) deterministic.
    pub fn new(seed: u64) -> Self {
        SecureNetworkBuilder {
            seed,
            key_bits: crate::identity::DEFAULT_KEY_BITS,
            link: LinkModel::ideal(),
            users: Vec::new(),
            broker_names: vec!["broker-1".to_string()],
            replication_factor: None,
            repair_interval: None,
            request_timeout: Duration::from_secs(5),
            verify_workers: 0,
            inbox_capacity: None,
            apply_lanes: None,
            verify_cache_capacity: None,
        }
    }

    /// Runs every broker's ingress as a staged pipeline with `workers`
    /// parallel verify workers (default 0: the classic single event-loop
    /// thread).  See [`jxta_overlay::broker::BrokerConfig::verify_workers`].
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers;
        self
    }

    /// Bounds every broker's network inbox at `capacity` queued messages
    /// (default: unbounded), turning overload into explicit sender
    /// backpressure instead of unbounded queue growth.
    pub fn with_inbox_capacity(mut self, capacity: usize) -> Self {
        self.inbox_capacity = Some(capacity);
        self
    }

    /// Pins the number of partitioned apply lanes each pipelined broker
    /// runs (default: one lane per verify worker).  See
    /// [`jxta_overlay::broker::BrokerConfig::apply_lanes`].
    pub fn with_apply_lanes(mut self, lanes: usize) -> Self {
        self.apply_lanes = Some(lanes);
        self
    }

    /// Sets the capacity of each broker's verified-signature cache; `0`
    /// disables caching (every signature verification runs RSA — the
    /// ablation baseline).  Default: the cache is enabled at
    /// [`jxta_crypto::sigcache::DEFAULT_SIG_CACHE_CAPACITY`].
    pub fn with_verify_cache_capacity(mut self, capacity: usize) -> Self {
        self.verify_cache_capacity = Some(capacity);
        self
    }

    /// Runs an anti-entropy repair round on every broker each `interval`:
    /// replica divergence caused by lost backbone gossip (an adversarial
    /// drop) then heals within a bounded number of intervals instead of
    /// persisting forever.  Off by default — tests that assert on
    /// *detection* of divergence rely on the state staying divergent.
    pub fn with_repair_interval(mut self, interval: Duration) -> Self {
        self.repair_interval = Some(interval);
        self
    }

    /// Shards the federation's advertisement index and group membership
    /// across the consistent-hash ring with `k` replicas per entry, instead
    /// of fully replicating them to every broker (the default).  The
    /// peer→home routing table stays fully replicated either way.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero — an entry needs at least one replica.
    pub fn with_replication_factor(mut self, k: usize) -> Self {
        assert!(k > 0, "an entry needs at least one replica");
        self.replication_factor = Some(k);
        self
    }

    /// Sets the RSA modulus size used by every identity (default 1024 bits).
    pub fn with_key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Sets the link model of the simulated network (default: ideal link).
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Registers an end user with the given group memberships.
    pub fn with_user(mut self, username: &str, password: &str, groups: &[&str]) -> Self {
        self.users.push((
            username.to_string(),
            password.to_string(),
            groups.iter().map(|g| GroupId::new(*g)).collect(),
        ));
        self
    }

    /// Sets the first broker's well-known name.
    pub fn with_broker_name(mut self, name: &str) -> Self {
        self.broker_names[0] = name.to_string();
        self
    }

    /// Deploys a federation of `count` brokers, interconnected into a
    /// full-mesh backbone (default: 1).  Names already set (e.g. via
    /// [`SecureNetworkBuilder::with_broker_name`], in either call order) are
    /// preserved; additional brokers get default `broker-N` names.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn with_broker_count(mut self, count: usize) -> Self {
        assert!(count > 0, "a deployment needs at least one broker");
        self.broker_names.truncate(count);
        for i in self.broker_names.len()..count {
            self.broker_names.push(format!("broker-{}", i + 1));
        }
        self
    }

    /// Deploys one broker per name, interconnected into a full-mesh
    /// backbone.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn with_brokers(mut self, names: &[&str]) -> Self {
        assert!(!names.is_empty(), "a deployment needs at least one broker");
        self.broker_names = names.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Sets the request timeout used by the clients this setup creates.
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Performs the system setup and spawns the broker.
    pub fn build(self) -> SecureNetwork {
        let mut rng = HmacDrbg::from_seed_u64(self.seed);
        let network = SimNetwork::new(self.link);
        let database = Arc::new(UserDatabase::new());

        // Administrator: key pair + self-signed credential + user registry.
        let admin = Administrator::new(&mut rng, "jxta-overlay-admin", self.key_bits)
            .expect("administrator key generation");
        for (username, password, groups) in &self.users {
            admin.register_user(&mut rng, &database, username, password, groups);
        }

        // Brokers: one key pair + admin-issued credential + secure extension
        // each; the federation module interconnects them into a full mesh.
        let mut brokers = Vec::with_capacity(self.broker_names.len());
        let mut extensions = Vec::with_capacity(self.broker_names.len());
        for name in &self.broker_names {
            let broker_identity =
                PeerIdentity::generate(&mut rng, self.key_bits).expect("broker key generation");
            let broker_credential = admin
                .issue_broker_credential(
                    name,
                    broker_identity.peer_id(),
                    broker_identity.public_key(),
                    crate::admin::DEFAULT_CREDENTIAL_LIFETIME,
                )
                .expect("broker credential issuance");
            let broker = Broker::new(
                broker_identity.peer_id(),
                BrokerConfig {
                    name: name.clone(),
                    replication_factor: self.replication_factor,
                    verify_workers: self.verify_workers,
                    inbox_capacity: self.inbox_capacity,
                    apply_lanes: self.apply_lanes,
                    ..BrokerConfig::default()
                },
                Arc::clone(&network),
                Arc::clone(&database),
            );
            let extension = Arc::new(SecureBrokerExtension::new(
                broker_identity,
                broker_credential,
                crate::admin::DEFAULT_CREDENTIAL_LIFETIME,
                rng.next_u64(),
            ));
            // Brokers verify admin-pushed revocation lists against this key.
            extension.set_admin_public_key(admin.public_key().clone());
            if let Some(capacity) = self.verify_cache_capacity {
                extension.set_verify_cache_capacity(capacity);
            }
            broker.set_extension(extension.clone());
            brokers.push(broker);
            extensions.push(extension);
        }
        // Every broker beacons its peers' credentials to connecting clients.
        for (i, extension) in extensions.iter().enumerate() {
            for (j, other) in extensions.iter().enumerate() {
                if i != j {
                    extension.add_peer_broker_credential(other.credential().clone());
                }
            }
        }
        let federation = BrokerNetwork::spawn_with_repair(brokers, self.repair_interval);

        SecureNetwork {
            network,
            database,
            admin,
            federation,
            extensions,
            rng,
            key_bits: self.key_bits,
            request_timeout: self.request_timeout,
            verify_cache_capacity: self.verify_cache_capacity,
        }
    }
}

/// A running secured deployment: network, central database, administrator and
/// a federation of one or more brokers with the secure extension installed.
pub struct SecureNetwork {
    network: Arc<SimNetwork>,
    database: Arc<UserDatabase>,
    admin: Administrator,
    federation: BrokerNetwork,
    extensions: Vec<Arc<SecureBrokerExtension>>,
    rng: HmacDrbg,
    key_bits: usize,
    request_timeout: Duration,
    verify_cache_capacity: Option<usize>,
}

impl SecureNetwork {
    /// The simulated network.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The central user database.
    pub fn database(&self) -> &Arc<UserDatabase> {
        &self.database
    }

    /// The administrator (trust anchor).
    pub fn admin(&self) -> &Administrator {
        &self.admin
    }

    /// The first broker's peer identifier (its well-known address).
    pub fn broker_id(&self) -> PeerId {
        self.federation.id(0)
    }

    /// The first running broker.
    pub fn broker(&self) -> &Arc<Broker> {
        self.federation.broker(0)
    }

    /// The first broker's secure extension (exposes its statistics).
    pub fn broker_extension(&self) -> &Arc<SecureBrokerExtension> {
        &self.extensions[0]
    }

    /// Number of brokers in the deployment's federation.
    pub fn broker_count(&self) -> usize {
        self.federation.len()
    }

    /// The `index`-th broker's peer identifier.
    pub fn broker_id_at(&self, index: usize) -> PeerId {
        self.federation.id(index)
    }

    /// The `index`-th running broker.
    pub fn broker_at(&self, index: usize) -> &Arc<Broker> {
        self.federation.broker(index)
    }

    /// The `index`-th broker's secure extension.
    pub fn broker_extension_at(&self, index: usize) -> &Arc<SecureBrokerExtension> {
        &self.extensions[index]
    }

    /// The broker federation backbone.
    pub fn federation(&self) -> &BrokerNetwork {
        &self.federation
    }

    /// The RSA key size used by this deployment's identities.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn client_config(&self, nickname: &str) -> ClientConfig {
        ClientConfig {
            nickname: nickname.to_string(),
            request_timeout: self.request_timeout,
        }
    }

    /// Creates a plain (insecure) client peer — the baseline of every
    /// experiment.
    pub fn plain_client(&mut self, nickname: &str) -> ClientPeer {
        ClientPeer::with_random_id(
            Arc::clone(&self.network),
            self.client_config(nickname),
            &mut self.rng,
        )
    }

    /// Creates a secure client peer: generates its boot-time key pair and
    /// provisions it with the administrator credential.
    pub fn secure_client(&mut self, nickname: &str) -> SecureClient {
        let identity = PeerIdentity::generate(&mut self.rng, self.key_bits)
            .expect("client key generation");
        self.secure_client_with_identity(nickname, identity)
    }

    /// Creates a secure client from an existing identity (used when the same
    /// key material must be reused across runs).
    pub fn secure_client_with_identity(
        &mut self,
        nickname: &str,
        identity: PeerIdentity,
    ) -> SecureClient {
        SecureClient::new(
            Arc::clone(&self.network),
            self.client_config(nickname),
            identity,
            self.admin.credential().clone(),
            self.rng.next_u64(),
        )
        .expect("secure client construction")
    }

    /// Sets the deployment clock on every broker (seconds since the epoch
    /// credential lifetimes are expressed in).  The simulation advances time
    /// explicitly; brokers evaluate credential expiry against this clock.
    pub fn set_time(&self, now: u64) {
        for extension in &self.extensions {
            extension.set_now(now);
        }
    }

    /// Revokes credentials: the administrator issues a signed revocation
    /// list over the given peer identifiers and usernames, installs it on
    /// every *current* broker (in-process — an active network adversary
    /// cannot drop a revocation) and additionally gossips it over the
    /// backbone.  The list is admin-signed, so gossip transit needs no extra
    /// trust, and brokers that join *later* catch up through the
    /// anti-entropy extension section instead of depending on a push made
    /// before they existed.
    pub fn revoke(&self, revoked_ids: &[PeerId], revoked_names: &[&str]) {
        let issued_at = self
            .extensions
            .first()
            .map(|e| e.now())
            .unwrap_or_default();
        let list = self
            .admin
            .issue_revocation_list(revoked_ids, revoked_names, issued_at)
            .expect("revocation list issuance");
        for extension in &self.extensions {
            extension
                .install_revocation_list(&list)
                .expect("revocation list installation");
        }
        self.federation.broker(0).gossip_extension_state();
    }

    /// Admits a new broker into the running deployment: generates its
    /// identity, issues its admin credential, installs a secure extension
    /// (deployment clock, admin key and peer-credential beacons included),
    /// spawns it into the federation full mesh and migrates its shard onto
    /// it.  Prior revocations reach it via the backbone (anti-entropy, or
    /// the next gossiped list) rather than any in-process push.
    ///
    /// Every pre-existing broker then pushes a signed credential-set update
    /// to its *live* clients: peers that ran `secureConnection` before this
    /// admission would otherwise never learn the newcomer's credential and
    /// could not validate advertisements signed under credentials it issues
    /// (clients joining later get the current beacon list anyway).  Returns
    /// the new broker's index.
    pub fn add_broker(&mut self, name: &str) -> usize {
        let identity = PeerIdentity::generate(&mut self.rng, self.key_bits)
            .expect("broker key generation");
        let credential = self
            .admin
            .issue_broker_credential(
                name,
                identity.peer_id(),
                identity.public_key(),
                crate::admin::DEFAULT_CREDENTIAL_LIFETIME,
            )
            .expect("broker credential issuance");
        // The newcomer inherits the deployment's broker configuration
        // (sharding mode, ingress pipeline, inbox bound) with its own name.
        let config = BrokerConfig {
            name: name.to_string(),
            ..self.federation.broker(0).config().clone()
        };
        let broker = Broker::new(
            identity.peer_id(),
            config,
            Arc::clone(&self.network),
            Arc::clone(&self.database),
        );
        let extension = Arc::new(SecureBrokerExtension::new(
            identity,
            credential,
            crate::admin::DEFAULT_CREDENTIAL_LIFETIME,
            self.rng.next_u64(),
        ));
        extension.set_admin_public_key(self.admin.public_key().clone());
        if let Some(capacity) = self.verify_cache_capacity {
            extension.set_verify_cache_capacity(capacity);
        }
        if let Some(first) = self.extensions.first() {
            extension.set_now(first.now());
        }
        for existing in &self.extensions {
            existing.add_peer_broker_credential(extension.credential().clone());
            extension.add_peer_broker_credential(existing.credential().clone());
        }
        broker.set_extension(extension.clone());
        self.extensions.push(extension);
        self.federation.add_broker(broker);
        // Re-beacon the grown credential set to every already-connected
        // client, from its own (authenticated) home broker.
        for (index, existing) in self.extensions.iter().enumerate() {
            if index + 1 == self.extensions.len() {
                continue; // the newcomer has no clients yet
            }
            existing.push_credential_update(self.federation.broker(index));
        }
        self.federation.len() - 1
    }

    /// Removes the `index`-th broker from the running deployment (see
    /// [`BrokerNetwork::remove_broker`]); its extension is dropped with it.
    pub fn remove_broker(&mut self, index: usize) -> Arc<Broker> {
        self.extensions.remove(index);
        self.federation.remove_broker(index)
    }

    /// Registers an additional end user after construction.
    pub fn register_user(&mut self, username: &str, password: &str, groups: &[&str]) -> bool {
        let groups: Vec<GroupId> = groups.iter().map(|g| GroupId::new(*g)).collect();
        self.admin
            .register_user(&mut self.rng, &self.database, username, password, &groups)
    }

    /// Shuts every broker down (otherwise done on drop).
    pub fn shutdown(self) {
        self.federation.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_a_working_deployment() {
        let mut setup = SecureNetworkBuilder::new(1)
            .with_key_bits(512)
            .with_user("alice", "pw", &["g1", "g2"])
            .with_broker_name("fit-broker")
            .build();
        assert_eq!(setup.key_bits(), 512);
        assert!(setup.database().verify("alice", "pw"));
        assert!(setup.network().is_registered(&setup.broker_id()));
        assert_eq!(setup.broker().config().name, "fit-broker");

        // The broker credential chains to the admin.
        setup
            .broker_extension()
            .credential()
            .verify(setup.admin().public_key())
            .unwrap();

        // Secure and plain clients can be created and used.
        let mut secure = setup.secure_client("laptop");
        secure.secure_join(setup.broker_id(), "alice", "pw").unwrap();
        let mut plain = setup.plain_client("old-laptop");
        plain.connect(setup.broker_id()).unwrap();
        plain.login("alice", "pw").unwrap();
        setup.shutdown();
    }

    #[test]
    fn register_user_after_build() {
        let mut setup = SecureNetworkBuilder::new(2).with_key_bits(512).build();
        assert!(setup.register_user("late", "pw", &["g"]));
        assert!(!setup.register_user("late", "pw", &["g"]));
        let mut client = setup.secure_client("late-laptop");
        client.secure_join(setup.broker_id(), "late", "pw").unwrap();
        assert_eq!(client.inner().groups(), vec![GroupId::new("g")]);
    }

    #[test]
    fn deployments_with_same_seed_have_same_broker_identity() {
        let a = SecureNetworkBuilder::new(42).with_key_bits(512).build();
        let b = SecureNetworkBuilder::new(42).with_key_bits(512).build();
        assert_eq!(a.broker_id(), b.broker_id());
        let c = SecureNetworkBuilder::new(43).with_key_bits(512).build();
        assert_ne!(a.broker_id(), c.broker_id());
    }

    #[test]
    fn multi_broker_deployment_federates_and_authenticates_everywhere() {
        let mut setup = SecureNetworkBuilder::new(7)
            .with_key_bits(512)
            .with_broker_count(3)
            .with_user("alice", "pw", &["g"])
            .build();
        assert_eq!(setup.broker_count(), 3);
        let ids: Vec<PeerId> = (0..3).map(|i| setup.broker_id_at(i)).collect();
        assert_eq!(setup.broker_id(), ids[0]);
        assert!(ids.windows(2).all(|w| w[0] != w[1]), "distinct identities");
        for i in 0..3 {
            assert_eq!(setup.broker_at(i).config().name, format!("broker-{}", i + 1));
            assert_eq!(setup.broker_at(i).peer_brokers().len(), 2, "full mesh");
            // Every broker's credential chains to the same administrator.
            setup
                .broker_extension_at(i)
                .credential()
                .verify(setup.admin().public_key())
                .unwrap();
        }

        // A secure client can join at any broker of the federation.
        let broker_b = setup.broker_id_at(1);
        let mut client = setup.secure_client("roaming");
        client.secure_join(broker_b, "alice", "pw").unwrap();
        assert_eq!(client.credential().unwrap().issuer_name, "broker-2");
        assert_eq!(setup.broker_at(1).session_count(), 1);
        assert_eq!(setup.broker_at(0).session_count(), 0);
        setup.shutdown();
    }

    #[test]
    fn named_brokers_are_deployed_in_order() {
        let setup = SecureNetworkBuilder::new(8)
            .with_key_bits(512)
            .with_brokers(&["tokyo", "osaka"])
            .build();
        assert_eq!(setup.broker_count(), 2);
        assert_eq!(setup.broker_at(0).config().name, "tokyo");
        assert_eq!(setup.broker_at(1).config().name, "osaka");
        assert_eq!(setup.federation().ids().len(), 2);
    }

    #[test]
    fn broker_name_and_count_compose_in_either_order() {
        let named_first = SecureNetworkBuilder::new(9)
            .with_key_bits(512)
            .with_broker_name("tokyo")
            .with_broker_count(2)
            .build();
        assert_eq!(named_first.broker_at(0).config().name, "tokyo");
        assert_eq!(named_first.broker_at(1).config().name, "broker-2");

        let count_first = SecureNetworkBuilder::new(9)
            .with_key_bits(512)
            .with_broker_count(2)
            .with_broker_name("tokyo")
            .build();
        assert_eq!(count_first.broker_at(0).config().name, "tokyo");
        assert_eq!(count_first.broker_at(1).config().name, "broker-2");
    }

    #[test]
    fn link_model_is_applied() {
        let setup = SecureNetworkBuilder::new(3)
            .with_key_bits(512)
            .with_link(LinkModel::lan())
            .build();
        assert_eq!(setup.network().link(), LinkModel::lan());
    }
}
