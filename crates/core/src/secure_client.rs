//! The client-side secure primitives.
//!
//! [`SecureClient`] wraps a plain [`ClientPeer`] and adds the paper's secure
//! primitives while keeping the plain ones available (the extension is
//! *transparent*: applications keep calling primitives with the same inputs
//! and outputs, plus a security context managed here):
//!
//! | Paper primitive        | Method |
//! |------------------------|--------|
//! | `secureConnection`     | [`SecureClient::secure_connection`] |
//! | `secureLogin`          | [`SecureClient::secure_login`] |
//! | `secureMsgPeer`        | [`SecureClient::secure_msg_peer`] / [`SecureClient::secure_msg_peer_relayed`] |
//! | `secureMsgPeerGroup`   | [`SecureClient::secure_msg_peer_group`] / [`SecureClient::secure_msg_peer_group_parallel`] |
//!
//! plus the signed-advertisement publication that distributes credentials
//! ([`SecureClient::publish_secure_pipe`]) and the receive path that
//! decrypts, authenticates and surfaces incoming secure messages
//! ([`SecureClient::receive_secure_messages`]).

use crate::broker_ext::{
    credential_update_signed_content, decode_credential_list, login_signed_content,
    message_signed_content,
};
use crate::credential::{Credential, CredentialRole};
use crate::identity::PeerIdentity;
use crate::signed_adv::{
    signed_pipe_advertisement, validate_signed_pipe_advertisement_with, TrustAnchors,
    ValidatedAdvertisement,
};
use jxta_crypto::drbg::HmacDrbg;
use jxta_crypto::envelope::{open_envelope, seal_envelope, Envelope};
use jxta_crypto::rsa::RsaPublicKey;
use jxta_crypto::sigcache::{SigCacheStats, VerifiedSigCache};
use jxta_overlay::advertisement::{Advertisement, PipeAdvertisement};
use jxta_overlay::client::{ClientConfig, ClientEvent, ClientPeer};
use jxta_overlay::metrics::{OperationTiming, Stopwatch};
use jxta_overlay::{GroupId, Message, MessageKind, OverlayError, PeerId, SimNetwork};
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

/// A secure message received and authenticated by
/// [`SecureClient::receive_secure_messages`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedSecureMessage {
    /// The sending peer.
    pub from: PeerId,
    /// The username asserted by the sender's broker-issued credential.
    pub sender_username: String,
    /// Group context.
    pub group: GroupId,
    /// Decrypted message body.
    pub text: String,
}

/// A client peer running the secure extension.
pub struct SecureClient {
    client: ClientPeer,
    identity: PeerIdentity,
    trust: TrustAnchors,
    rng: HmacDrbg,
    /// `Cred^Adm_Br` of the broker we authenticated during secureConnection.
    broker_credential: Option<Credential>,
    /// The single-use session identifier from secureConnection.
    session_id: Option<Vec<u8>>,
    /// Our own `Cred^Br_Cl`, obtained by secureLogin.
    credential: Option<Credential>,
    /// Cache of validated signed pipe advertisements.
    validated_pipes: HashMap<(GroupId, PeerId), ValidatedAdvertisement<PipeAdvertisement>>,
    /// Client-side verified-signature cache: pipe-advertisement validation
    /// routes its RSA checks (credential chain walk + XMLdsig) through it,
    /// so a `validated_pipes` miss on bytes whose signatures were already
    /// verified — the same owner's advertisement in another group embeds the
    /// identical credential, a re-resolved advertisement repeats both
    /// checks — skips the RSA instead of recomputing it.
    sig_cache: Arc<VerifiedSigCache>,
    /// Non-secure events set aside by the secure receive path.
    other_events: Vec<ClientEvent>,
    /// Events drained from the inbox while looking for credential updates
    /// (see [`SecureClient::absorb_pending_credential_updates`]); the next
    /// [`SecureClient::receive_secure_messages`] consumes them first so
    /// nothing is lost or reordered.
    deferred_events: Vec<ClientEvent>,
}

impl SecureClient {
    /// Creates a secure client peer.
    ///
    /// * `identity` — the key pair generated at boot time (§4.1); the peer's
    ///   overlay identifier is derived from it.
    /// * `admin_credential` — the copy of `Cred^Adm_Adm` every client peer is
    ///   provided with at deployment time.
    /// * `rng_seed` — seeds the DRBG used for challenges and envelopes.
    pub fn new(
        network: Arc<SimNetwork>,
        config: ClientConfig,
        identity: PeerIdentity,
        admin_credential: Credential,
        rng_seed: u64,
    ) -> Result<Self, OverlayError> {
        let trust = TrustAnchors::new(admin_credential)?;
        let client = ClientPeer::new(network, config, identity.peer_id());
        Ok(SecureClient {
            client,
            identity,
            trust,
            rng: HmacDrbg::from_seed_u64(rng_seed),
            broker_credential: None,
            session_id: None,
            credential: None,
            validated_pipes: HashMap::new(),
            sig_cache: Arc::new(VerifiedSigCache::default()),
            other_events: Vec::new(),
            deferred_events: Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This peer's identifier (CBID-derived).
    pub fn id(&self) -> PeerId {
        self.client.id()
    }

    /// The wrapped plain client (for plain primitives, events and stats).
    pub fn inner(&self) -> &ClientPeer {
        &self.client
    }

    /// Hit/miss counters of this client's verified-signature cache (the RSA
    /// layer behind pipe-advertisement validation).
    pub fn sig_cache_stats(&self) -> SigCacheStats {
        self.sig_cache.stats()
    }

    /// Mutable access to the wrapped plain client.
    pub fn inner_mut(&mut self) -> &mut ClientPeer {
        &mut self.client
    }

    /// The peer's cryptographic identity.
    pub fn identity(&self) -> &PeerIdentity {
        &self.identity
    }

    /// The trust anchors (administrator plus verified brokers).
    pub fn trust(&self) -> &TrustAnchors {
        &self.trust
    }

    /// The broker credential learned during `secureConnection`.
    pub fn broker_credential(&self) -> Option<&Credential> {
        self.broker_credential.as_ref()
    }

    /// This peer's own credential (`Cred^Br_Cl`), if `secureLogin` succeeded.
    pub fn credential(&self) -> Option<&Credential> {
        self.credential.as_ref()
    }

    /// Events that were set aside while receiving secure messages (plain
    /// texts, advertisement pushes, unknown kinds).
    pub fn drain_other_events(&mut self) -> Vec<ClientEvent> {
        std::mem::take(&mut self.other_events)
    }

    // ------------------------------------------------------------------
    // secureConnection (paper §4.2.1)
    // ------------------------------------------------------------------

    /// The `secureConnection` primitive: challenge/response authentication of
    /// the broker before anything sensitive is sent to it.
    pub fn secure_connection(&mut self, broker: PeerId) -> Result<OperationTiming, OverlayError> {
        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        // Steps 2-3: random challenge to the broker.
        let challenge = self.rng.generate_vec(32);
        let request_id = self.client.next_request_id();
        let message = Message::new(MessageKind::SecureConnectChallenge, self.id(), request_id)
            .with_element("challenge", challenge.clone());
        let response = self
            .client
            .request(broker, &message, MessageKind::SecureConnectResponse)?;
        if response.element_str("status").as_deref() != Some("ok") {
            return Err(OverlayError::Rejected(
                response
                    .element_str("reason")
                    .unwrap_or_else(|| "secureConnection rejected".to_string()),
            ));
        }

        let sid = response.require("sid")?.to_vec();
        let signature = response.require("challenge-signature")?.to_vec();
        let credential_bytes = response.require("broker-credential")?;

        // Step 6: check the authenticity of Cred^Adm_Br with PK_Adm.
        let broker_credential = Credential::from_bytes(credential_bytes)
            .map_err(|e| OverlayError::SecurityViolation(format!("broker credential: {e}")))?;
        self.trust
            .add_broker(broker_credential.clone())
            .map_err(|_| {
                OverlayError::SecurityViolation("broker is not legitimate: credential not issued by the administrator".into())
            })?;
        // The credential must describe the peer we are talking to.
        if broker_credential.subject_id != broker {
            return Err(OverlayError::SecurityViolation(
                "broker credential subject differs from the contacted peer".into(),
            ));
        }

        // Step 7: check S_SKBr(chall) with PK_Br.
        broker_credential
            .public_key
            .verify(&challenge, &signature)
            .map_err(|_| {
                OverlayError::SecurityViolation(
                    "broker does not possess the credential's private key (impersonator)".into(),
                )
            })?;

        // Federation extension: the broker beacons the credentials of its
        // peer brokers.  Each one is verified against the administrator
        // anchor before it is trusted — a rogue broker cannot smuggle an
        // unauthentic credential past this step.
        if let Some(bytes) = response.element("federation-credentials") {
            let peers = crate::broker_ext::decode_credential_list(bytes)?;
            for peer in peers {
                self.trust.add_broker(peer).map_err(|_| {
                    OverlayError::SecurityViolation(
                        "beaconed federation credential does not chain to the administrator".into(),
                    )
                })?;
            }
        }

        // Step 8-9: broker is legitimate; store sid and the credential.
        self.session_id = Some(sid);
        self.broker_credential = Some(broker_credential);
        self.client.set_broker(broker);

        let wire = self.client.take_wire_time();
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    // ------------------------------------------------------------------
    // secureLogin (paper §4.2.2)
    // ------------------------------------------------------------------

    /// The `secureLogin` primitive: authenticates the end user over an
    /// encrypted, replay-protected channel and obtains the client credential.
    pub fn secure_login(
        &mut self,
        username: &str,
        password: &str,
    ) -> Result<OperationTiming, OverlayError> {
        let broker = self.client.broker_id().ok_or(OverlayError::NotConnected)?;
        let broker_credential = self
            .broker_credential
            .clone()
            .ok_or_else(|| OverlayError::SecurityViolation("secureConnection must run before secureLogin".into()))?;
        let sid = self
            .session_id
            .clone()
            .ok_or_else(|| OverlayError::SecurityViolation("no session identifier available".into()))?;

        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        // Step 1: req = S_SKCl(username, password, PK_Cl).
        let public_key_bytes = self.identity.public_key().to_bytes();
        let signature = self
            .identity
            .sign(&login_signed_content(username, password, &public_key_bytes))?;
        let inner = Message::new(MessageKind::SecureLoginRequest, self.id(), 0)
            .with_str("username", username)
            .with_str("password", password)
            .with_element("public-key", public_key_bytes)
            .with_element("signature", signature)
            .with_element("sid", sid);

        // Step 3: Cl → Br: E_PKBr(req, sid).
        let envelope = seal_envelope(
            &mut self.rng,
            &broker_credential.public_key,
            &inner.to_bytes(),
        )?;
        let request_id = self.client.next_request_id();
        let message = Message::new(MessageKind::SecureLoginRequest, self.id(), request_id)
            .with_element("envelope", envelope.to_bytes());
        let response = self
            .client
            .request(broker, &message, MessageKind::SecureLoginResponse)?;
        // Whatever the outcome, the session identifier is single-use.
        self.session_id = None;

        if response.element_str("status").as_deref() != Some("ok") {
            let reason = response
                .element_str("reason")
                .unwrap_or_else(|| "secureLogin rejected".to_string());
            return if reason.contains("authentication") {
                Err(OverlayError::AuthenticationFailed)
            } else {
                Err(OverlayError::Rejected(reason))
            };
        }

        // Steps 9-10: store Cred^Br_Cl after checking it really covers us and
        // was issued by the authenticated broker.
        let credential = Credential::from_bytes(response.require("credential")?)
            .map_err(|e| OverlayError::SecurityViolation(format!("issued credential: {e}")))?;
        credential
            .verify(&broker_credential.public_key)
            .map_err(|_| OverlayError::SecurityViolation("issued credential not signed by the broker".into()))?;
        if credential.subject_id != self.id()
            || credential.role != CredentialRole::Client
            || credential.subject_name != username
            || !credential.binds_key_to_subject()
        {
            return Err(OverlayError::SecurityViolation(
                "issued credential does not describe this peer".into(),
            ));
        }

        let groups: Vec<GroupId> = response
            .element_str("groups")
            .unwrap_or_default()
            .split(',')
            .filter(|s| !s.is_empty())
            .map(GroupId::new)
            .collect();
        self.credential = Some(credential);
        self.client.set_session(username, groups);

        let wire = self.client.take_wire_time();
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    /// Convenience: `secureConnection` followed by `secureLogin`, returning
    /// the combined timing (the quantity the paper's §5 join-overhead
    /// experiment reports).
    pub fn secure_join(
        &mut self,
        broker: PeerId,
        username: &str,
        password: &str,
    ) -> Result<OperationTiming, OverlayError> {
        let connection = self.secure_connection(broker)?;
        let login = self.secure_login(username, password)?;
        Ok(connection + login)
    }

    // ------------------------------------------------------------------
    // Signed advertisement publication and resolution
    // ------------------------------------------------------------------

    /// Publishes this peer's pipe advertisement for `group`, signed and
    /// carrying the peer's credential (the credential-distribution mechanism
    /// of §4.1).
    pub fn publish_secure_pipe(&mut self, group: &GroupId) -> Result<(), OverlayError> {
        let credential = self
            .credential
            .clone()
            .ok_or(OverlayError::NotLoggedIn)?;
        let advertisement = PipeAdvertisement {
            owner: self.id(),
            group: group.clone(),
            name: format!("{}-inbox", self.client.config().nickname),
        };
        let xml = signed_pipe_advertisement(&advertisement, &self.identity, &credential)?;
        self.client
            .publish_advertisement(group, PipeAdvertisement::DOC_TYPE, &xml)?;
        // Cache our own validated advertisement.
        self.validated_pipes.insert(
            (group.clone(), self.id()),
            ValidatedAdvertisement {
                advertisement,
                credential,
            },
        );
        Ok(())
    }

    /// Resolves and validates the signed pipe advertisement of `owner` in
    /// `group` (steps 1-3 of `secureMsgPeer`).  Results are cached.
    ///
    /// A validation failure is retried once after absorbing any pending
    /// [`MessageKind::CredentialUpdate`] pushes: the advertisement may be
    /// signed under the credential of a broker admitted *after* this client
    /// joined, in which case the re-beaconed credential set is what makes it
    /// validate.
    pub fn resolve_secure_pipe(
        &mut self,
        group: &GroupId,
        owner: PeerId,
    ) -> Result<ValidatedAdvertisement<PipeAdvertisement>, OverlayError> {
        if let Some(validated) = self.validated_pipes.get(&(group.clone(), owner)) {
            return Ok(validated.clone());
        }
        let xml = self.client.resolve_pipe_xml(group, owner)?;
        let cache = Arc::clone(&self.sig_cache);
        let validate = |trust: &TrustAnchors| {
            validate_signed_pipe_advertisement_with(&xml, owner, trust, |key, message, signature| {
                cache.verify(key, message, signature)
            })
        };
        let validated = match validate(&self.trust) {
            Ok(validated) => validated,
            Err(error) => {
                if self.absorb_pending_credential_updates() == 0 {
                    return Err(error);
                }
                validate(&self.trust)?
            }
        };
        self.validated_pipes
            .insert((group.clone(), owner), validated.clone());
        Ok(validated)
    }

    /// Drains the inbox looking for broker-pushed credential updates and
    /// applies them; every other event is deferred for the next
    /// [`SecureClient::receive_secure_messages`] in its original order.
    /// Returns the number of broker credentials accepted.
    fn absorb_pending_credential_updates(&mut self) -> usize {
        let mut added = 0usize;
        for event in self.client.poll_events() {
            match event {
                ClientEvent::Raw(message) if message.kind == MessageKind::CredentialUpdate => {
                    added += self.process_credential_update(&message).unwrap_or(0);
                }
                other => self.deferred_events.push(other),
            }
        }
        added
    }

    /// Asks the home broker whether `peer` is currently a member of `group`.
    /// In a sharded federation the broker transparently routes the question
    /// to the shard replica owning the `(group, peer)` entry.
    pub fn query_membership(
        &mut self,
        group: &GroupId,
        peer: PeerId,
    ) -> Result<bool, OverlayError> {
        self.client.query_membership(group, peer)
    }

    // ------------------------------------------------------------------
    // secureMsgPeer / secureMsgPeerGroup (paper §4.3)
    // ------------------------------------------------------------------

    fn check_can_message(&self, group: &GroupId) -> Result<(), OverlayError> {
        if !self.client.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        if !self.client.groups().contains(group) {
            return Err(OverlayError::NotAGroupMember(group.as_str().to_string()));
        }
        Ok(())
    }

    /// Builds the encrypted+signed payload for one recipient.
    fn seal_text_for(
        rng: &mut HmacDrbg,
        identity: &PeerIdentity,
        sender: PeerId,
        recipient_key: &RsaPublicKey,
        group: &GroupId,
        text: &str,
    ) -> Result<Envelope, OverlayError> {
        let signature = identity.sign(&message_signed_content(group.as_str(), text))?;
        let inner = Message::new(MessageKind::SecurePeerText, sender, 0)
            .with_str("group", group.as_str())
            .with_str("text", text)
            .with_element("signature", signature);
        Ok(seal_envelope(rng, recipient_key, &inner.to_bytes())?)
    }

    /// The `secureMsgPeer` primitive: validates the destination's signed
    /// advertisement, then sends `E_PKCl2(m, S_SKCl1(m))`.
    pub fn secure_msg_peer(
        &mut self,
        group: &GroupId,
        to: PeerId,
        text: &str,
    ) -> Result<OperationTiming, OverlayError> {
        self.check_can_message(group)?;
        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        // Steps 1-3: signed advertisement validation and key extraction.
        let validated = self.resolve_secure_pipe(group, to)?;

        // Step 4: encrypt the message and its signature for the recipient.
        let envelope = Self::seal_text_for(
            &mut self.rng,
            &self.identity,
            self.client.id(),
            &validated.credential.public_key,
            group,
            text,
        )?;
        let request_id = self.client.next_request_id();
        let message = Message::new(MessageKind::SecurePeerText, self.id(), request_id)
            .with_element("envelope", envelope.to_bytes());
        self.client.send_message(to, &message)?;

        let wire = self.client.take_wire_time();
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    /// The broker-relayed variant of `secureMsgPeer`: the sealed envelope is
    /// handed to this peer's home broker, which routes it across the broker
    /// federation to the destination's home broker.
    ///
    /// The brokers only see (and forward) the opaque envelope bytes — the
    /// encryption and the signature are produced and verified end-to-end by
    /// the two clients, so confidentiality and authenticity survive the
    /// extra hops unmodified.
    pub fn secure_msg_peer_relayed(
        &mut self,
        group: &GroupId,
        to: PeerId,
        text: &str,
    ) -> Result<OperationTiming, OverlayError> {
        self.check_can_message(group)?;
        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        // Identical sealing path to secure_msg_peer: validate the signed
        // advertisement, then encrypt the message plus its signature.
        let validated = self.resolve_secure_pipe(group, to)?;
        let envelope = Self::seal_text_for(
            &mut self.rng,
            &self.identity,
            self.client.id(),
            &validated.credential.public_key,
            group,
            text,
        )?;
        let request_id = self.client.next_request_id();
        let message = Message::new(MessageKind::SecurePeerText, self.id(), request_id)
            .with_element("envelope", envelope.to_bytes());
        // Only the delivery differs: via the federation instead of directly.
        self.client.relay_payload(to, message.to_bytes())?;

        let wire = self.client.take_wire_time();
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    /// The `secureMsgPeerGroup` primitive: iteratively applies
    /// [`SecureClient::secure_msg_peer`] to every other member of the group,
    /// exactly as the plain primitive is resolved.
    pub fn secure_msg_peer_group(
        &mut self,
        group: &GroupId,
        text: &str,
    ) -> Result<(usize, OperationTiming), OverlayError> {
        self.check_can_message(group)?;
        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        let members = self.client.resolve_group_pipes(group)?;
        // Wire time spent resolving the member list.
        let mut total_wire = self.client.take_wire_time();
        let mut sent = 0usize;
        for advertisement in members {
            if advertisement.owner == self.id() {
                continue;
            }
            // secure_msg_peer drains the accumulator itself, so its per-call
            // wire time is added back into the aggregate explicitly.
            let timing = self.secure_msg_peer(group, advertisement.owner, text)?;
            total_wire += timing.wire;
            sent += 1;
        }
        total_wire += self.client.take_wire_time();
        Ok((sent, OperationTiming::new(stopwatch.elapsed(), total_wire)))
    }

    /// Parallel variant of `secureMsgPeerGroup`: the per-recipient public-key
    /// encryption (the dominant CPU cost of the fan-out) is performed on a
    /// scoped thread per recipient, and the sealed messages are then sent
    /// sequentially.  This is an extension over the paper, measured by the
    /// `group_fanout` ablation benchmark.
    pub fn secure_msg_peer_group_parallel(
        &mut self,
        group: &GroupId,
        text: &str,
    ) -> Result<(usize, OperationTiming), OverlayError> {
        self.check_can_message(group)?;
        let stopwatch = Stopwatch::start();
        let _ = self.client.take_wire_time();

        // Resolve and validate every member's signed advertisement first.
        let members = self.client.resolve_group_pipes(group)?;
        let mut recipients: Vec<(PeerId, RsaPublicKey)> = Vec::with_capacity(members.len());
        for advertisement in members {
            if advertisement.owner == self.id() {
                continue;
            }
            let validated = self.resolve_secure_pipe(group, advertisement.owner)?;
            recipients.push((advertisement.owner, validated.credential.public_key.clone()));
        }

        // Seal one envelope per recipient in parallel.
        let signature = self
            .identity
            .sign(&message_signed_content(group.as_str(), text))?;
        let sender = self.id();
        let group_str = group.as_str().to_string();
        let text_owned = text.to_string();
        let seeds: Vec<u64> = recipients.iter().map(|_| self.rng.next_u64()).collect();

        let sealed: Vec<Result<(PeerId, Vec<u8>), OverlayError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = recipients
                .iter()
                .zip(seeds.iter())
                .map(|((peer, key), seed)| {
                    let signature = signature.clone();
                    let group_str = group_str.clone();
                    let text_owned = text_owned.clone();
                    scope.spawn(move |_| -> Result<(PeerId, Vec<u8>), OverlayError> {
                        let mut rng = HmacDrbg::from_seed_u64(*seed);
                        let inner = Message::new(MessageKind::SecurePeerText, sender, 0)
                            .with_str("group", &group_str)
                            .with_str("text", &text_owned)
                            .with_element("signature", signature);
                        let envelope = seal_envelope(&mut rng, key, &inner.to_bytes())?;
                        Ok((*peer, envelope.to_bytes()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sealing thread panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");

        let mut sent = 0usize;
        for result in sealed {
            let (peer, envelope_bytes) = result?;
            let request_id = self.client.next_request_id();
            let message = Message::new(MessageKind::SecurePeerText, sender, request_id)
                .with_element("envelope", envelope_bytes);
            self.client.send_message(peer, &message)?;
            sent += 1;
        }

        let wire = self.client.take_wire_time();
        Ok((sent, OperationTiming::new(stopwatch.elapsed(), wire)))
    }

    // ------------------------------------------------------------------
    // Receiving secure messages
    // ------------------------------------------------------------------

    /// Drains the inbox and returns every secure message that decrypts and
    /// authenticates correctly (steps 5-7 of §4.3.1).
    ///
    /// Messages that fail any check are counted and dropped; plain events are
    /// set aside and can be retrieved with
    /// [`SecureClient::drain_other_events`].
    pub fn receive_secure_messages(&mut self) -> Result<Vec<ReceivedSecureMessage>, OverlayError> {
        let mut events = std::mem::take(&mut self.deferred_events);
        events.extend(self.client.poll_events());
        let mut received = Vec::new();
        for event in events {
            match event {
                ClientEvent::Raw(message) if message.kind == MessageKind::SecurePeerText => {
                    match self.process_secure_text(&message) {
                        Ok(secure) => received.push(secure),
                        Err(_) => {
                            // Undecryptable or unauthentic messages are
                            // silently discarded (best-effort security, §4.3).
                        }
                    }
                }
                ClientEvent::Raw(message) if message.kind == MessageKind::CredentialUpdate => {
                    // A broker-pushed federation credential-set update
                    // (broker admitted after we joined).  Unauthentic pushes
                    // are discarded like any other forged message.
                    let _ = self.process_credential_update(&message);
                }
                other => self.other_events.push(other),
            }
        }
        Ok(received)
    }

    /// Processes a broker-pushed [`MessageKind::CredentialUpdate`]: checks
    /// that it comes from — and is signed by — the broker this client
    /// authenticated with `secureConnection`, then adds each contained
    /// broker credential to the trust anchors.  Every credential is still
    /// individually verified against the administrator anchor inside
    /// [`TrustAnchors::add_broker`]; unverifiable entries are skipped.
    /// Returns the number of credentials accepted.
    pub fn process_credential_update(&mut self, message: &Message) -> Result<usize, OverlayError> {
        let broker = self.client.broker_id().ok_or(OverlayError::NotConnected)?;
        if message.sender != broker {
            return Err(OverlayError::SecurityViolation(
                "credential update does not come from this peer's broker".into(),
            ));
        }
        let broker_credential = self.broker_credential.clone().ok_or_else(|| {
            OverlayError::SecurityViolation(
                "no authenticated broker credential to verify the update against".into(),
            )
        })?;
        let blob = message.require("credentials")?;
        let signature = message.require("signature")?;
        broker_credential
            .public_key
            .verify(&credential_update_signed_content(blob), signature)
            .map_err(|_| {
                OverlayError::SecurityViolation(
                    "credential update not signed by the authenticated broker".into(),
                )
            })?;
        let mut added = 0usize;
        for credential in decode_credential_list(blob)? {
            if self.trust.add_broker(credential).is_ok() {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Processes a single incoming `SecurePeerText` message.
    fn process_secure_text(
        &mut self,
        message: &Message,
    ) -> Result<ReceivedSecureMessage, OverlayError> {
        // Step 5: decrypt with our private key.
        let envelope = Envelope::from_bytes(message.require("envelope")?)?;
        let plaintext = open_envelope(self.identity.private_key(), &envelope)?;
        let inner = Message::from_bytes(&plaintext)?;
        let group = GroupId::new(inner.require_str("group")?);
        let text = inner.require_str("text")?;
        let signature = inner.require("signature")?.to_vec();

        // The envelope sender and the transport sender must agree.
        let sender = message.sender;
        if inner.sender != sender {
            return Err(OverlayError::SecurityViolation(
                "inner and transport sender identifiers differ".into(),
            ));
        }

        // Step 6: retrieve and validate the sender's signed advertisement.
        let validated = self.resolve_secure_pipe(&group, sender)?;

        // Step 7: verify the message signature with PK_Cl1.
        validated
            .credential
            .public_key
            .verify(&message_signed_content(group.as_str(), &text), &signature)
            .map_err(|_| OverlayError::SecurityViolation("message signature does not verify".into()))?;

        Ok(ReceivedSecureMessage {
            from: sender,
            sender_username: validated.credential.subject_name.clone(),
            group,
            text,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SecureNetworkBuilder;

    fn two_peer_setup() -> (crate::setup::SecureNetwork, SecureClient, SecureClient) {
        let mut setup = SecureNetworkBuilder::new(0x5EC1)
            .with_user("alice", "pw-a", &["math", "chem"])
            .with_user("bob", "pw-b", &["math"])
            .build();
        let alice = setup.secure_client("alice-pc");
        let bob = setup.secure_client("bob-pc");
        (setup, alice, bob)
    }

    #[test]
    fn secure_connection_authenticates_broker() {
        let (setup, mut alice, _bob) = two_peer_setup();
        let timing = alice.secure_connection(setup.broker_id()).unwrap();
        assert!(timing.cpu > std::time::Duration::ZERO);
        assert!(alice.broker_credential().is_some());
        assert_eq!(alice.trust().brokers().len(), 1);
        assert!(alice.credential().is_none(), "no credential before login");
    }

    #[test]
    fn secure_login_requires_secure_connection_first() {
        let (_setup, mut alice, _bob) = two_peer_setup();
        assert!(matches!(
            alice.secure_login("alice", "pw-a"),
            Err(OverlayError::NotConnected | OverlayError::SecurityViolation(_))
        ));
    }

    #[test]
    fn secure_join_issues_credential_and_session() {
        let (setup, mut alice, _bob) = two_peer_setup();
        let timing = alice
            .secure_join(setup.broker_id(), "alice", "pw-a")
            .unwrap();
        assert!(timing.cpu > std::time::Duration::ZERO);
        assert!(alice.inner().is_logged_in());
        let credential = alice.credential().unwrap();
        assert_eq!(credential.subject_name, "alice");
        assert_eq!(credential.subject_id, alice.id());
        assert_eq!(alice.inner().groups().len(), 2);
    }

    #[test]
    fn secure_login_with_wrong_password_fails() {
        let (setup, mut alice, _bob) = two_peer_setup();
        alice.secure_connection(setup.broker_id()).unwrap();
        assert!(matches!(
            alice.secure_login("alice", "wrong"),
            Err(OverlayError::AuthenticationFailed)
        ));
        assert!(alice.credential().is_none());
        // The session identifier was consumed; a retry needs a new
        // secureConnection.
        assert!(matches!(
            alice.secure_login("alice", "pw-a"),
            Err(OverlayError::SecurityViolation(_))
        ));
        alice.secure_connection(setup.broker_id()).unwrap();
        alice.secure_login("alice", "pw-a").unwrap();
    }

    #[test]
    fn publish_requires_login() {
        let (_setup, mut alice, _bob) = two_peer_setup();
        assert!(matches!(
            alice.publish_secure_pipe(&GroupId::new("math")),
            Err(OverlayError::NotLoggedIn)
        ));
    }

    #[test]
    fn secure_message_roundtrip() {
        let (setup, mut alice, mut bob) = two_peer_setup();
        let group = GroupId::new("math");
        alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        bob.secure_join(setup.broker_id(), "bob", "pw-b").unwrap();
        alice.publish_secure_pipe(&group).unwrap();
        bob.publish_secure_pipe(&group).unwrap();

        let timing = alice
            .secure_msg_peer(&group, bob.id(), "the exam is on friday")
            .unwrap();
        assert!(timing.cpu > std::time::Duration::ZERO);

        let received = bob.receive_secure_messages().unwrap();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].text, "the exam is on friday");
        assert_eq!(received[0].from, alice.id());
        assert_eq!(received[0].sender_username, "alice");
        assert_eq!(received[0].group, group);
    }

    #[test]
    fn secure_message_to_unpublished_peer_fails() {
        let (setup, mut alice, mut bob) = two_peer_setup();
        let group = GroupId::new("math");
        alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        bob.secure_join(setup.broker_id(), "bob", "pw-b").unwrap();
        alice.publish_secure_pipe(&group).unwrap();
        // Bob never published a signed pipe advertisement.
        assert!(alice.secure_msg_peer(&group, bob.id(), "hello?").is_err());
    }

    #[test]
    fn secure_message_requires_group_membership() {
        let (setup, mut alice, mut bob) = two_peer_setup();
        alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        bob.secure_join(setup.broker_id(), "bob", "pw-b").unwrap();
        // Bob is not in "chem".
        assert!(matches!(
            bob.secure_msg_peer(&GroupId::new("chem"), alice.id(), "x"),
            Err(OverlayError::NotAGroupMember(_))
        ));
    }

    #[test]
    fn secure_group_fanout_sequential_and_parallel_agree() {
        let mut setup = SecureNetworkBuilder::new(0xFA0)
            .with_user("alice", "pw-a", &["g"])
            .with_user("bob", "pw-b", &["g"])
            .with_user("carol", "pw-c", &["g"])
            .with_user("dave", "pw-d", &["g"])
            .build();
        let group = GroupId::new("g");
        let mut alice = setup.secure_client("alice");
        let mut others: Vec<SecureClient> = ["bob", "carol", "dave"]
            .iter()
            .map(|name| {
                let mut c = setup.secure_client(name);
                c.secure_join(setup.broker_id(), name, &format!("pw-{}", &name[..1])).unwrap();
                c.publish_secure_pipe(&group).unwrap();
                c
            })
            .collect();
        alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        alice.publish_secure_pipe(&group).unwrap();

        let (sent_seq, _) = alice.secure_msg_peer_group(&group, "sequential hello").unwrap();
        let (sent_par, _) = alice
            .secure_msg_peer_group_parallel(&group, "parallel hello")
            .unwrap();
        assert_eq!(sent_seq, 3);
        assert_eq!(sent_par, 3);

        for other in &mut others {
            let received = other.receive_secure_messages().unwrap();
            let texts: Vec<&str> = received.iter().map(|m| m.text.as_str()).collect();
            assert!(texts.contains(&"sequential hello"));
            assert!(texts.contains(&"parallel hello"));
            for message in &received {
                assert_eq!(message.sender_username, "alice");
            }
        }
    }

    #[test]
    fn tampered_secure_message_is_dropped() {
        use jxta_overlay::net::{Adversary, NetMessage, Verdict};
        struct FlipBits;
        impl Adversary for FlipBits {
            fn intercept(&self, message: &NetMessage) -> Verdict {
                // Only corrupt direct peer traffic (large payloads), leave the
                // broker protocol alone.
                if let Ok(m) = Message::from_bytes(&message.payload) {
                    if m.kind == MessageKind::SecurePeerText {
                        let mut forged = message.payload.clone();
                        let idx = forged.len() - 10;
                        forged[idx] ^= 0xff;
                        return Verdict::Tamper(forged);
                    }
                }
                Verdict::Deliver
            }
        }

        let (setup, mut alice, mut bob) = two_peer_setup();
        let group = GroupId::new("math");
        alice.secure_join(setup.broker_id(), "alice", "pw-a").unwrap();
        bob.secure_join(setup.broker_id(), "bob", "pw-b").unwrap();
        alice.publish_secure_pipe(&group).unwrap();
        bob.publish_secure_pipe(&group).unwrap();

        setup.network().set_adversary(std::sync::Arc::new(FlipBits));
        alice.secure_msg_peer(&group, bob.id(), "secret").unwrap();
        setup.network().clear_adversary();

        // The corrupted message is rejected, never surfaced as authentic.
        let received = bob.receive_secure_messages().unwrap();
        assert!(received.is_empty());
    }

}
