//! Credentials: the `Cred^issuer_subject` objects of the paper.
//!
//! A credential binds a subject (its role, name, peer identifier and public
//! key) to an issuer through an RSA signature.  Three kinds exist in a
//! JXTA-Overlay deployment:
//!
//! * `Cred^Adm_Adm` — the administrator's **self-signed** credential, copied
//!   to every client peer at deployment time; it is the trust anchor.
//! * `Cred^Adm_Br`  — a broker credential issued by the administrator; only a
//!   legitimate broker can prove ownership of one (paper §4.1/§4.2.1).
//! * `Cred^Br_Cl`   — a client credential issued by a broker after a
//!   successful `secureLogin`; it contains the client's public key and the
//!   end user's username and serves as proof of identity until it expires
//!   (§4.2.2 step 8-10).

use jxta_crypto::cbid::Cbid;
use jxta_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use jxta_crypto::CryptoError;
use jxta_overlay::PeerId;

/// The role a credential asserts for its subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CredentialRole {
    /// The JXTA-Overlay administrator (trust anchor).
    Administrator = 1,
    /// A broker peer.
    Broker = 2,
    /// A client peer / end user.
    Client = 3,
}

impl CredentialRole {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(CredentialRole::Administrator),
            2 => Some(CredentialRole::Broker),
            3 => Some(CredentialRole::Client),
            _ => None,
        }
    }
}

/// A signed credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Role of the subject.
    pub role: CredentialRole,
    /// Human-readable subject name (username for clients, broker/admin name
    /// otherwise).
    pub subject_name: String,
    /// The subject's peer identifier (CBID-derived).
    pub subject_id: PeerId,
    /// The subject's public key.
    pub public_key: RsaPublicKey,
    /// Name of the issuer.
    pub issuer_name: String,
    /// Expiry, as seconds since the deployment epoch (`u64::MAX` = never).
    pub expires_at: u64,
    /// Issuer's signature over the fields above.
    signature: Vec<u8>,
}

impl Credential {
    /// Issues a credential: signs the subject data with the issuer's private
    /// key.
    pub fn issue(
        role: CredentialRole,
        subject_name: &str,
        subject_id: PeerId,
        public_key: RsaPublicKey,
        issuer_name: &str,
        expires_at: u64,
        issuer_key: &RsaPrivateKey,
    ) -> Result<Self, CryptoError> {
        let mut credential = Credential {
            role,
            subject_name: subject_name.to_string(),
            subject_id,
            public_key,
            issuer_name: issuer_name.to_string(),
            expires_at,
            signature: Vec::new(),
        };
        credential.signature = issuer_key.sign(&credential.signed_content())?;
        Ok(credential)
    }

    /// Issues a self-signed credential (used by the administrator).
    pub fn self_signed(
        role: CredentialRole,
        subject_name: &str,
        subject_id: PeerId,
        keypair_public: RsaPublicKey,
        keypair_private: &RsaPrivateKey,
        expires_at: u64,
    ) -> Result<Self, CryptoError> {
        Self::issue(
            role,
            subject_name,
            subject_id,
            keypair_public,
            subject_name,
            expires_at,
            keypair_private,
        )
    }

    /// The byte string covered by the issuer's signature.
    fn signed_content(&self) -> Vec<u8> {
        let pk = self.public_key.to_bytes();
        let mut out = Vec::with_capacity(64 + pk.len());
        out.extend_from_slice(b"JXTA-OVERLAY-CREDENTIAL-V1");
        out.push(self.role as u8);
        out.extend_from_slice(&(self.subject_name.len() as u32).to_be_bytes());
        out.extend_from_slice(self.subject_name.as_bytes());
        out.extend_from_slice(self.subject_id.as_bytes());
        out.extend_from_slice(&(pk.len() as u32).to_be_bytes());
        out.extend_from_slice(&pk);
        out.extend_from_slice(&(self.issuer_name.len() as u32).to_be_bytes());
        out.extend_from_slice(self.issuer_name.as_bytes());
        out.extend_from_slice(&self.expires_at.to_be_bytes());
        out
    }

    /// Verifies the issuer's signature with the given issuer public key.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), CryptoError> {
        issuer_key.verify(&self.signed_content(), &self.signature)
    }

    /// Like [`Credential::verify`], but delegating the RSA operation to
    /// `verify` — so callers can route it through a
    /// [`jxta_crypto::sigcache::VerifiedSigCache`].
    pub fn verify_with<F>(&self, issuer_key: &RsaPublicKey, verify: F) -> Result<(), CryptoError>
    where
        F: FnOnce(&RsaPublicKey, &[u8], &[u8]) -> Result<(), CryptoError>,
    {
        verify(issuer_key, &self.signed_content(), &self.signature)
    }

    /// Verifies a self-signed credential (issuer key = embedded subject key).
    pub fn verify_self_signed(&self) -> Result<(), CryptoError> {
        self.verify(&self.public_key)
    }

    /// Returns `true` if the credential is expired at time `now` (seconds
    /// since the deployment epoch).
    pub fn is_expired(&self, now: u64) -> bool {
        now > self.expires_at
    }

    /// Returns `true` if the embedded public key matches the subject's
    /// CBID-derived peer identifier — the key-authenticity check of
    /// `secureLogin` step 7 and of signed-advertisement validation.
    pub fn binds_key_to_subject(&self) -> bool {
        self.subject_id
            .matches_cbid(&Cbid::from_public_key(&self.public_key))
    }

    /// The CBID of the embedded public key.
    pub fn cbid(&self) -> Cbid {
        Cbid::from_public_key(&self.public_key)
    }

    /// Serialises the credential (including the signature).
    pub fn to_bytes(&self) -> Vec<u8> {
        let content = self.signed_content();
        let mut out = Vec::with_capacity(8 + content.len() + self.signature.len());
        out.extend_from_slice(b"JXCD");
        out.extend_from_slice(&(content.len() as u32).to_be_bytes());
        out.extend_from_slice(&content);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a credential serialised with [`Credential::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = |what: &str| CryptoError::Malformed(format!("credential: {what}"));
        if bytes.len() < 8 || &bytes[..4] != b"JXCD" {
            return Err(err("missing JXCD header"));
        }
        let content_len = u32::from_be_bytes(bytes[4..8].try_into().unwrap()) as usize;
        if bytes.len() < 8 + content_len + 4 {
            return Err(err("truncated content"));
        }
        let content = &bytes[8..8 + content_len];
        let sig_offset = 8 + content_len;
        let sig_len =
            u32::from_be_bytes(bytes[sig_offset..sig_offset + 4].try_into().unwrap()) as usize;
        if bytes.len() != sig_offset + 4 + sig_len {
            return Err(err("truncated or oversized signature"));
        }
        let signature = bytes[sig_offset + 4..].to_vec();

        // Parse the signed content.
        let magic = b"JXTA-OVERLAY-CREDENTIAL-V1";
        if content.len() < magic.len() + 1 || &content[..magic.len()] != magic {
            return Err(err("bad content magic"));
        }
        let mut offset = magic.len();
        let role = CredentialRole::from_u8(content[offset]).ok_or_else(|| err("unknown role"))?;
        offset += 1;

        let read_len = |offset: &mut usize| -> Result<usize, CryptoError> {
            if content.len() < *offset + 4 {
                return Err(err("truncated length"));
            }
            let len = u32::from_be_bytes(content[*offset..*offset + 4].try_into().unwrap()) as usize;
            *offset += 4;
            if content.len() < *offset + len {
                return Err(err("truncated field"));
            }
            Ok(len)
        };

        let name_len = read_len(&mut offset)?;
        let subject_name = String::from_utf8_lossy(&content[offset..offset + name_len]).into_owned();
        offset += name_len;

        if content.len() < offset + jxta_overlay::id::PEER_ID_LEN {
            return Err(err("truncated subject id"));
        }
        let mut id_bytes = [0u8; jxta_overlay::id::PEER_ID_LEN];
        id_bytes.copy_from_slice(&content[offset..offset + jxta_overlay::id::PEER_ID_LEN]);
        let subject_id = PeerId::from_bytes(id_bytes);
        offset += jxta_overlay::id::PEER_ID_LEN;

        let pk_len = read_len(&mut offset)?;
        let public_key = RsaPublicKey::from_bytes(&content[offset..offset + pk_len])?;
        offset += pk_len;

        let issuer_len = read_len(&mut offset)?;
        let issuer_name = String::from_utf8_lossy(&content[offset..offset + issuer_len]).into_owned();
        offset += issuer_len;

        if content.len() != offset + 8 {
            return Err(err("bad expiry field"));
        }
        let expires_at = u64::from_be_bytes(content[offset..offset + 8].try_into().unwrap());

        Ok(Credential {
            role,
            subject_name,
            subject_id,
            public_key,
            issuer_name,
            expires_at,
            signature,
        })
    }
}

/// A signed credential revocation list.
///
/// The administrator is the entity that grants access to the network, so it
/// is also the one that takes it away: a revocation list names subjects
/// (by peer identifier and/or username) whose credentials must no longer be
/// honoured, and carries the administrator's signature so brokers can verify
/// it was really the admin who pushed it.  Brokers merge installed lists and
/// refuse secure logins, connections and signed-advertisement publishes from
/// revoked subjects (`core/src/broker_ext.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationList {
    /// Revoked peer identifiers.
    pub revoked_ids: Vec<PeerId>,
    /// Revoked usernames.
    pub revoked_names: Vec<String>,
    /// When the list was issued (seconds since the deployment epoch), so
    /// operators can tell lists apart; brokers merge rather than replace.
    pub issued_at: u64,
    /// Issuer's signature over the fields above.
    signature: Vec<u8>,
}

impl RevocationList {
    /// Issues a revocation list signed with the issuer's (administrator's)
    /// private key.
    pub fn issue(
        revoked_ids: &[PeerId],
        revoked_names: &[&str],
        issued_at: u64,
        issuer_key: &RsaPrivateKey,
    ) -> Result<Self, CryptoError> {
        let mut list = RevocationList {
            revoked_ids: revoked_ids.to_vec(),
            revoked_names: revoked_names.iter().map(|n| n.to_string()).collect(),
            issued_at,
            signature: Vec::new(),
        };
        list.signature = issuer_key.sign(&list.signed_content())?;
        Ok(list)
    }

    /// The byte string covered by the issuer's signature.
    fn signed_content(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"JXTA-OVERLAY-REVOCATION-V1");
        out.extend_from_slice(&(self.revoked_ids.len() as u32).to_be_bytes());
        for id in &self.revoked_ids {
            out.extend_from_slice(id.as_bytes());
        }
        out.extend_from_slice(&(self.revoked_names.len() as u32).to_be_bytes());
        for name in &self.revoked_names {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&self.issued_at.to_be_bytes());
        out
    }

    /// Verifies the signature with the issuer's public key.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), CryptoError> {
        issuer_key.verify(&self.signed_content(), &self.signature)
    }

    /// Like [`RevocationList::verify`], but delegating the RSA operation to
    /// `verify` — so brokers re-verifying gossiped lists route it through
    /// their [`jxta_crypto::sigcache::VerifiedSigCache`].
    pub fn verify_with<F>(&self, issuer_key: &RsaPublicKey, verify: F) -> Result<(), CryptoError>
    where
        F: FnOnce(&RsaPublicKey, &[u8], &[u8]) -> Result<(), CryptoError>,
    {
        verify(issuer_key, &self.signed_content(), &self.signature)
    }

    /// Serialises the list (including its signature) to a wire blob, so it
    /// can be gossiped over the broker backbone and carried in anti-entropy
    /// snapshots.  Layout: `"JXRL"`, 4-byte id count, the 16-byte ids,
    /// 4-byte name count, per name a 4-byte length and its bytes, the
    /// 8-byte issue time, a 4-byte signature length and the signature (all
    /// integers big-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"JXRL");
        out.extend_from_slice(&(self.revoked_ids.len() as u32).to_be_bytes());
        for id in &self.revoked_ids {
            out.extend_from_slice(id.as_bytes());
        }
        out.extend_from_slice(&(self.revoked_names.len() as u32).to_be_bytes());
        for name in &self.revoked_names {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&self.issued_at.to_be_bytes());
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a list serialised with [`RevocationList::to_bytes`].  The
    /// signature is carried verbatim — callers must still
    /// [`RevocationList::verify`] against the administrator key before
    /// honouring the content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = || CryptoError::Malformed("malformed revocation list".to_string());
        let take = |offset: &mut usize, len: usize| -> Result<&[u8], CryptoError> {
            let slice = bytes.get(*offset..*offset + len).ok_or_else(err)?;
            *offset += len;
            Ok(slice)
        };
        let mut offset = 0usize;
        if take(&mut offset, 4)? != b"JXRL" {
            return Err(err());
        }
        let id_count = u32::from_be_bytes(take(&mut offset, 4)?.try_into().unwrap()) as usize;
        let mut revoked_ids = Vec::with_capacity(id_count.min(1024));
        for _ in 0..id_count {
            let mut id = [0u8; 16];
            id.copy_from_slice(take(&mut offset, 16)?);
            revoked_ids.push(PeerId::from_bytes(id));
        }
        let name_count = u32::from_be_bytes(take(&mut offset, 4)?.try_into().unwrap()) as usize;
        let mut revoked_names = Vec::with_capacity(name_count.min(1024));
        for _ in 0..name_count {
            let len = u32::from_be_bytes(take(&mut offset, 4)?.try_into().unwrap()) as usize;
            let name = String::from_utf8_lossy(take(&mut offset, len)?).into_owned();
            revoked_names.push(name);
        }
        let issued_at = u64::from_be_bytes(take(&mut offset, 8)?.try_into().unwrap());
        let sig_len = u32::from_be_bytes(take(&mut offset, 4)?.try_into().unwrap()) as usize;
        let signature = take(&mut offset, sig_len)?.to_vec();
        if offset != bytes.len() {
            return Err(err());
        }
        Ok(RevocationList {
            revoked_ids,
            revoked_names,
            issued_at,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::PeerIdentity;
    use jxta_crypto::drbg::HmacDrbg;
    use std::sync::OnceLock;

    fn identities() -> &'static (PeerIdentity, PeerIdentity) {
        static IDS: OnceLock<(PeerIdentity, PeerIdentity)> = OnceLock::new();
        IDS.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed_u64(0xC4ED);
            (
                PeerIdentity::generate(&mut rng, 512).unwrap(),
                PeerIdentity::generate(&mut rng, 512).unwrap(),
            )
        })
    }

    #[test]
    fn revocation_list_wire_roundtrip() {
        let (issuer, subject) = identities();
        let list = RevocationList::issue(
            &[subject.peer_id(), issuer.peer_id()],
            &["alice", "bob"],
            42,
            issuer.private_key(),
        )
        .unwrap();
        let bytes = list.to_bytes();
        let parsed = RevocationList::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, list);
        // The signature survives the roundtrip and still verifies.
        parsed.verify(issuer.public_key()).unwrap();

        assert!(RevocationList::from_bytes(b"").is_err());
        assert!(RevocationList::from_bytes(b"NOPE").is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(truncated.len() - 1);
        assert!(RevocationList::from_bytes(&truncated).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(RevocationList::from_bytes(&trailing).is_err());
    }

    #[test]
    fn issue_and_verify() {
        let (issuer, subject) = identities();
        let credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            subject.peer_id(),
            subject.public_key().clone(),
            "admin",
            1_000,
            issuer.private_key(),
        )
        .unwrap();
        credential.verify(issuer.public_key()).unwrap();
        assert!(credential.binds_key_to_subject());
        assert!(!credential.is_expired(999));
        assert!(!credential.is_expired(1_000));
        assert!(credential.is_expired(1_001));
    }

    #[test]
    fn verify_fails_with_wrong_issuer_key() {
        let (issuer, subject) = identities();
        let credential = Credential::issue(
            CredentialRole::Broker,
            "broker-1",
            subject.peer_id(),
            subject.public_key().clone(),
            "admin",
            u64::MAX,
            issuer.private_key(),
        )
        .unwrap();
        assert!(credential.verify(subject.public_key()).is_err());
    }

    #[test]
    fn self_signed_credential_verifies_with_itself() {
        let (admin, _) = identities();
        let credential = Credential::self_signed(
            CredentialRole::Administrator,
            "admin",
            admin.peer_id(),
            admin.public_key().clone(),
            admin.private_key(),
            u64::MAX,
        )
        .unwrap();
        credential.verify_self_signed().unwrap();
        assert_eq!(credential.issuer_name, credential.subject_name);
    }

    #[test]
    fn tampered_fields_break_verification() {
        let (issuer, subject) = identities();
        let credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            subject.peer_id(),
            subject.public_key().clone(),
            "admin",
            1_000,
            issuer.private_key(),
        )
        .unwrap();

        let mut forged = credential.clone();
        forged.subject_name = "mallory".to_string();
        assert!(forged.verify(issuer.public_key()).is_err());

        let mut forged = credential.clone();
        forged.expires_at = u64::MAX;
        assert!(forged.verify(issuer.public_key()).is_err());

        let mut forged = credential;
        forged.public_key = issuer.public_key().clone();
        assert!(forged.verify(issuer.public_key()).is_err());
        assert!(!forged.binds_key_to_subject());
    }

    #[test]
    fn serialisation_roundtrip() {
        let (issuer, subject) = identities();
        let credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            subject.peer_id(),
            subject.public_key().clone(),
            "admin",
            42,
            issuer.private_key(),
        )
        .unwrap();
        let bytes = credential.to_bytes();
        let parsed = Credential::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, credential);
        parsed.verify(issuer.public_key()).unwrap();
    }

    #[test]
    fn deserialisation_rejects_garbage() {
        assert!(Credential::from_bytes(b"").is_err());
        assert!(Credential::from_bytes(b"JXCD").is_err());
        assert!(Credential::from_bytes(b"NOPE\x00\x00\x00\x01x").is_err());
        let (issuer, subject) = identities();
        let credential = Credential::issue(
            CredentialRole::Client,
            "alice",
            subject.peer_id(),
            subject.public_key().clone(),
            "admin",
            42,
            issuer.private_key(),
        )
        .unwrap();
        let bytes = credential.to_bytes();
        assert!(Credential::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Credential::from_bytes(&extended).is_err());
        // Corrupting the signed content is detected at verification time.
        let mut corrupted = bytes;
        corrupted[40] ^= 0xff;
        if let Ok(c) = Credential::from_bytes(&corrupted) {
            assert!(c.verify(issuer.public_key()).is_err());
        }
    }

    #[test]
    fn binds_key_detects_mismatched_subject_id() {
        let (issuer, subject) = identities();
        // Credential claiming the *issuer's* peer id but carrying the
        // subject's key: the CBID binding check must fail.
        let credential = Credential::issue(
            CredentialRole::Client,
            "mallory",
            issuer.peer_id(),
            subject.public_key().clone(),
            "admin",
            u64::MAX,
            issuer.private_key(),
        )
        .unwrap();
        assert!(!credential.binds_key_to_subject());
    }

    #[test]
    fn revocation_list_signs_and_verifies() {
        let (admin, subject) = identities();
        let list = RevocationList::issue(
            &[subject.peer_id()],
            &["mallory"],
            42,
            admin.private_key(),
        )
        .unwrap();
        list.verify(admin.public_key()).unwrap();
        assert_eq!(list.revoked_ids, vec![subject.peer_id()]);
        assert_eq!(list.revoked_names, vec!["mallory".to_string()]);
        assert_eq!(list.issued_at, 42);
        // A forged list (wrong issuer, or any tampered field) fails.
        assert!(list.verify(subject.public_key()).is_err());
        let mut tampered = list.clone();
        tampered.revoked_names.push("alice".to_string());
        assert!(tampered.verify(admin.public_key()).is_err());
        let mut tampered = list;
        tampered.issued_at = 43;
        assert!(tampered.verify(admin.public_key()).is_err());
    }

    #[test]
    fn role_from_u8() {
        assert_eq!(CredentialRole::from_u8(1), Some(CredentialRole::Administrator));
        assert_eq!(CredentialRole::from_u8(2), Some(CredentialRole::Broker));
        assert_eq!(CredentialRole::from_u8(3), Some(CredentialRole::Client));
        assert_eq!(CredentialRole::from_u8(99), None);
    }
}
