//! Security-aware JXTA-Overlay primitives.
//!
//! This crate is the reproduction of the paper's contribution ("A
//! Security-aware Approach to JXTA-Overlay Primitives", Arnedo-Moreno,
//! Matsuo, Barolli, Xhafa — ICPP Workshops 2009): a security extension to the
//! JXTA-Overlay primitives that adds broker authentication, protected end-user
//! login, credential distribution through signed advertisements and
//! private/authenticated peer messaging, while staying transparent to
//! applications built on the plain primitives.
//!
//! # Architecture
//!
//! * [`credential`] — broker-issued credentials (`Cred^j_i` in the paper's
//!   notation): a subject identity plus its public key, signed by an issuer.
//!   The administrator holds a self-signed credential and acts as trust
//!   anchor; brokers hold admin-issued credentials; client peers obtain
//!   theirs from a broker at `secureLogin` time.
//! * [`identity`] — a peer's cryptographic identity: an RSA key pair, its
//!   CBID and the CBID-derived peer identifier.
//! * [`admin`] — the JXTA-Overlay administrator: generates the trust anchor
//!   and provisions brokers (system setup, §4.1 of the paper).
//! * [`signed_adv`] — XMLdsig-signed advertisements carrying the owner's
//!   credential, the "transparent method for authentic key transport".
//! * [`secure_client`] — the client-side secure primitives:
//!   `secureConnection`, `secureLogin`, `secureMsgPeer`,
//!   `secureMsgPeerGroup` (sequential and parallel fan-out).
//! * [`broker_ext`] — the broker-side counterpart, installed into a plain
//!   [`jxta_overlay::Broker`] as a [`jxta_overlay::broker::BrokerExtension`].
//! * [`attacks`] — the adversaries the paper's Section 2.3 worries about
//!   (eavesdroppers, fake brokers, replay attackers, advertisement forgers),
//!   implemented against the simulated network so the security claims are
//!   testable, not just argued.
//! * [`setup`] — convenience builders assembling a complete secured network
//!   (used by the examples, the integration tests and the benchmark harness).
//!
//! # Example
//!
//! ```
//! use jxta_overlay_secure::setup::SecureNetworkBuilder;
//!
//! // One broker, two registered users, deterministic randomness.
//! let mut setup = SecureNetworkBuilder::new(0xC0FFEE)
//!     .with_user("alice", "alice-pw", &["demo"])
//!     .with_user("bob", "bob-pw", &["demo"])
//!     .build();
//!
//! let mut alice = setup.secure_client("alice-laptop");
//! let mut bob = setup.secure_client("bob-laptop");
//!
//! // Secure join: authenticate the broker, then log in over an encrypted,
//! // replay-protected channel and receive a credential.
//! alice.secure_connection(setup.broker_id()).unwrap();
//! alice.secure_login("alice", "alice-pw").unwrap();
//! bob.secure_connection(setup.broker_id()).unwrap();
//! bob.secure_login("bob", "bob-pw").unwrap();
//!
//! // Publish signed pipe advertisements and exchange a protected message.
//! let group = jxta_overlay::GroupId::new("demo");
//! alice.publish_secure_pipe(&group).unwrap();
//! bob.publish_secure_pipe(&group).unwrap();
//! alice.secure_msg_peer(&group, bob.id(), "hello, privately").unwrap();
//! let received = bob.receive_secure_messages().unwrap();
//! assert_eq!(received[0].text, "hello, privately");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod attacks;
pub mod broker_ext;
pub mod credential;
pub mod identity;
pub mod secure_client;
pub mod setup;
pub mod signed_adv;

pub use admin::Administrator;
pub use broker_ext::SecureBrokerExtension;
pub use credential::{Credential, CredentialRole};
pub use identity::PeerIdentity;
pub use secure_client::{ReceivedSecureMessage, SecureClient};
pub use signed_adv::TrustAnchors;

/// Errors are shared with the overlay substrate.
pub use jxta_overlay::OverlayError;
