//! Error type for overlay operations.

use crate::id::PeerId;
use jxta_crypto::CryptoError;
use jxta_xmldoc::{DsigError, ParseError};

/// Errors produced by JXTA-Overlay primitives and functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The destination peer is not registered with the network (offline or
    /// unknown identifier).
    PeerUnreachable(PeerId),
    /// No broker is available to serve the request.
    NoBrokerAvailable,
    /// The client is not connected to a broker (primitive called before
    /// `connect`).
    NotConnected,
    /// The client has not logged in yet (primitive called before `login`).
    NotLoggedIn,
    /// Authentication failed: unknown user or wrong password.
    AuthenticationFailed,
    /// The peer is not a member of the named group.
    NotAGroupMember(String),
    /// A request timed out waiting for a response.
    Timeout {
        /// What was being waited for.
        operation: String,
    },
    /// A received message could not be decoded.
    MalformedMessage(String),
    /// A required advertisement could not be found in the local cache or the
    /// broker index.
    AdvertisementNotFound(String),
    /// An advertisement document failed to parse.
    AdvertisementParse(String),
    /// The broker rejected a request.
    Rejected(String),
    /// An underlying cryptographic operation failed (secure primitives only).
    Crypto(CryptoError),
    /// An XML signature error (secure primitives only).
    Signature(DsigError),
    /// Security policy violation detected by the secure extension (e.g. an
    /// unauthentic broker credential or a replayed session identifier).
    SecurityViolation(String),
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::PeerUnreachable(id) => write!(f, "peer {id} is unreachable"),
            OverlayError::NoBrokerAvailable => write!(f, "no broker available"),
            OverlayError::NotConnected => write!(f, "not connected to a broker"),
            OverlayError::NotLoggedIn => write!(f, "not logged in"),
            OverlayError::AuthenticationFailed => write!(f, "authentication failed"),
            OverlayError::NotAGroupMember(g) => write!(f, "not a member of group {g:?}"),
            OverlayError::Timeout { operation } => write!(f, "timed out waiting for {operation}"),
            OverlayError::MalformedMessage(what) => write!(f, "malformed message: {what}"),
            OverlayError::AdvertisementNotFound(what) => {
                write!(f, "advertisement not found: {what}")
            }
            OverlayError::AdvertisementParse(what) => {
                write!(f, "advertisement parse error: {what}")
            }
            OverlayError::Rejected(why) => write!(f, "request rejected by broker: {why}"),
            OverlayError::Crypto(e) => write!(f, "crypto error: {e}"),
            OverlayError::Signature(e) => write!(f, "signature error: {e}"),
            OverlayError::SecurityViolation(what) => write!(f, "security violation: {what}"),
        }
    }
}

impl std::error::Error for OverlayError {}

impl From<CryptoError> for OverlayError {
    fn from(e: CryptoError) -> Self {
        OverlayError::Crypto(e)
    }
}

impl From<DsigError> for OverlayError {
    fn from(e: DsigError) -> Self {
        OverlayError::Signature(e)
    }
}

impl From<ParseError> for OverlayError {
    fn from(e: ParseError) -> Self {
        OverlayError::AdvertisementParse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    #[test]
    fn display_messages() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        let id = PeerId::random(&mut rng);
        let cases: Vec<(OverlayError, &str)> = vec![
            (OverlayError::PeerUnreachable(id), "unreachable"),
            (OverlayError::NoBrokerAvailable, "no broker"),
            (OverlayError::NotConnected, "not connected"),
            (OverlayError::NotLoggedIn, "not logged in"),
            (OverlayError::AuthenticationFailed, "authentication"),
            (OverlayError::NotAGroupMember("g".into()), "group"),
            (OverlayError::Timeout { operation: "login".into() }, "login"),
            (OverlayError::MalformedMessage("kind".into()), "malformed"),
            (OverlayError::AdvertisementNotFound("pipe".into()), "not found"),
            (OverlayError::Rejected("nope".into()), "rejected"),
            (OverlayError::SecurityViolation("replay".into()), "violation"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn conversions() {
        let e: OverlayError = CryptoError::SignatureMismatch.into();
        assert!(matches!(e, OverlayError::Crypto(_)));
        let e: OverlayError = DsigError::MissingSignature.into();
        assert!(matches!(e, OverlayError::Signature(_)));
        let parse_err = jxta_xmldoc::parse("<broken").unwrap_err();
        let e: OverlayError = parse_err.into();
        assert!(matches!(e, OverlayError::AdvertisementParse(_)));
    }
}
