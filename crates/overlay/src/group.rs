//! Peer groups.
//!
//! JXTA-Overlay organises end users into *overlapping groups*: only members
//! of the same group may interact, a peer may belong to several groups at
//! once, and brokers propagate peer information to the other members of each
//! group the peer belongs to.

use crate::id::PeerId;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};

/// Identifier of a peer group (a human-readable name, as in JXTA-Overlay).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(String);

impl GroupId {
    /// Creates a group identifier.
    pub fn new(name: impl Into<String>) -> Self {
        GroupId(name.into())
    }

    /// The group name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for GroupId {
    fn from(s: &str) -> Self {
        GroupId::new(s)
    }
}

impl From<String> for GroupId {
    fn from(s: String) -> Self {
        GroupId(s)
    }
}

/// Thread-safe registry of groups and their current members, maintained by
/// brokers.
#[derive(Debug)]
pub struct GroupRegistry {
    groups: RwLock<HashMap<GroupId, HashSet<PeerId>>>,
}

impl Default for GroupRegistry {
    fn default() -> Self {
        GroupRegistry {
            groups: RwLock::with_class("groups.members", HashMap::new()),
        }
    }
}

impl GroupRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (publishes) a group if it does not exist yet.  Returns `true`
    /// if the group was newly created.
    pub fn publish_group(&self, group: GroupId) -> bool {
        self.groups.write().entry(group).or_default().is_empty()
    }

    /// Adds a peer to a group, creating the group if needed.
    pub fn join(&self, group: GroupId, peer: PeerId) {
        self.groups.write().entry(group).or_default().insert(peer);
    }

    /// Removes a peer from a group.  Returns `true` if the peer was a member.
    pub fn leave(&self, group: &GroupId, peer: &PeerId) -> bool {
        self.groups
            .write()
            .get_mut(group)
            .map(|members| members.remove(peer))
            .unwrap_or(false)
    }

    /// Removes a peer from every group (used when a peer goes offline).
    pub fn leave_all(&self, peer: &PeerId) {
        for members in self.groups.write().values_mut() {
            members.remove(peer);
        }
    }

    /// Returns `true` if `peer` is a member of `group`.
    pub fn is_member(&self, group: &GroupId, peer: &PeerId) -> bool {
        self.groups
            .read()
            .get(group)
            .map(|m| m.contains(peer))
            .unwrap_or(false)
    }

    /// Members of a group (empty if the group does not exist), in
    /// deterministic (sorted) order.
    pub fn members(&self, group: &GroupId) -> Vec<PeerId> {
        let mut members: Vec<PeerId> = self
            .groups
            .read()
            .get(group)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default();
        members.sort();
        members
    }

    /// Groups a peer currently belongs to, sorted by name.
    pub fn groups_of(&self, peer: &PeerId) -> Vec<GroupId> {
        let mut groups: Vec<GroupId> = self
            .groups
            .read()
            .iter()
            .filter(|(_, members)| members.contains(peer))
            .map(|(g, _)| g.clone())
            .collect();
        groups.sort();
        groups
    }

    /// All published groups, sorted by name.
    pub fn all_groups(&self) -> Vec<GroupId> {
        let mut groups: Vec<GroupId> = self.groups.read().keys().cloned().collect();
        groups.sort();
        groups
    }

    /// Number of published groups.
    pub fn group_count(&self) -> usize {
        self.groups.read().len()
    }

    /// Deterministic snapshot of the whole registry: every group with its
    /// sorted member list, sorted by group name.  Empty groups (all members
    /// left) are omitted so that two registries that saw the same joins and
    /// leaves in different orders still compare equal — the comparison the
    /// federation's replication-convergence checks rely on.
    pub fn snapshot(&self) -> Vec<(GroupId, Vec<PeerId>)> {
        let mut snapshot: Vec<(GroupId, Vec<PeerId>)> = self
            .groups
            .read()
            .iter()
            .filter(|(_, members)| !members.is_empty())
            .map(|(group, members)| {
                let mut members: Vec<PeerId> = members.iter().copied().collect();
                members.sort();
                (group.clone(), members)
            })
            .collect();
        snapshot.sort_by(|(a, _), (b, _)| a.cmp(b));
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peers(n: usize) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(77);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    #[test]
    fn group_id_basics() {
        let g = GroupId::new("e-learning");
        assert_eq!(g.as_str(), "e-learning");
        assert_eq!(format!("{g}"), "e-learning");
        assert_eq!(GroupId::from("x"), GroupId::new("x"));
        assert_eq!(GroupId::from(String::from("y")), GroupId::new("y"));
    }

    #[test]
    fn join_and_membership() {
        let reg = GroupRegistry::new();
        let ids = peers(3);
        let g = GroupId::new("math-101");
        reg.join(g.clone(), ids[0]);
        reg.join(g.clone(), ids[1]);
        assert!(reg.is_member(&g, &ids[0]));
        assert!(!reg.is_member(&g, &ids[2]));
        assert_eq!(reg.members(&g).len(), 2);
        assert_eq!(reg.group_count(), 1);
    }

    #[test]
    fn overlapping_groups() {
        let reg = GroupRegistry::new();
        let ids = peers(2);
        reg.join(GroupId::new("a"), ids[0]);
        reg.join(GroupId::new("b"), ids[0]);
        reg.join(GroupId::new("b"), ids[1]);
        assert_eq!(reg.groups_of(&ids[0]), vec![GroupId::new("a"), GroupId::new("b")]);
        assert_eq!(reg.groups_of(&ids[1]), vec![GroupId::new("b")]);
        assert_eq!(reg.all_groups().len(), 2);
    }

    #[test]
    fn leave_and_leave_all() {
        let reg = GroupRegistry::new();
        let ids = peers(2);
        let a = GroupId::new("a");
        let b = GroupId::new("b");
        reg.join(a.clone(), ids[0]);
        reg.join(b.clone(), ids[0]);
        assert!(reg.leave(&a, &ids[0]));
        assert!(!reg.leave(&a, &ids[0]), "second leave is a no-op");
        assert!(!reg.leave(&GroupId::new("missing"), &ids[0]));
        reg.leave_all(&ids[0]);
        assert!(reg.groups_of(&ids[0]).is_empty());
    }

    #[test]
    fn publish_group_reports_novelty() {
        let reg = GroupRegistry::new();
        assert!(reg.publish_group(GroupId::new("fresh")));
        reg.join(GroupId::new("fresh"), peers(1)[0]);
        assert!(!reg.publish_group(GroupId::new("fresh")));
    }

    #[test]
    fn snapshot_is_order_insensitive_and_skips_empty_groups() {
        let ids = peers(3);
        let a = GroupRegistry::new();
        a.join(GroupId::new("g1"), ids[0]);
        a.join(GroupId::new("g1"), ids[1]);
        a.join(GroupId::new("g2"), ids[2]);
        let b = GroupRegistry::new();
        b.join(GroupId::new("g2"), ids[2]);
        b.join(GroupId::new("g1"), ids[1]);
        b.join(GroupId::new("g1"), ids[0]);
        assert_eq!(a.snapshot(), b.snapshot());

        // A group whose members all left disappears from the snapshot even
        // though the other registry never created it.
        a.join(GroupId::new("ghost"), ids[0]);
        a.leave(&GroupId::new("ghost"), &ids[0]);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().len(), 2);
    }

    #[test]
    fn members_are_sorted_and_deterministic() {
        let reg = GroupRegistry::new();
        let ids = peers(10);
        let g = GroupId::new("sorted");
        for id in &ids {
            reg.join(g.clone(), *id);
        }
        let members = reg.members(&g);
        let mut expected = ids.clone();
        expected.sort();
        assert_eq!(members, expected);
        assert!(reg.members(&GroupId::new("missing")).is_empty());
    }
}
