//! A simulated JXTA-Overlay middleware.
//!
//! JXTA-Overlay (Xhafa et al., NBiS 2007) is a middleware on top of the JXTA
//! protocol suite that gives P2P application developers a set of *primitives*
//! (client side) and *functions* (broker side) covering network join, group
//! management, presence, file sharing and direct messaging.  The original
//! implementation is Java on top of Sun's JXTA stack; since JXTA is no longer
//! available, this crate rebuilds the pieces the security extension needs as
//! an in-process simulator:
//!
//! * [`net`] — the message-passing substrate: peers register endpoints with a
//!   [`net::SimNetwork`], messages are delivered over crossbeam channels, and
//!   a configurable [`net::LinkModel`] charges per-message latency and
//!   per-byte bandwidth cost as *virtual wire time* (wall-clock stays the cost
//!   of real computation, so experiments can separate CPU from network as the
//!   paper's Figure 2 discussion does).  Adversaries can be attached to the
//!   network to eavesdrop, drop, redirect or replay traffic.
//! * [`message`] — JXTA-style messages: a kind plus a set of named binary
//!   elements, with a compact binary wire encoding.
//! * [`advertisement`] — XML advertisements (peer, pipe, file, presence,
//!   statistics) built on [`jxta_xmldoc`], the metadata documents that peers
//!   periodically broadcast for every group they belong to.
//! * [`database`] — the central user database that only brokers may access:
//!   usernames, salted password verifiers and group membership.
//! * [`broker`] — the Broker Module: end-user authentication, the global
//!   resource index, advertisement distribution and group publication.
//! * [`client`] — the Client Module: the primitives applications invoke
//!   (`connect`, `login`, `sendMsgPeer`, `sendMsgPeerGroup`, file publication,
//!   presence) and the event stream produced by incoming messages.
//! * [`group`] — overlapping peer groups and membership bookkeeping.
//! * [`federation`] — the broker backbone: broker interconnection (the known
//!   peer set every broker admits traffic from), gossip-based replication of
//!   the index/membership/routing state, and cross-broker relaying of client
//!   payloads.
//! * [`membership`] — HyParView-style partial views over the known peer set:
//!   a bounded active view that caps every broker's routing degree plus a
//!   passive healing reservoir, with a pinned ring successor keeping the
//!   overlay provably connected.  Small federations keep complete views (the
//!   full-mesh behaviour); [`broker::BrokerConfig::with_full_mesh`] pins it.
//! * [`plumtree`] — Plumtree-style dissemination over the active view: eager
//!   push along a self-repairing spanning tree, lazy `IHave` digests on the
//!   remaining active edges, `Graft`/`Prune` tree repair, with anti-entropy
//!   as the last-resort safety net.
//! * [`swim`] — SWIM-style failure detection over the same fabric: per-tick
//!   direct probes with indirect fan-out on timeout, an
//!   `Alive → Suspect → Dead` state machine with incarnation-numbered
//!   refutation, and a Lifeguard local-health multiplier.  Confirmed deaths
//!   feed the membership view and Plumtree edges automatically.
//! * [`shard`] — the consistent-hash ring that partitions the advertisement
//!   index and group membership across K replica brokers instead of fully
//!   replicating them (the peer→home-broker routing table stays fully
//!   replicated: it is small and hot).
//! * [`metrics`] — CPU/wire time accounting used by the benchmark harness,
//!   plus the federation activity counters.
//!
//! The plain primitives implemented here intentionally have **no security**:
//! passwords travel in the clear, advertisements are unsigned, and the broker
//! is never authenticated.  That is the baseline the paper measures against;
//! the `jxta-overlay-secure` crate adds the secure counterparts on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advertisement;
pub mod broker;
pub mod client;
pub mod clock;
pub mod database;
pub mod error;
pub mod federation;
pub mod group;
pub mod id;
pub mod membership;
pub mod message;
pub mod metrics;
pub mod net;
pub mod plumtree;
pub mod shard;
pub mod swim;

pub use broker::{Broker, BrokerConfig, BrokerHandle};
pub use federation::BrokerNetwork;
pub use client::{ClientConfig, ClientEvent, ClientPeer};
pub use database::UserDatabase;
pub use error::OverlayError;
pub use group::GroupId;
pub use id::PeerId;
pub use message::{Message, MessageKind};
pub use metrics::OperationTiming;
pub use net::{LinkModel, SimNetwork};
