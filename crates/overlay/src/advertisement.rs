//! JXTA-Overlay advertisements.
//!
//! "Peer information is propagated across group members by brokers … such
//! information is formatted as JXTA advertisements, metadata documents
//! codified using XML" (paper, §2.2).  Each client peer periodically
//! broadcasts a set of advertisements for every group it belongs to: its
//! input-pipe location, the files it shares, statistics and presence.
//!
//! Every advertisement type converts to and from a [`jxta_xmldoc::Element`];
//! the conversion deliberately ignores unknown children, so an enveloped
//! `<Signature>` element added by the security extension does not interfere
//! with ordinary processing — that is precisely the paper's argument for
//! XMLdsig-style signed advertisements over JXTA's Base64-wrapping ones.

use crate::error::OverlayError;
use crate::group::GroupId;
use crate::id::PeerId;
use jxta_xmldoc::Element;

/// Common behaviour of every advertisement type.
pub trait Advertisement: Sized {
    /// The XML root element name of this advertisement type.
    const DOC_TYPE: &'static str;

    /// Converts the advertisement to its XML element form.
    fn to_element(&self) -> Element;

    /// Parses an advertisement from its XML element form.
    ///
    /// Implementations must ignore unknown children (forward compatibility
    /// and enveloped signatures).
    fn from_element(element: &Element) -> Result<Self, OverlayError>;

    /// Serialises to an XML string.
    fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Parses from an XML string.
    fn from_xml(xml: &str) -> Result<Self, OverlayError> {
        let element = jxta_xmldoc::parse(xml)?;
        Self::from_element(&element)
    }
}

fn check_doc_type(element: &Element, expected: &str) -> Result<(), OverlayError> {
    if element.name() == expected {
        Ok(())
    } else {
        Err(OverlayError::AdvertisementParse(format!(
            "expected <{expected}>, found <{}>",
            element.name()
        )))
    }
}

fn require_child_text(element: &Element, name: &str) -> Result<String, OverlayError> {
    element.child_text(name).ok_or_else(|| {
        OverlayError::AdvertisementParse(format!("missing <{name}> in <{}>", element.name()))
    })
}

fn parse_peer_id(text: &str, context: &str) -> Result<PeerId, OverlayError> {
    PeerId::from_urn(text).ok_or_else(|| {
        OverlayError::AdvertisementParse(format!("invalid peer id {text:?} in {context}"))
    })
}

fn parse_u64(text: &str, context: &str) -> Result<u64, OverlayError> {
    text.parse::<u64>().map_err(|_| {
        OverlayError::AdvertisementParse(format!("invalid number {text:?} in {context}"))
    })
}

// ----------------------------------------------------------------------
// Pipe advertisement
// ----------------------------------------------------------------------

/// Advertises the location of a peer's input pipe for one group.
///
/// Other group members resolve this advertisement before they can send any
/// direct message to the peer; the secure extension signs it and embeds the
/// owner's credential, which is how public keys are distributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeAdvertisement {
    /// The peer that owns the input pipe.
    pub owner: PeerId,
    /// The group this pipe serves.
    pub group: GroupId,
    /// Human-readable pipe name.
    pub name: String,
}

impl Advertisement for PipeAdvertisement {
    const DOC_TYPE: &'static str = "jxta:PipeAdvertisement";

    fn to_element(&self) -> Element {
        Element::new(Self::DOC_TYPE)
            .with_child(Element::new("Owner").with_text(self.owner.to_urn()))
            .with_child(Element::new("Group").with_text(self.group.as_str()))
            .with_child(Element::new("Name").with_text(&self.name))
            .with_child(Element::new("Type").with_text("JxtaUnicast"))
    }

    fn from_element(element: &Element) -> Result<Self, OverlayError> {
        check_doc_type(element, Self::DOC_TYPE)?;
        let owner = parse_peer_id(&require_child_text(element, "Owner")?, Self::DOC_TYPE)?;
        let group = GroupId::new(require_child_text(element, "Group")?);
        let name = require_child_text(element, "Name")?;
        Ok(PipeAdvertisement { owner, group, name })
    }
}

// ----------------------------------------------------------------------
// Peer advertisement
// ----------------------------------------------------------------------

/// Describes a peer: its identifier, nickname and group memberships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerAdvertisement {
    /// The advertised peer.
    pub peer: PeerId,
    /// End-user visible nickname.
    pub nickname: String,
    /// Groups the peer belongs to.
    pub groups: Vec<GroupId>,
}

impl Advertisement for PeerAdvertisement {
    const DOC_TYPE: &'static str = "jxta:PeerAdvertisement";

    fn to_element(&self) -> Element {
        let mut e = Element::new(Self::DOC_TYPE)
            .with_child(Element::new("Peer").with_text(self.peer.to_urn()))
            .with_child(Element::new("Nickname").with_text(&self.nickname));
        let mut groups = Element::new("Groups");
        for g in &self.groups {
            groups.push_child(Element::new("Group").with_text(g.as_str()));
        }
        e.push_child(groups);
        e
    }

    fn from_element(element: &Element) -> Result<Self, OverlayError> {
        check_doc_type(element, Self::DOC_TYPE)?;
        let peer = parse_peer_id(&require_child_text(element, "Peer")?, Self::DOC_TYPE)?;
        let nickname = require_child_text(element, "Nickname")?;
        let groups = element
            .child("Groups")
            .map(|gs| {
                gs.child_elements()
                    .filter(|c| c.name() == "Group")
                    .map(|c| GroupId::new(c.text()))
                    .collect()
            })
            .unwrap_or_default();
        Ok(PeerAdvertisement {
            peer,
            nickname,
            groups,
        })
    }
}

// ----------------------------------------------------------------------
// File advertisement
// ----------------------------------------------------------------------

/// One shared file in a [`FileAdvertisement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Hex-encoded SHA-256 of the content.
    pub digest: String,
}

/// Advertises the files a peer shares within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAdvertisement {
    /// The sharing peer.
    pub owner: PeerId,
    /// The group the files are shared with.
    pub group: GroupId,
    /// Shared files.
    pub entries: Vec<FileEntry>,
}

impl Advertisement for FileAdvertisement {
    const DOC_TYPE: &'static str = "jxta:FileAdvertisement";

    fn to_element(&self) -> Element {
        let mut e = Element::new(Self::DOC_TYPE)
            .with_child(Element::new("Owner").with_text(self.owner.to_urn()))
            .with_child(Element::new("Group").with_text(self.group.as_str()));
        for entry in &self.entries {
            e.push_child(
                Element::new("File")
                    .with_attribute("name", &entry.name)
                    .with_attribute("size", entry.size.to_string())
                    .with_attribute("sha256", &entry.digest),
            );
        }
        e
    }

    fn from_element(element: &Element) -> Result<Self, OverlayError> {
        check_doc_type(element, Self::DOC_TYPE)?;
        let owner = parse_peer_id(&require_child_text(element, "Owner")?, Self::DOC_TYPE)?;
        let group = GroupId::new(require_child_text(element, "Group")?);
        let mut entries = Vec::new();
        for file in element.child_elements().filter(|c| c.name() == "File") {
            let name = file
                .attribute("name")
                .ok_or_else(|| OverlayError::AdvertisementParse("File without name".into()))?
                .to_string();
            let size = parse_u64(
                file.attribute("size").unwrap_or("0"),
                "FileAdvertisement size",
            )?;
            let digest = file.attribute("sha256").unwrap_or_default().to_string();
            entries.push(FileEntry { name, size, digest });
        }
        Ok(FileAdvertisement {
            owner,
            group,
            entries,
        })
    }
}

// ----------------------------------------------------------------------
// Presence advertisement
// ----------------------------------------------------------------------

/// Online status carried by a [`PresenceAdvertisement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresenceStatus {
    /// The peer is online and reachable.
    Online,
    /// The peer is connected but idle.
    Away,
    /// The peer announced a clean disconnect.
    Offline,
}

impl PresenceStatus {
    fn as_str(&self) -> &'static str {
        match self {
            PresenceStatus::Online => "online",
            PresenceStatus::Away => "away",
            PresenceStatus::Offline => "offline",
        }
    }

    fn parse(s: &str) -> Result<Self, OverlayError> {
        match s {
            "online" => Ok(PresenceStatus::Online),
            "away" => Ok(PresenceStatus::Away),
            "offline" => Ok(PresenceStatus::Offline),
            other => Err(OverlayError::AdvertisementParse(format!(
                "unknown presence status {other:?}"
            ))),
        }
    }
}

/// Periodic presence notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceAdvertisement {
    /// The peer announcing its presence.
    pub peer: PeerId,
    /// Current status.
    pub status: PresenceStatus,
    /// Monotonically increasing sequence number (replaces wall-clock
    /// timestamps so the simulation stays deterministic).
    pub sequence: u64,
}

impl Advertisement for PresenceAdvertisement {
    const DOC_TYPE: &'static str = "jxta:PresenceAdvertisement";

    fn to_element(&self) -> Element {
        Element::new(Self::DOC_TYPE)
            .with_child(Element::new("Peer").with_text(self.peer.to_urn()))
            .with_child(Element::new("Status").with_text(self.status.as_str()))
            .with_child(Element::new("Sequence").with_text(self.sequence.to_string()))
    }

    fn from_element(element: &Element) -> Result<Self, OverlayError> {
        check_doc_type(element, Self::DOC_TYPE)?;
        let peer = parse_peer_id(&require_child_text(element, "Peer")?, Self::DOC_TYPE)?;
        let status = PresenceStatus::parse(&require_child_text(element, "Status")?)?;
        let sequence = parse_u64(&require_child_text(element, "Sequence")?, Self::DOC_TYPE)?;
        Ok(PresenceAdvertisement {
            peer,
            status,
            sequence,
        })
    }
}

// ----------------------------------------------------------------------
// Statistics advertisement
// ----------------------------------------------------------------------

/// Periodic statistics broadcast (JXTA-Overlay uses these for its
/// fuzzy-logic peer selection; here they are carried for completeness and as
/// additional signed-advertisement payload in the experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatisticsAdvertisement {
    /// The reporting peer.
    pub peer: PeerId,
    /// Messages sent since the peer joined.
    pub messages_sent: u64,
    /// Bytes sent since the peer joined.
    pub bytes_sent: u64,
    /// Seconds the peer has been online.
    pub uptime_secs: u64,
}

impl Advertisement for StatisticsAdvertisement {
    const DOC_TYPE: &'static str = "jxta:StatisticsAdvertisement";

    fn to_element(&self) -> Element {
        Element::new(Self::DOC_TYPE)
            .with_child(Element::new("Peer").with_text(self.peer.to_urn()))
            .with_child(Element::new("MessagesSent").with_text(self.messages_sent.to_string()))
            .with_child(Element::new("BytesSent").with_text(self.bytes_sent.to_string()))
            .with_child(Element::new("UptimeSecs").with_text(self.uptime_secs.to_string()))
    }

    fn from_element(element: &Element) -> Result<Self, OverlayError> {
        check_doc_type(element, Self::DOC_TYPE)?;
        let peer = parse_peer_id(&require_child_text(element, "Peer")?, Self::DOC_TYPE)?;
        Ok(StatisticsAdvertisement {
            peer,
            messages_sent: parse_u64(&require_child_text(element, "MessagesSent")?, Self::DOC_TYPE)?,
            bytes_sent: parse_u64(&require_child_text(element, "BytesSent")?, Self::DOC_TYPE)?,
            uptime_secs: parse_u64(&require_child_text(element, "UptimeSecs")?, Self::DOC_TYPE)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peer(seed: u64) -> PeerId {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        PeerId::random(&mut rng)
    }

    #[test]
    fn pipe_advertisement_roundtrip() {
        let adv = PipeAdvertisement {
            owner: peer(1),
            group: GroupId::new("math-101"),
            name: "alice-inbox".into(),
        };
        let xml = adv.to_xml();
        assert!(xml.contains("jxta:PipeAdvertisement"));
        assert_eq!(PipeAdvertisement::from_xml(&xml).unwrap(), adv);
    }

    #[test]
    fn pipe_advertisement_rejects_wrong_type() {
        let adv = PresenceAdvertisement {
            peer: peer(1),
            status: PresenceStatus::Online,
            sequence: 1,
        };
        assert!(matches!(
            PipeAdvertisement::from_element(&adv.to_element()),
            Err(OverlayError::AdvertisementParse(_))
        ));
    }

    #[test]
    fn pipe_advertisement_missing_fields() {
        let e = Element::new("jxta:PipeAdvertisement");
        assert!(PipeAdvertisement::from_element(&e).is_err());
        let e = Element::new("jxta:PipeAdvertisement")
            .with_child(Element::new("Owner").with_text("urn:jxta:peer:zz"));
        assert!(PipeAdvertisement::from_element(&e).is_err());
    }

    #[test]
    fn peer_advertisement_roundtrip() {
        let adv = PeerAdvertisement {
            peer: peer(2),
            nickname: "alice".into(),
            groups: vec![GroupId::new("a"), GroupId::new("b")],
        };
        assert_eq!(PeerAdvertisement::from_xml(&adv.to_xml()).unwrap(), adv);
    }

    #[test]
    fn peer_advertisement_without_groups() {
        let adv = PeerAdvertisement {
            peer: peer(2),
            nickname: "loner".into(),
            groups: vec![],
        };
        let parsed = PeerAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert!(parsed.groups.is_empty());
    }

    #[test]
    fn file_advertisement_roundtrip() {
        let adv = FileAdvertisement {
            owner: peer(3),
            group: GroupId::new("downloads"),
            entries: vec![
                FileEntry {
                    name: "lecture-1.pdf".into(),
                    size: 1_234_567,
                    digest: "ab".repeat(32),
                },
                FileEntry {
                    name: "notes & exercises.txt".into(),
                    size: 0,
                    digest: String::new(),
                },
            ],
        };
        assert_eq!(FileAdvertisement::from_xml(&adv.to_xml()).unwrap(), adv);
    }

    #[test]
    fn file_advertisement_empty_is_fine() {
        let adv = FileAdvertisement {
            owner: peer(3),
            group: GroupId::new("g"),
            entries: vec![],
        };
        assert_eq!(FileAdvertisement::from_xml(&adv.to_xml()).unwrap(), adv);
    }

    #[test]
    fn file_advertisement_bad_size_rejected() {
        let e = Element::new("jxta:FileAdvertisement")
            .with_child(Element::new("Owner").with_text(peer(1).to_urn()))
            .with_child(Element::new("Group").with_text("g"))
            .with_child(
                Element::new("File")
                    .with_attribute("name", "x")
                    .with_attribute("size", "not-a-number"),
            );
        assert!(FileAdvertisement::from_element(&e).is_err());
    }

    #[test]
    fn presence_advertisement_roundtrip_all_statuses() {
        for status in [PresenceStatus::Online, PresenceStatus::Away, PresenceStatus::Offline] {
            let adv = PresenceAdvertisement {
                peer: peer(4),
                status,
                sequence: 42,
            };
            assert_eq!(PresenceAdvertisement::from_xml(&adv.to_xml()).unwrap(), adv);
        }
    }

    #[test]
    fn presence_advertisement_unknown_status_rejected() {
        let e = Element::new("jxta:PresenceAdvertisement")
            .with_child(Element::new("Peer").with_text(peer(4).to_urn()))
            .with_child(Element::new("Status").with_text("lurking"))
            .with_child(Element::new("Sequence").with_text("1"));
        assert!(PresenceAdvertisement::from_element(&e).is_err());
    }

    #[test]
    fn statistics_advertisement_roundtrip() {
        let adv = StatisticsAdvertisement {
            peer: peer(5),
            messages_sent: 10,
            bytes_sent: 1 << 30,
            uptime_secs: 3600,
        };
        assert_eq!(StatisticsAdvertisement::from_xml(&adv.to_xml()).unwrap(), adv);
    }

    #[test]
    fn unknown_children_are_ignored() {
        // Forward compatibility and the enveloped <Signature> element.
        let adv = PipeAdvertisement {
            owner: peer(6),
            group: GroupId::new("g"),
            name: "pipe".into(),
        };
        let mut element = adv.to_element();
        element.push_child(Element::new("Signature").with_text("fake"));
        element.push_child(Element::new("FutureExtension"));
        assert_eq!(PipeAdvertisement::from_element(&element).unwrap(), adv);
    }

    #[test]
    fn invalid_peer_urn_rejected() {
        let e = Element::new("jxta:PresenceAdvertisement")
            .with_child(Element::new("Peer").with_text("urn:jxta:peer:nothex"))
            .with_child(Element::new("Status").with_text("online"))
            .with_child(Element::new("Sequence").with_text("1"));
        assert!(matches!(
            PresenceAdvertisement::from_element(&e),
            Err(OverlayError::AdvertisementParse(_))
        ));
    }

    #[test]
    fn from_xml_propagates_parse_errors() {
        assert!(matches!(
            PipeAdvertisement::from_xml("<unclosed"),
            Err(OverlayError::AdvertisementParse(_))
        ));
    }
}
