//! HyParView-style partial views for the epidemic broker backbone.
//!
//! A full-mesh backbone keeps O(N²) edges and pays O(N) gossip fan-out per
//! publish, which caps the broker count long before the target client scale.
//! This module gives each broker a [`PartialView`] over its *known* peer set
//! (the admission set built by `add_peer_broker` stays complete — it is what
//! replay protection and the shard ring key off):
//!
//! * a small **active view** — the only peers this broker eagerly routes
//!   gossip, anti-entropy digests and Plumtree traffic to, bounding the
//!   per-broker degree at O(active) instead of O(N);
//! * a larger **passive view** — a reservoir of known-alive peers used to
//!   heal the active view when a member fails (HyParView's
//!   failure-triggered promotion) and refreshed by periodic shuffles.
//!
//! One deviation from the randomized original keeps the overlay *provably*
//! connected under the deterministic tests: every view pins the broker's
//! **ring successor** (the next live broker id in sorted wrap-around order)
//! into the active set.  The successor edges of all brokers form a cycle over
//! the live set, so the union of active views is connected regardless of what
//! the pseudo-random promotions and shuffles do — anti-entropy over active
//! edges therefore reaches every broker transitively, which is what makes
//! lazy dissemination safe to adopt.
//!
//! The view is plain data: the [`crate::broker::Broker`] owns one behind a
//! classed lock and drives it from `add_peer_broker` / `remove_peer_broker`
//! and the shuffle wire messages ([`crate::message::MessageKind::MembershipShuffle`]).

use crate::id::PeerId;
use crate::shard::{fnv1a, mix, FNV_OFFSET};
use std::collections::BTreeSet;

/// Default bound of the active view.  Existing federations of up to this
/// many peers keep complete views (every peer active), which preserves the
/// full-mesh behaviour byte for byte; larger backbones go partial.
pub const DEFAULT_ACTIVE_VIEW: usize = 8;

/// Default bound of the passive view (the healing reservoir).
pub const DEFAULT_PASSIVE_VIEW: usize = 32;

/// Time-to-live of a forward-join walk: how many active-view hops a join
/// announcement takes through a full neighbourhood before it is accepted
/// where it lands.
pub const FORWARD_JOIN_TTL: u32 = 3;

/// Outcome of [`PartialView::on_forward_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardJoin {
    /// The walking peer was taken into this view's active set.
    Accepted,
    /// The walk continues (the walking peer itself went to the passive view).
    Forwarded {
        /// The active-view member to hand the announcement to.
        next: PeerId,
        /// The remaining time-to-live, already decremented.
        ttl: u32,
    },
}

/// A HyParView-style partial view: bounded active and passive sets over the
/// known peer set, with deterministic pseudo-random eviction/promotion and a
/// pinned ring successor guaranteeing overlay connectivity.
#[derive(Debug)]
pub struct PartialView {
    own: PeerId,
    active_capacity: usize,
    passive_capacity: usize,
    /// Every admitted peer broker (the complete set; mirrors
    /// `Broker::peer_brokers`).
    known: BTreeSet<PeerId>,
    active: BTreeSet<PeerId>,
    passive: BTreeSet<PeerId>,
    /// SplitMix-style deterministic pseudo-random state, seeded from the
    /// broker's own id so every run of a seeded test makes identical choices.
    rng: u64,
}

impl PartialView {
    /// Creates an empty view for the broker `own`.  Capacities of zero are
    /// clamped to one — an empty active view would disconnect the broker.
    pub fn new(own: PeerId, active_capacity: usize, passive_capacity: usize) -> Self {
        PartialView {
            own,
            active_capacity: active_capacity.max(1),
            passive_capacity: passive_capacity.max(1),
            known: BTreeSet::new(),
            active: BTreeSet::new(),
            passive: BTreeSet::new(),
            rng: mix(fnv1a(FNV_OFFSET, own.as_bytes())),
        }
    }

    /// Next deterministic pseudo-random value.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.rng)
    }

    /// Picks a pseudo-random element of `set` for which `keep` is false.
    fn pick_random(&mut self, set: &BTreeSet<PeerId>, keep: impl Fn(&PeerId) -> bool) -> Option<PeerId> {
        let candidates: Vec<PeerId> = set.iter().filter(|p| !keep(p)).copied().collect();
        if candidates.is_empty() {
            return None;
        }
        let at = (self.next_rand() % candidates.len() as u64) as usize;
        Some(candidates[at])
    }

    /// The broker's ring successor: the next known peer id in sorted
    /// wrap-around order.  `None` when no peers are known.
    pub fn successor(&self) -> Option<PeerId> {
        self.known
            .range(self.own..)
            .find(|p| **p != self.own)
            .or_else(|| self.known.iter().next())
            .copied()
    }

    /// Re-establishes the connectivity pin: the ring successor must always
    /// sit in the active view (evicting a pseudo-random other member to the
    /// passive view if the active set is full).
    fn pin_successor(&mut self) {
        self.pin_successor_keeping(None);
    }

    /// [`PartialView::pin_successor`], additionally shielding `keep` from
    /// eviction (a freshly accepted peer must survive its own admission).
    /// When both pins exceed the capacity the view briefly widens by one
    /// rather than break either guarantee.
    fn pin_successor_keeping(&mut self, keep: Option<PeerId>) {
        let Some(successor) = self.successor() else {
            return;
        };
        if !self.active.contains(&successor) {
            self.passive.remove(&successor);
            self.active.insert(successor);
        }
        while self.active.len() > self.active_capacity {
            let Some(evicted) = self
                .pick_random(&self.active.clone(), |p| *p == successor || Some(*p) == keep)
            else {
                break;
            };
            self.active.remove(&evicted);
            self.demote_to_passive(evicted);
        }
    }

    /// Inserts `peer` into the passive view, evicting a pseudo-random member
    /// when the reservoir is full.
    fn demote_to_passive(&mut self, peer: PeerId) {
        if peer == self.own || self.active.contains(&peer) {
            return;
        }
        self.passive.insert(peer);
        while self.passive.len() > self.passive_capacity {
            let Some(evicted) = self.pick_random(&self.passive.clone(), |p| *p == peer) else {
                break;
            };
            self.passive.remove(&evicted);
        }
    }

    /// Promotes passive members into the active view until it is full again
    /// (HyParView's failure-triggered promotion) and re-pins the successor.
    fn refill_active(&mut self) {
        while self.active.len() < self.active_capacity && !self.passive.is_empty() {
            let Some(promoted) = self.pick_random(&self.passive.clone(), |_| false) else {
                break;
            };
            self.passive.remove(&promoted);
            self.active.insert(promoted);
        }
        self.pin_successor();
    }

    /// A newly admitted peer joins the view: it lands in the active set,
    /// displacing a pseudo-random member to the passive view when full —
    /// HyParView treats joins as the strongest signal of liveness.
    pub fn on_join(&mut self, peer: PeerId) {
        if peer == self.own {
            return;
        }
        self.known.insert(peer);
        if self.active.contains(&peer) {
            return;
        }
        self.passive.remove(&peer);
        if self.active.len() < self.active_capacity {
            self.active.insert(peer);
        } else {
            let successor = self.successor();
            match self.pick_random(&self.active.clone(), |p| Some(*p) == successor) {
                Some(evicted) => {
                    self.active.remove(&evicted);
                    self.active.insert(peer);
                    self.demote_to_passive(evicted);
                }
                None => self.demote_to_passive(peer),
            }
        }
        self.pin_successor();
    }

    /// One step of a forward-join walk: a join announcement travelling the
    /// active edges.  With room (or an exhausted TTL) the walking peer is
    /// accepted into the active view; otherwise it is remembered passively
    /// and the walk continues at a pseudo-random active member.
    pub fn on_forward_join(&mut self, peer: PeerId, ttl: u32) -> ForwardJoin {
        if peer == self.own {
            return ForwardJoin::Accepted;
        }
        self.known.insert(peer);
        if ttl == 0 || self.active.len() < self.active_capacity || self.active.contains(&peer) {
            self.passive.remove(&peer);
            self.active.insert(peer);
            self.pin_successor_keeping(Some(peer));
            return ForwardJoin::Accepted;
        }
        self.demote_to_passive(peer);
        match self.pick_random(&self.active.clone(), |p| *p == peer) {
            Some(next) => ForwardJoin::Forwarded { next, ttl: ttl - 1 },
            None => {
                self.passive.remove(&peer);
                self.active.insert(peer);
                self.pin_successor_keeping(Some(peer));
                ForwardJoin::Accepted
            }
        }
    }

    /// Removes a departed or failed peer from every set and heals the active
    /// view by promotion from the passive reservoir.
    pub fn on_failure(&mut self, peer: &PeerId) {
        self.known.remove(peer);
        self.passive.remove(peer);
        self.active.remove(peer);
        self.refill_active();
    }

    /// A pseudo-random sample of up to `k` known peers (active and passive
    /// alike) — the payload of an outgoing shuffle.
    pub fn shuffle_sample(&mut self, k: usize) -> Vec<PeerId> {
        let mut pool: Vec<PeerId> = self.active.union(&self.passive).copied().collect();
        let mut sample = Vec::with_capacity(k.min(pool.len()));
        while sample.len() < k && !pool.is_empty() {
            let at = (self.next_rand() % pool.len() as u64) as usize;
            sample.push(pool.swap_remove(at));
        }
        sample
    }

    /// Merges a received shuffle sample into the passive view.  Only peers
    /// already admitted to the known set are taken — a shuffle must not
    /// widen the admission set, just refresh the healing reservoir.
    pub fn integrate_shuffle(&mut self, peers: &[PeerId]) {
        for peer in peers {
            if *peer == self.own || !self.known.contains(peer) || self.active.contains(peer) {
                continue;
            }
            self.demote_to_passive(*peer);
        }
    }

    /// A pseudo-random active peer to shuffle with this round.
    pub fn shuffle_target(&mut self) -> Option<PeerId> {
        self.pick_random(&self.active.clone(), |_| false)
    }

    /// The active view, sorted (the deterministic pumping of the inline
    /// federation relies on a stable iteration order).
    pub fn active(&self) -> Vec<PeerId> {
        self.active.iter().copied().collect()
    }

    /// The passive view, sorted.
    pub fn passive(&self) -> Vec<PeerId> {
        self.passive.iter().copied().collect()
    }

    /// Returns `true` when `peer` is in the active view.
    pub fn is_active(&self, peer: &PeerId) -> bool {
        self.active.contains(peer)
    }

    /// Returns `true` when the view is complete — every known peer is
    /// active, so routing along the view is exactly the full mesh.
    pub fn is_complete(&self) -> bool {
        self.active.len() == self.known.len()
    }

    /// Number of known peers (the admission set this view partializes).
    pub fn known_count(&self) -> usize {
        self.known.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peers(n: usize, seed: u64) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    /// Every broker's active views over `views` (own id → active set), for
    /// the reachability oracle.
    fn reachable_from(views: &[(PeerId, Vec<PeerId>)], start: PeerId) -> BTreeSet<PeerId> {
        let mut seen: BTreeSet<PeerId> = BTreeSet::new();
        let mut queue = vec![start];
        while let Some(at) = queue.pop() {
            if !seen.insert(at) {
                continue;
            }
            if let Some((_, active)) = views.iter().find(|(id, _)| *id == at) {
                for next in active {
                    if !seen.contains(next) {
                        queue.push(*next);
                    }
                }
            }
        }
        seen
    }

    #[test]
    fn join_fills_active_then_spills_to_passive() {
        let ids = peers(8, 1);
        let mut view = PartialView::new(ids[0], 3, 4);
        for id in &ids[1..] {
            view.on_join(*id);
        }
        assert_eq!(view.active().len(), 3);
        assert_eq!(view.known_count(), 7);
        // Everything known is either active or passive.
        let mut held = view.active();
        held.extend(view.passive());
        held.sort();
        let mut expected: Vec<PeerId> = ids[1..].to_vec();
        expected.sort();
        assert_eq!(held, expected, "bounded passive still fits 4 of the 4 spilled");
    }

    #[test]
    fn successor_is_always_pinned_active() {
        let ids = peers(10, 2);
        let mut view = PartialView::new(ids[0], 2, 8);
        for id in &ids[1..] {
            view.on_join(*id);
            let successor = view.successor().unwrap();
            assert!(
                view.is_active(&successor),
                "successor must stay pinned in the active view"
            );
        }
    }

    #[test]
    fn failure_promotes_from_passive() {
        let ids = peers(9, 3);
        let mut view = PartialView::new(ids[0], 3, 8);
        for id in &ids[1..] {
            view.on_join(*id);
        }
        assert_eq!(view.active().len(), 3);
        let before_passive = view.passive().len();
        assert!(before_passive > 0, "fixture must have a healing reservoir");
        let victim = view.active()[0];
        view.on_failure(&victim);
        assert_eq!(view.active().len(), 3, "promotion refilled the active view");
        assert!(!view.is_active(&victim));
        assert!(!view.passive().contains(&victim));
        assert!(view.is_active(&view.successor().unwrap()));
    }

    #[test]
    fn forward_join_walks_full_views_and_lands() {
        let ids = peers(8, 4);
        let mut view = PartialView::new(ids[0], 2, 8);
        for id in &ids[1..6] {
            view.on_join(*id);
        }
        // Active is full: a fresh forward-join with TTL walks on.
        let newcomer = ids[6];
        match view.on_forward_join(newcomer, FORWARD_JOIN_TTL) {
            ForwardJoin::Forwarded { next, ttl } => {
                assert!(view.active().contains(&next));
                assert_eq!(ttl, FORWARD_JOIN_TTL - 1);
                assert!(view.passive().contains(&newcomer), "walker remembered passively");
            }
            ForwardJoin::Accepted => panic!("full active view must forward the walk"),
        }
        // TTL exhausted: accepted even into a full view.
        let walker = ids[7];
        assert_eq!(view.on_forward_join(walker, 0), ForwardJoin::Accepted);
        assert!(view.is_active(&walker));
        assert!(view.active().len() <= 2 + 1, "successor pin may briefly widen by one");
    }

    #[test]
    fn shuffle_refreshes_passive_but_never_widens_known() {
        let ids = peers(10, 5);
        let mut view = PartialView::new(ids[0], 2, 4);
        for id in &ids[1..6] {
            view.on_join(*id);
        }
        let strangers = &ids[6..]; // never admitted
        view.integrate_shuffle(strangers);
        for stranger in strangers {
            assert!(!view.passive().contains(stranger), "unadmitted peers are rejected");
        }
        let sample = view.shuffle_sample(3);
        assert!(sample.len() <= 3);
        for peer in &sample {
            assert!(view.known_count() >= 1 && *peer != ids[0]);
        }
    }

    #[test]
    fn complete_view_below_capacity_matches_full_mesh() {
        let ids = peers(5, 6);
        let mut view = PartialView::new(ids[0], DEFAULT_ACTIVE_VIEW, DEFAULT_PASSIVE_VIEW);
        for id in &ids[1..] {
            view.on_join(*id);
        }
        assert!(view.is_complete());
        let mut active = view.active();
        active.sort();
        let mut expected: Vec<PeerId> = ids[1..].to_vec();
        expected.sort();
        assert_eq!(active, expected);
    }

    #[test]
    fn successor_edges_connect_the_overlay() {
        // The connectivity argument in miniature: tiny active views over a
        // large peer set still reach everyone, because the pinned successor
        // edges alone form a cycle over the live set.
        let ids = peers(24, 7);
        let mut views: Vec<PartialView> = ids
            .iter()
            .map(|id| PartialView::new(*id, 2, 6))
            .collect();
        for view in views.iter_mut() {
            for id in &ids {
                view.on_join(*id);
            }
        }
        let edges: Vec<(PeerId, Vec<PeerId>)> =
            views.iter().map(|v| (v.own, v.active())).collect();
        let reached = reachable_from(&edges, ids[0]);
        assert_eq!(reached.len(), ids.len(), "active-view graph must be connected");
    }
}
