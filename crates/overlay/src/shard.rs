//! Consistent-hash shard ring for the broker federation.
//!
//! PR 2's federation fully replicates the advertisement index and group
//! membership to every broker: O(brokers²) gossip fan-out and O(total ads)
//! state per broker.  Structured overlays scale past that by *partitioning*
//! state: every entry is owned by a small, deterministic replica set instead
//! of the whole backbone, and lookups are routed to an owning replica.
//!
//! [`ShardRing`] implements the classic consistent-hash ring over broker
//! identifiers: each broker contributes [`VIRTUAL_NODES`] points on a 64-bit
//! ring (hashes of its identifier, so the ring is deterministic and seedless
//! — every broker that knows the same membership computes the same ring),
//! and an entry keyed by `(group, owner)` is replicated on the first K
//! distinct brokers encountered walking clockwise from the key's hash.
//! Virtual nodes keep the load spread even when the backbone is small, and
//! consistent hashing keeps migration minimal: adding or removing one broker
//! re-routes only the entries whose replica walk crosses the changed points.
//!
//! The hash is FNV-1a (64-bit).  It is not cryptographic and does not need
//! to be: shard placement is a *routing* decision, and every inter-broker
//! message that acts on it still passes the federation's admission control.

use crate::group::GroupId;
use crate::id::PeerId;

/// Ring points contributed by each broker.  16 points keep the per-broker
/// load within a few percent of even for the backbone sizes the federation
/// targets, while keeping ring maintenance trivially cheap.
pub const VIRTUAL_NODES: usize = 16;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, continuing from `state`.
pub(crate) fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        state ^= u64::from(*byte);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// SplitMix64 finalizer: FNV-1a alone has weak avalanche on short inputs
/// (consecutive virtual-node indexes land on correlated ring positions,
/// skewing the load); this scrambles the state into a uniform ring point.
pub(crate) fn mix(mut state: u64) -> u64 {
    state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    state ^ (state >> 31)
}

/// The shard key of an index or membership entry: the ring position of
/// `(group, owner)`.
pub fn shard_key(group: &GroupId, owner: &PeerId) -> u64 {
    let state = fnv1a(FNV_OFFSET, group.as_str().as_bytes());
    // A separator byte keeps ("ab", x) and ("a", b·x) from colliding.
    let state = fnv1a(state, &[0xff]);
    mix(fnv1a(state, owner.as_bytes()))
}

/// Depth of the anti-entropy repair tree over the shard-key space: one hex
/// digit of the 64-bit key per level, so the tree has 16⁵ ≈ one million
/// potential leaves.  At the target scale of 10⁵–10⁶ entries per shard a
/// divergent leaf therefore holds only a handful of entries, and the final
/// repair leg ships O(delta) bytes instead of the whole section.
pub const REPAIR_TREE_DEPTH: u32 = 5;

/// Fan-out of every repair-tree node (one hex digit of the key per level).
pub const REPAIR_TREE_ARITY: usize = 16;

/// Bits of shard key consumed by the leaf level.
const LEAF_BITS: u32 = 4 * REPAIR_TREE_DEPTH;

/// Wire size of one encoded tree-node summary inside an `AntiEntropyRange`
/// message: depth (u8) · prefix (u64) · xor (u64) · count (u64), big-endian.
pub const NODE_RECORD_BYTES: usize = 25;

/// Aggregate summary of one repair-tree node: the XOR of the entry hashes
/// under it plus their count.  XOR is order-independent and self-inverse, so
/// summaries compose up the tree and an insert never needs a rebuild; the
/// count disambiguates the empty set from XOR-cancelling pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeSummary {
    /// XOR of the (already mixed) per-entry hashes under this node.
    pub xor: u64,
    /// Number of entries under this node.
    pub count: u64,
}

impl NodeSummary {
    /// Collapses the summary into a single comparable hash for the root
    /// digest exchanged every round.
    pub fn digest(&self) -> u64 {
        mix(self.xor ^ mix(self.count ^ FNV_OFFSET))
    }
}

/// A sparse hash tree over the 64-bit shard-key space for one replicated
/// section.  Only non-empty leaves are stored; interior nodes are aggregated
/// on demand with a range scan, which keeps inserts O(log leaves) and the
/// structure cheap enough to cache per peer.
///
/// A node at `depth` is addressed by `prefix`: the top `4·depth` bits of the
/// keys it covers.  Depth 0 is the root (prefix 0); depth
/// [`REPAIR_TREE_DEPTH`] is the leaf level.
#[derive(Debug, Clone, Default)]
pub struct SectionTree {
    /// Leaf summaries keyed by leaf prefix (top [`LEAF_BITS`] bits of key).
    leaves: std::collections::BTreeMap<u64, NodeSummary>,
}

impl SectionTree {
    /// Folds one entry (its shard key and mixed entry hash) into the tree.
    pub fn insert(&mut self, key: u64, entry_hash: u64) {
        let leaf = self.leaves.entry(key >> (64 - LEAF_BITS)).or_default();
        leaf.xor ^= entry_hash;
        leaf.count += 1;
    }

    /// Summary of the whole tree.
    pub fn root(&self) -> NodeSummary {
        self.node(0, 0)
    }

    /// Summary of the node at `(depth, prefix)`.  Depths beyond the leaf
    /// level clamp to it; the caller is responsible for keeping `prefix`
    /// within `4·depth` bits.
    pub fn node(&self, depth: u32, prefix: u64) -> NodeSummary {
        let span = LEAF_BITS - 4 * depth.min(REPAIR_TREE_DEPTH);
        let lo = prefix << span;
        let hi = lo | ((1u64 << span) - 1);
        let mut total = NodeSummary::default();
        for (_, leaf) in self.leaves.range(lo..=hi) {
            total.xor ^= leaf.xor;
            total.count += leaf.count;
        }
        total
    }

    /// Summaries of the [`REPAIR_TREE_ARITY`] children of `(depth, prefix)`,
    /// in child-index order, empty children included — a peer needs the
    /// zero summaries to notice entries only it holds.  One pass over the
    /// node's leaves.  Returns all-empty summaries at the leaf level.
    pub fn children(&self, depth: u32, prefix: u64) -> [NodeSummary; REPAIR_TREE_ARITY] {
        let mut out = [NodeSummary::default(); REPAIR_TREE_ARITY];
        if depth >= REPAIR_TREE_DEPTH {
            return out;
        }
        let span = LEAF_BITS - 4 * depth;
        let child_span = span - 4;
        let lo = prefix << span;
        let hi = lo | ((1u64 << span) - 1);
        for (leaf_prefix, leaf) in self.leaves.range(lo..=hi) {
            let child = ((leaf_prefix >> child_span) & 0xf) as usize;
            out[child].xor ^= leaf.xor;
            out[child].count += leaf.count;
        }
        out
    }
}

/// The inclusive shard-key range covered by the node at `(depth, prefix)`.
pub fn node_range(depth: u32, prefix: u64) -> (u64, u64) {
    let depth = depth.min(REPAIR_TREE_DEPTH);
    if depth == 0 {
        return (0, u64::MAX);
    }
    let shift = 64 - 4 * depth;
    let lo = prefix << shift;
    (lo, lo | ((1u64 << shift) - 1))
}

/// Appends one node-summary record to a wire blob (see [`NODE_RECORD_BYTES`]).
pub fn encode_node(out: &mut Vec<u8>, depth: u32, prefix: u64, summary: NodeSummary) {
    out.push(depth as u8);
    out.extend_from_slice(&prefix.to_be_bytes());
    out.extend_from_slice(&summary.xor.to_be_bytes());
    out.extend_from_slice(&summary.count.to_be_bytes());
}

/// Decodes a wire blob of node-summary records.  Trailing partial records
/// are dropped; a malformed blob simply yields fewer nodes (the descent is
/// stateless, so under-delivery only delays convergence by a round).
pub fn decode_nodes(bytes: &[u8]) -> Vec<(u32, u64, NodeSummary)> {
    bytes
        .chunks_exact(NODE_RECORD_BYTES)
        .map(|record| {
            let word = |at: usize| u64::from_be_bytes(record[at..at + 8].try_into().unwrap());
            (
                u32::from(record[0]),
                word(1),
                NodeSummary {
                    xor: word(9),
                    count: word(17),
                },
            )
        })
        .collect()
}

/// A deterministic consistent-hash ring over the brokers of a federation.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// Number of replicas per entry (K).
    replication: usize,
    /// Sorted ring points: (position, broker).
    points: Vec<(u64, PeerId)>,
    /// Sorted distinct members.
    brokers: Vec<PeerId>,
}

impl ShardRing {
    /// Creates an empty ring with replication factor `replication` (K).
    ///
    /// A replication factor of zero is clamped to one: an entry always has
    /// at least one home.
    pub fn new(replication: usize) -> Self {
        ShardRing {
            replication: replication.max(1),
            points: Vec::new(),
            brokers: Vec::new(),
        }
    }

    /// The replication factor K.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Current ring members, sorted.
    pub fn brokers(&self) -> &[PeerId] {
        &self.brokers
    }

    /// Number of member brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Returns `true` when no broker is on the ring.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Adds a broker's virtual nodes to the ring (idempotent).
    pub fn insert(&mut self, broker: PeerId) {
        if self.brokers.contains(&broker) {
            return;
        }
        self.brokers.push(broker);
        self.brokers.sort();
        for vnode in 0..VIRTUAL_NODES {
            let state = fnv1a(FNV_OFFSET, broker.as_bytes());
            let position = mix(fnv1a(state, &(vnode as u32).to_be_bytes()));
            self.points.push((position, broker));
        }
        self.points.sort();
    }

    /// Removes a broker and its virtual nodes (idempotent).
    pub fn remove(&mut self, broker: &PeerId) {
        self.brokers.retain(|b| b != broker);
        self.points.retain(|(_, b)| b != broker);
    }

    /// The replica set of `(group, owner)`: the first `min(K, members)`
    /// distinct brokers walking clockwise from the key's ring position.
    /// Deterministic — every broker with the same membership computes the
    /// identical, identically-ordered set.
    pub fn replicas(&self, group: &GroupId, owner: &PeerId) -> Vec<PeerId> {
        self.replicas_for_key(shard_key(group, owner))
    }

    /// Replica set for a raw ring position (see [`ShardRing::replicas`]).
    pub fn replicas_for_key(&self, key: u64) -> Vec<PeerId> {
        let want = self.replication.min(self.brokers.len());
        let mut replicas = Vec::with_capacity(want);
        if want == 0 {
            return replicas;
        }
        let start = self.points.partition_point(|(position, _)| *position < key);
        for i in 0..self.points.len() {
            let (_, broker) = self.points[(start + i) % self.points.len()];
            if !replicas.contains(&broker) {
                replicas.push(broker);
                if replicas.len() == want {
                    break;
                }
            }
        }
        replicas
    }

    /// Returns `true` if `broker` is one of the replicas of `(group, owner)`.
    pub fn is_replica(&self, group: &GroupId, owner: &PeerId, broker: &PeerId) -> bool {
        self.replicas(group, owner).contains(broker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn brokers(n: usize) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(0x51A2);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    fn ring_of(members: &[PeerId], k: usize) -> ShardRing {
        let mut ring = ShardRing::new(k);
        for b in members {
            ring.insert(*b);
        }
        ring
    }

    #[test]
    fn empty_ring_has_no_replicas() {
        let ring = ShardRing::new(2);
        assert!(ring.is_empty());
        assert!(ring
            .replicas(&GroupId::new("g"), &brokers(1)[0])
            .is_empty());
    }

    #[test]
    fn replication_factor_is_clamped_to_one() {
        assert_eq!(ShardRing::new(0).replication(), 1);
    }

    #[test]
    fn replica_sets_have_k_distinct_members() {
        let members = brokers(5);
        let ring = ring_of(&members, 2);
        assert_eq!(ring.len(), 5);
        let mut rng = HmacDrbg::from_seed_u64(7);
        for i in 0..50 {
            let owner = PeerId::random(&mut rng);
            let replicas = ring.replicas(&GroupId::new(format!("g{}", i % 3)), &owner);
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1]);
            assert!(replicas.iter().all(|r| members.contains(r)));
        }
    }

    #[test]
    fn small_backbones_replicate_everywhere() {
        // With fewer brokers than K every broker is a replica, so a sharded
        // two-broker federation behaves exactly like a fully replicated one.
        let members = brokers(2);
        let ring = ring_of(&members, 3);
        let owner = brokers(3)[2];
        let mut replicas = ring.replicas(&GroupId::new("g"), &owner);
        replicas.sort();
        let mut expected = members.clone();
        expected.sort();
        assert_eq!(replicas, expected);
    }

    #[test]
    fn placement_is_insert_order_insensitive() {
        let members = brokers(4);
        let forward = ring_of(&members, 2);
        let mut reversed_members = members.clone();
        reversed_members.reverse();
        let reversed = ring_of(&reversed_members, 2);
        let mut rng = HmacDrbg::from_seed_u64(9);
        for _ in 0..20 {
            let owner = PeerId::random(&mut rng);
            let group = GroupId::new("class");
            assert_eq!(forward.replicas(&group, &owner), reversed.replicas(&group, &owner));
        }
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let members = brokers(3);
        let mut ring = ring_of(&members, 2);
        ring.insert(members[0]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.points.len(), 3 * VIRTUAL_NODES);
        ring.remove(&members[1]);
        ring.remove(&members[1]);
        assert_eq!(ring.len(), 2);
        assert!(!ring.brokers().contains(&members[1]));
        assert!(ring
            .replicas(&GroupId::new("g"), &members[1])
            .iter()
            .all(|r| *r != members[1]));
    }

    #[test]
    fn membership_change_migrates_a_minority_of_keys() {
        // Consistent hashing: removing one of five brokers must not reshuffle
        // the placement of keys that never touched it.
        let members = brokers(5);
        let before = ring_of(&members, 2);
        let mut after = before.clone();
        after.remove(&members[4]);

        let mut rng = HmacDrbg::from_seed_u64(11);
        let mut moved = 0usize;
        let total = 200usize;
        for _ in 0..total {
            let owner = PeerId::random(&mut rng);
            let group = GroupId::new("g");
            let old = before.replicas(&group, &owner);
            let new = after.replicas(&group, &owner);
            if old.contains(&members[4]) {
                // Keys hosted by the removed broker get exactly one new home.
                assert_eq!(
                    new.iter().filter(|r| !old.contains(r)).count(),
                    1,
                    "one replacement replica"
                );
            } else {
                // Everything else stays exactly where it was.
                assert_eq!(old, new);
            }
            if old != new {
                moved += 1;
            }
        }
        assert!(
            moved < total / 2,
            "only the removed broker's share may move ({moved}/{total})"
        );
    }

    #[test]
    fn load_is_reasonably_balanced() {
        let members = brokers(4);
        let ring = ring_of(&members, 2);
        let mut counts = std::collections::HashMap::new();
        let mut rng = HmacDrbg::from_seed_u64(13);
        let total = 400usize;
        for _ in 0..total {
            let owner = PeerId::random(&mut rng);
            for replica in ring.replicas(&GroupId::new("g"), &owner) {
                *counts.entry(replica).or_insert(0usize) += 1;
            }
        }
        // Perfect balance would be total*K/N = 200 per broker; accept a wide
        // band — the assertion guards against degenerate placement, not
        // statistical noise.
        for member in &members {
            let share = counts.get(member).copied().unwrap_or(0);
            assert!(
                (60..=340).contains(&share),
                "broker share out of band: {share}"
            );
        }
    }

    fn random_entries(n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        (0..n)
            .map(|_| {
                let mut bytes = [0u8; 16];
                rng.generate(&mut bytes);
                (
                    u64::from_be_bytes(bytes[..8].try_into().unwrap()),
                    u64::from_be_bytes(bytes[8..].try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn tree_root_is_insert_order_independent() {
        let entries = random_entries(500, 0x7EE1);
        let mut forward = SectionTree::default();
        let mut backward = SectionTree::default();
        for (key, hash) in &entries {
            forward.insert(*key, *hash);
        }
        for (key, hash) in entries.iter().rev() {
            backward.insert(*key, *hash);
        }
        assert_eq!(forward.root(), backward.root());
        assert_eq!(forward.root().count, 500);
        assert_ne!(forward.root().digest(), SectionTree::default().root().digest());
    }

    #[test]
    fn children_compose_to_their_parent_at_every_depth() {
        let entries = random_entries(300, 0x7EE2);
        let mut tree = SectionTree::default();
        for (key, hash) in &entries {
            tree.insert(*key, *hash);
        }
        for depth in 0..REPAIR_TREE_DEPTH {
            // Spot-check the prefixes actually populated by the entries.
            for (key, _) in entries.iter().take(20) {
                let prefix = if depth == 0 { 0 } else { key >> (64 - 4 * depth) };
                let parent = tree.node(depth, prefix);
                let children = tree.children(depth, prefix);
                let xor = children.iter().fold(0u64, |acc, c| acc ^ c.xor);
                let count: u64 = children.iter().map(|c| c.count).sum();
                assert_eq!(parent, NodeSummary { xor, count });
            }
        }
    }

    #[test]
    fn single_divergent_entry_isolates_to_one_child_per_level() {
        let entries = random_entries(2000, 0x7EE3);
        let mut a = SectionTree::default();
        let mut b = SectionTree::default();
        for (key, hash) in &entries {
            a.insert(*key, *hash);
            b.insert(*key, *hash);
        }
        let (extra_key, extra_hash) = (0x1234_5678_9abc_def0u64, 0xfeed);
        a.insert(extra_key, extra_hash);
        let mut prefix = 0u64;
        for depth in 0..REPAIR_TREE_DEPTH {
            let ours = a.children(depth, prefix);
            let theirs = b.children(depth, prefix);
            let divergent: Vec<usize> =
                (0..REPAIR_TREE_ARITY).filter(|i| ours[*i] != theirs[*i]).collect();
            assert_eq!(divergent.len(), 1, "depth {depth}");
            prefix = (prefix << 4) | divergent[0] as u64;
        }
        let (lo, hi) = node_range(REPAIR_TREE_DEPTH, prefix);
        assert!((lo..=hi).contains(&extra_key));
    }

    #[test]
    fn node_ranges_tile_the_parent_range() {
        for (depth, prefix) in [(0u32, 0u64), (1, 3), (2, 0x2a), (REPAIR_TREE_DEPTH - 1, 7)] {
            let (lo, hi) = node_range(depth, prefix);
            let mut next = lo;
            for child in 0..REPAIR_TREE_ARITY as u64 {
                let (child_lo, child_hi) = node_range(depth + 1, (prefix << 4) | child);
                assert_eq!(child_lo, next);
                next = child_hi.wrapping_add(1);
            }
            assert_eq!(next, hi.wrapping_add(1));
        }
        assert_eq!(node_range(0, 0), (0, u64::MAX));
    }

    #[test]
    fn node_records_roundtrip_and_tolerate_truncation() {
        let mut blob = Vec::new();
        let summary = NodeSummary { xor: 0xabcd, count: 42 };
        encode_node(&mut blob, 3, 0x123, summary);
        encode_node(&mut blob, 5, 0xf_ffff, NodeSummary::default());
        assert_eq!(blob.len(), 2 * NODE_RECORD_BYTES);
        let decoded = decode_nodes(&blob);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], (3, 0x123, summary));
        assert_eq!(decoded[1].2, NodeSummary::default());
        // A truncated trailing record is dropped, not misparsed.
        blob.truncate(2 * NODE_RECORD_BYTES - 1);
        assert_eq!(decode_nodes(&blob).len(), 1);
    }

    #[test]
    fn shard_key_separates_group_and_owner_bytes() {
        let owner = brokers(1)[0];
        assert_ne!(
            shard_key(&GroupId::new("ab"), &owner),
            shard_key(&GroupId::new("a"), &owner)
        );
    }
}
