//! SWIM-style failure detection for the epidemic broker backbone.
//!
//! PR 9's HyParView/Plumtree fabric disseminates at O(active view) cost but
//! is blind to failures: a partial view only learns a broker died through an
//! explicit `remove_broker` call, so a crashed broker silently blackholes its
//! eager edges until anti-entropy limps the state back.  This module supplies
//! the missing detection layer, following SWIM (Das et al.) with the
//! Lifeguard local-health refinement (Dadgar et al.):
//!
//! * **Probing.**  Each repair tick the broker direct-pings one member,
//!   round-robin over a deterministically shuffled ring so every member is
//!   probed within one full rotation.  A probe that goes unacknowledged fans
//!   out `k` *indirect* ping-requests through other members — redundant
//!   routes distinguish "the target died" from "my edge to the target is bad".
//! * **Suspicion, not execution.**  A timed-out probe only marks the target
//!   `Suspect` with a deadline measured in ticks.  Suspicion is gossiped; the
//!   accused broker — still alive and still on the gossip plane — refutes by
//!   re-announcing itself with a **higher incarnation number**, which every
//!   broker orders above the suspicion.  Only an unrefuted deadline expiry
//!   confirms `Dead`.
//! * **Local health.**  A broker that is itself backlogged cannot tell a slow
//!   peer from a dead one.  The [`SwimDetector::set_health`] multiplier
//!   stretches every timeout while the local inbox lags, so overload degrades
//!   to slower detection instead of a false-positive storm.
//!
//! The detector is plain data behind a classed lock in
//! [`crate::broker::Broker`]; it never touches the clock or the network.
//! Time is the repair-cadence tick counter, and all wire traffic
//! ([`crate::message::MessageKind::SwimPing`] / `SwimPingReq` / `SwimAck`,
//! plus the gossiped `swim-*` events) is sent by the broker through the
//! sequenced admission-controlled path.

use crate::id::PeerId;
use crate::shard::{fnv1a, mix, FNV_OFFSET};
use std::collections::BTreeMap;

/// How many ticks an unrefuted suspicion survives before it is confirmed
/// `Dead` (scaled by the local-health multiplier).
pub const DEFAULT_SUSPECT_TICKS: u64 = 3;

/// How many indirect ping-requests fan out when a direct probe times out.
pub const DEFAULT_INDIRECT_PROBES: usize = 2;

/// Cap of the local-health multiplier: even a hopelessly backlogged broker
/// keeps detecting, just this many times slower.
pub const MAX_HEALTH: u64 = 8;

/// The probe budget, in repair ticks, within which a crash-stopped broker
/// must be confirmed `Dead` federation-wide (at health 1): one tick to be
/// selected for probing somewhere, two for the direct+indirect timeouts,
/// [`DEFAULT_SUSPECT_TICKS`] for the unrefuted suspicion to expire, and the
/// remainder as dissemination slack for the `swim-dead` broadcast.  The E9
/// fault-injection sweep and CI assert detection within this bound.
pub const PROBE_BUDGET_TICKS: u64 = 12;

/// Liveness verdict for one member, driven by probe acks, gossip and
/// incarnation ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Responding (or not yet contradicted).
    Alive,
    /// A probe timed out (or a peer gossiped a suspicion); unless refuted by
    /// a higher incarnation before `deadline` (a tick count), the member is
    /// confirmed dead.
    Suspect {
        /// Tick at which the unrefuted suspicion becomes a death verdict.
        deadline: u64,
    },
    /// Confirmed dead.  Still probed — a recovered broker acks and is
    /// resurrected, no operator intervention needed.
    Dead,
}

/// Per-member record: liveness state plus the highest incarnation observed.
#[derive(Debug, Clone, Copy)]
pub struct PeerRecord {
    /// Current liveness verdict.
    pub state: PeerState,
    /// Highest incarnation number observed for this member.  Refutations
    /// carry a higher incarnation than the suspicion they cancel.
    pub incarnation: u64,
}

/// What one detector tick decided: the probes to send and the state
/// transitions to disseminate.  The broker turns this into wire traffic
/// *after* releasing the detector lock.
#[derive(Debug, Default, Clone)]
pub struct TickPlan {
    /// Member to direct-probe this tick (`SwimPing`).
    pub probe: Option<PeerId>,
    /// Indirect probes for a timed-out direct probe: `(relay, target)` pairs
    /// to send as `SwimPingReq`.
    pub indirect: Vec<(PeerId, PeerId)>,
    /// Members newly marked `Suspect` this tick, with the incarnation the
    /// suspicion accuses (gossiped as `swim-suspect`).
    pub new_suspects: Vec<(PeerId, u64)>,
    /// Members whose suspicion deadline expired unrefuted this tick, with
    /// the dead incarnation (gossiped as `swim-dead`).
    pub new_dead: Vec<(PeerId, u64)>,
}

/// Outcome of feeding a suspicion into the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspectOutcome {
    /// Stale (older incarnation) or unknown member: nothing changed.
    Ignored,
    /// The member is now locally suspect.
    Suspected,
    /// The suspicion accuses *this* broker: it refutes by re-announcing the
    /// carried (higher) incarnation (gossiped as `swim-alive`).
    RefuteWith(u64),
}

/// Outcome of feeding an alive announcement (or direct liveness evidence)
/// into the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliveOutcome {
    /// Stale or unknown: nothing changed.
    Ignored,
    /// Incarnation refreshed; the member was not under suspicion.
    Refreshed,
    /// A live suspicion (or death verdict) was cancelled — the member is
    /// alive after all.  The broker re-admits it to the membership view.
    Cleared,
}

/// Outcome of feeding a death verdict into the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadOutcome {
    /// Stale (a newer incarnation already cleared it) or unknown member.
    Ignored,
    /// The member is now locally confirmed dead; the broker evicts it from
    /// the membership view and the Plumtree edges.
    Confirmed,
    /// The verdict accuses *this* broker: refute with the carried
    /// incarnation bumped past the accusation.
    RefuteWith(u64),
}

/// An outstanding direct probe.
#[derive(Debug, Clone, Copy)]
struct Probe {
    target: PeerId,
    sent_at: u64,
    indirect_launched: bool,
}

/// The per-broker SWIM failure detector.  Pure state machine: ticks come
/// from the repair cadence, events from the wire handlers; outputs are
/// [`TickPlan`]s and outcome enums the broker turns into traffic.
#[derive(Debug)]
pub struct SwimDetector {
    own: PeerId,
    /// This broker's own incarnation, bumped to refute suspicions about it.
    incarnation: u64,
    members: BTreeMap<PeerId, PeerRecord>,
    /// Probe rotation: every member (dead ones included — that is the
    /// resurrection path) in deterministically shuffled order.
    ring: Vec<PeerId>,
    cursor: usize,
    /// SplitMix-style deterministic pseudo-random state (same construction
    /// as [`crate::membership::PartialView`]), seeded from the broker id.
    rng: u64,
    tick: u64,
    /// Lifeguard local-health multiplier (≥ 1): all timeouts stretch by it.
    health: u64,
    outstanding: Option<Probe>,
    suspect_ticks: u64,
    indirect_probes: usize,
}

impl SwimDetector {
    /// Creates a detector for the broker `own` with the default timeouts.
    pub fn new(own: PeerId) -> Self {
        SwimDetector {
            own,
            incarnation: 0,
            members: BTreeMap::new(),
            ring: Vec::new(),
            cursor: 0,
            rng: mix(fnv1a(FNV_OFFSET, own.as_bytes())),
            tick: 0,
            health: 1,
            outstanding: None,
            suspect_ticks: DEFAULT_SUSPECT_TICKS,
            indirect_probes: DEFAULT_INDIRECT_PROBES,
        }
    }

    /// Next deterministic pseudo-random value.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.rng)
    }

    /// This broker's current incarnation.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The current local-health multiplier.
    pub fn health(&self) -> u64 {
        self.health
    }

    /// Sets the Lifeguard multiplier from the broker's own inbox lag:
    /// `1 + backlog / threshold`, capped at [`MAX_HEALTH`].  A backlogged
    /// broker stretches its timeouts instead of accusing healthy peers.
    pub fn set_backlog(&mut self, backlog: u64, threshold: u64) {
        let threshold = threshold.max(1);
        self.health = (1 + backlog / threshold).min(MAX_HEALTH);
    }

    /// The record for `peer`, if it is a tracked member.
    pub fn record(&self, peer: &PeerId) -> Option<PeerRecord> {
        self.members.get(peer).copied()
    }

    /// Members currently confirmed dead.
    pub fn dead_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, r)| r.state == PeerState::Dead)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Reconciles the tracked member set with the admission set: newly
    /// admitted brokers start `Alive`, removed ones are forgotten.  The
    /// probe ring is rebuilt lazily at its next wrap.
    pub fn sync_members(&mut self, peers: &[PeerId]) {
        let mut changed = false;
        for peer in peers {
            if *peer == self.own {
                continue;
            }
            self.members.entry(*peer).or_insert_with(|| {
                changed = true;
                PeerRecord {
                    state: PeerState::Alive,
                    incarnation: 0,
                }
            });
        }
        let before = self.members.len();
        self.members
            .retain(|peer, _| peers.contains(peer) && *peer != self.own);
        if changed || self.members.len() != before {
            self.ring.clear();
            self.cursor = 0;
        }
    }

    /// Rebuilds and reshuffles the probe ring (deterministic Fisher–Yates).
    fn reshuffle_ring(&mut self) {
        self.ring = self.members.keys().copied().collect();
        for i in (1..self.ring.len()).rev() {
            let j = (self.next_rand() % (i as u64 + 1)) as usize;
            self.ring.swap(i, j);
        }
        self.cursor = 0;
    }

    /// One failure-detection tick, advancing timers and choosing the next
    /// probe.  The caller (the broker repair cadence) turns the returned
    /// plan into wire traffic after releasing the detector lock.
    pub fn tick(&mut self) -> TickPlan {
        self.tick += 1;
        let mut plan = TickPlan::default();

        // Timers of the outstanding probe: after `health` ticks without an
        // ack fan out the indirect probes; after `2 * health` give up and
        // mark the target suspect.
        if let Some(probe) = self.outstanding {
            let elapsed = self.tick.saturating_sub(probe.sent_at);
            if elapsed >= 2 * self.health {
                self.outstanding = None;
                if let Some(record) = self.members.get_mut(&probe.target) {
                    if record.state == PeerState::Alive {
                        record.state = PeerState::Suspect {
                            deadline: self.tick + self.suspect_ticks * self.health,
                        };
                        plan.new_suspects.push((probe.target, record.incarnation));
                    }
                }
            } else if elapsed >= self.health && !probe.indirect_launched {
                if let Some(slot) = self.outstanding.as_mut() {
                    slot.indirect_launched = true;
                }
                let mut relays: Vec<PeerId> = self
                    .members
                    .iter()
                    .filter(|(peer, record)| {
                        **peer != probe.target && record.state == PeerState::Alive
                    })
                    .map(|(peer, _)| *peer)
                    .collect();
                for _ in 0..self.indirect_probes.min(relays.len()) {
                    let at = (self.next_rand() % relays.len() as u64) as usize;
                    plan.indirect.push((relays.swap_remove(at), probe.target));
                }
            }
        }

        // Expire unrefuted suspicions.
        let now = self.tick;
        for (peer, record) in self.members.iter_mut() {
            if let PeerState::Suspect { deadline } = record.state {
                if now >= deadline {
                    record.state = PeerState::Dead;
                    plan.new_dead.push((*peer, record.incarnation));
                }
            }
        }

        // Choose the next direct probe (one outstanding at a time).
        if self.outstanding.is_none() && !self.members.is_empty() {
            if self.cursor >= self.ring.len() {
                self.reshuffle_ring();
            }
            if let Some(target) = self.ring.get(self.cursor).copied() {
                self.cursor += 1;
                if self.members.contains_key(&target) {
                    self.outstanding = Some(Probe {
                        target,
                        sent_at: self.tick,
                        indirect_launched: false,
                    });
                    plan.probe = Some(target);
                }
            }
        }
        plan
    }

    /// An ack (direct or relayed) arrived from `peer` carrying its
    /// incarnation: direct evidence of life.  Clears the outstanding probe,
    /// cancels any suspicion and resurrects a dead record.
    pub fn on_ack(&mut self, peer: PeerId, incarnation: u64) -> AliveOutcome {
        if self.outstanding.is_some_and(|p| p.target == peer) {
            self.outstanding = None;
        }
        self.on_contact(peer, incarnation)
    }

    /// Any direct contact with `peer` (an ack, a ping from it, a shuffle
    /// carrying its incarnation): first-hand evidence it is alive, which
    /// overrides gossip verdicts regardless of incarnation ordering.
    pub fn on_contact(&mut self, peer: PeerId, incarnation: u64) -> AliveOutcome {
        let Some(record) = self.members.get_mut(&peer) else {
            return AliveOutcome::Ignored;
        };
        record.incarnation = record.incarnation.max(incarnation);
        match record.state {
            PeerState::Alive => AliveOutcome::Refreshed,
            PeerState::Suspect { .. } | PeerState::Dead => {
                record.state = PeerState::Alive;
                AliveOutcome::Cleared
            }
        }
    }

    /// A gossiped suspicion about `peer` at `incarnation`.  Second-hand:
    /// only honoured when the accused incarnation is current, and always
    /// refuted when the accused is this broker itself.
    pub fn on_suspect(&mut self, peer: PeerId, incarnation: u64) -> SuspectOutcome {
        if peer == self.own {
            // Refute: adopt an incarnation strictly above the accusation.
            self.incarnation = self.incarnation.max(incarnation) + 1;
            return SuspectOutcome::RefuteWith(self.incarnation);
        }
        let deadline = self.tick + self.suspect_ticks * self.health;
        let Some(record) = self.members.get_mut(&peer) else {
            return SuspectOutcome::Ignored;
        };
        if incarnation < record.incarnation {
            return SuspectOutcome::Ignored; // refuted already
        }
        record.incarnation = incarnation;
        match record.state {
            PeerState::Alive => {
                record.state = PeerState::Suspect { deadline };
                SuspectOutcome::Suspected
            }
            PeerState::Suspect { .. } | PeerState::Dead => SuspectOutcome::Ignored,
        }
    }

    /// A gossiped alive announcement (a refutation) for `peer` at
    /// `incarnation`.  Cancels suspicions and death verdicts of any older
    /// incarnation.
    pub fn on_alive(&mut self, peer: PeerId, incarnation: u64) -> AliveOutcome {
        if peer == self.own {
            self.incarnation = self.incarnation.max(incarnation);
            return AliveOutcome::Ignored;
        }
        let Some(record) = self.members.get_mut(&peer) else {
            return AliveOutcome::Ignored;
        };
        match record.state {
            PeerState::Alive => {
                if incarnation > record.incarnation {
                    record.incarnation = incarnation;
                }
                AliveOutcome::Refreshed
            }
            PeerState::Suspect { .. } | PeerState::Dead => {
                // A refutation must order strictly above the accusation.
                if incarnation > record.incarnation {
                    record.incarnation = incarnation;
                    record.state = PeerState::Alive;
                    AliveOutcome::Cleared
                } else {
                    AliveOutcome::Ignored
                }
            }
        }
    }

    /// A gossiped death verdict for `peer` at `incarnation`.
    pub fn on_dead(&mut self, peer: PeerId, incarnation: u64) -> DeadOutcome {
        if peer == self.own {
            self.incarnation = self.incarnation.max(incarnation) + 1;
            return DeadOutcome::RefuteWith(self.incarnation);
        }
        let Some(record) = self.members.get_mut(&peer) else {
            return DeadOutcome::Ignored;
        };
        if record.state == PeerState::Dead {
            return DeadOutcome::Ignored;
        }
        // A death verdict outranks alive/suspect of any incarnation it has
        // seen; only a strictly newer alive announcement resurrects.
        if incarnation < record.incarnation && record.state == PeerState::Alive {
            return DeadOutcome::Ignored; // refuted since the verdict formed
        }
        record.incarnation = record.incarnation.max(incarnation);
        record.state = PeerState::Dead;
        DeadOutcome::Confirmed
    }

    /// Marks `peer` dead directly (the local deadline expiry path funnels
    /// through [`SwimDetector::tick`]; this is for applying an authoritative
    /// external verdict in tests).
    #[cfg(test)]
    fn force_dead(&mut self, peer: PeerId) {
        if let Some(record) = self.members.get_mut(&peer) {
            record.state = PeerState::Dead;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peers(n: usize, seed: u64) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    fn detector(n: usize, seed: u64) -> (SwimDetector, Vec<PeerId>) {
        let ids = peers(n, seed);
        let mut swim = SwimDetector::new(ids[0]);
        swim.sync_members(&ids);
        (swim, ids)
    }

    #[test]
    fn silent_member_goes_suspect_then_dead_within_budget() {
        let (mut swim, ids) = detector(4, 0x51);
        let mut suspected = Vec::new();
        let mut dead = Vec::new();
        for _ in 0..PROBE_BUDGET_TICKS * ids.len() as u64 {
            let plan = swim.tick();
            suspected.extend(plan.new_suspects.iter().map(|(p, _)| *p));
            dead.extend(plan.new_dead.iter().map(|(p, _)| *p));
        }
        // Nobody ever acks: every member must pass through suspicion into
        // a death verdict.
        for id in &ids[1..] {
            assert!(suspected.contains(id), "never suspected: {id:?}");
            assert!(dead.contains(id), "never declared dead: {id:?}");
            assert_eq!(swim.record(id).unwrap().state, PeerState::Dead);
        }
        // And a single member's death arrives within the probe budget.
        let (mut fresh, _) = detector(2, 0x52);
        let mut confirmed_at = None;
        for t in 1..=PROBE_BUDGET_TICKS {
            if !fresh.tick().new_dead.is_empty() {
                confirmed_at = Some(t);
                break;
            }
        }
        assert!(
            confirmed_at.is_some(),
            "a 1-member ring must confirm death within {PROBE_BUDGET_TICKS} ticks"
        );
    }

    #[test]
    fn acked_probe_stays_alive() {
        let (mut swim, ids) = detector(3, 0x53);
        for _ in 0..32 {
            let plan = swim.tick();
            if let Some(target) = plan.probe {
                assert!(ids[1..].contains(&target));
                swim.on_ack(target, 0);
            }
            assert!(plan.new_suspects.is_empty());
            assert!(plan.new_dead.is_empty());
        }
        for id in &ids[1..] {
            assert_eq!(swim.record(id).unwrap().state, PeerState::Alive);
        }
    }

    #[test]
    fn indirect_probes_fan_out_before_suspicion() {
        let (mut swim, _ids) = detector(5, 0x54);
        let mut saw_indirect = false;
        for _ in 0..8 {
            let plan = swim.tick();
            for (relay, target) in &plan.indirect {
                saw_indirect = true;
                assert_ne!(relay, target, "a relay never probes through the target");
                assert_ne!(*relay, swim.own, "the prober itself is not a relay");
            }
            if !plan.new_suspects.is_empty() {
                assert!(
                    saw_indirect,
                    "suspicion must be preceded by an indirect-probe round"
                );
                return;
            }
        }
        panic!("no suspicion formed in 8 silent ticks");
    }

    #[test]
    fn own_suspicion_is_refuted_with_higher_incarnation() {
        let (mut swim, ids) = detector(3, 0x55);
        assert_eq!(swim.incarnation(), 0);
        match swim.on_suspect(ids[0], 4) {
            SuspectOutcome::RefuteWith(incarnation) => {
                assert!(incarnation > 4, "refutation must outrank the accusation");
                assert_eq!(swim.incarnation(), incarnation);
            }
            other => panic!("own suspicion must refute, got {other:?}"),
        }
        match swim.on_dead(ids[0], 9) {
            DeadOutcome::RefuteWith(incarnation) => assert!(incarnation > 9),
            other => panic!("own death verdict must refute, got {other:?}"),
        }
    }

    #[test]
    fn refutation_clears_suspicion_only_with_newer_incarnation() {
        let (mut swim, ids) = detector(3, 0x56);
        assert_eq!(swim.on_suspect(ids[1], 0), SuspectOutcome::Suspected);
        // Same incarnation: not a refutation.
        assert_eq!(swim.on_alive(ids[1], 0), AliveOutcome::Ignored);
        assert!(matches!(
            swim.record(&ids[1]).unwrap().state,
            PeerState::Suspect { .. }
        ));
        // Higher incarnation: cancelled.
        assert_eq!(swim.on_alive(ids[1], 1), AliveOutcome::Cleared);
        assert_eq!(swim.record(&ids[1]).unwrap().state, PeerState::Alive);
        // A suspicion at the stale incarnation is now ignored.
        assert_eq!(swim.on_suspect(ids[1], 0), SuspectOutcome::Ignored);
    }

    #[test]
    fn direct_contact_resurrects_the_dead() {
        let (mut swim, ids) = detector(3, 0x57);
        swim.force_dead(ids[1]);
        assert_eq!(swim.dead_members(), vec![ids[1]]);
        assert_eq!(swim.on_contact(ids[1], 0), AliveOutcome::Cleared);
        assert_eq!(swim.record(&ids[1]).unwrap().state, PeerState::Alive);
        assert!(swim.dead_members().is_empty());
    }

    #[test]
    fn gossiped_death_is_confirmed_unless_refuted_since() {
        let (mut swim, ids) = detector(4, 0x58);
        assert_eq!(swim.on_dead(ids[1], 0), DeadOutcome::Confirmed);
        assert_eq!(swim.record(&ids[1]).unwrap().state, PeerState::Dead);
        assert_eq!(swim.on_dead(ids[1], 0), DeadOutcome::Ignored);
        // A refutation that arrived before the verdict wins over a stale one.
        assert_eq!(swim.on_alive(ids[2], 5), AliveOutcome::Refreshed);
        assert_eq!(swim.on_dead(ids[2], 3), DeadOutcome::Ignored);
        assert_eq!(swim.record(&ids[2]).unwrap().state, PeerState::Alive);
        // Resurrection needs a strictly newer incarnation than the verdict.
        assert_eq!(swim.on_alive(ids[1], 0), AliveOutcome::Ignored);
        assert_eq!(swim.on_alive(ids[1], 1), AliveOutcome::Cleared);
    }

    #[test]
    fn backlog_stretches_timeouts() {
        let ids = peers(2, 0x59);
        let mut slow = SwimDetector::new(ids[0]);
        slow.sync_members(&ids);
        slow.set_backlog(300, 100);
        assert_eq!(slow.health(), 4);
        let mut fast = SwimDetector::new(ids[0]);
        fast.sync_members(&ids);
        assert_eq!(fast.health(), 1);

        let ticks_until_dead = |swim: &mut SwimDetector| -> u64 {
            for t in 1..=200 {
                if !swim.tick().new_dead.is_empty() {
                    return t;
                }
            }
            panic!("no death verdict in 200 ticks");
        };
        let fast_ticks = ticks_until_dead(&mut fast);
        let slow_ticks = ticks_until_dead(&mut slow);
        assert!(
            slow_ticks >= 3 * fast_ticks,
            "health 4 must stretch detection well past health 1 ({slow_ticks} vs {fast_ticks})"
        );
        // The multiplier is capped.
        slow.set_backlog(u64::MAX - 1, 1);
        assert_eq!(slow.health(), MAX_HEALTH);
    }

    #[test]
    fn probe_ring_rotates_over_every_member() {
        let (mut swim, ids) = detector(6, 0x5A);
        let mut probed = std::collections::BTreeSet::new();
        for _ in 0..ids.len() * 2 {
            if let Some(target) = swim.tick().probe {
                probed.insert(target);
                swim.on_ack(target, 0); // keep the rotation moving
            }
        }
        assert_eq!(probed.len(), ids.len() - 1, "every member probed in rotation");
    }

    #[test]
    fn sync_members_adds_and_forgets() {
        let ids = peers(4, 0x5B);
        let mut swim = SwimDetector::new(ids[0]);
        swim.sync_members(&ids[..3]);
        assert!(swim.record(&ids[1]).is_some());
        assert!(swim.record(&ids[3]).is_none());
        swim.sync_members(&[ids[0], ids[3]]);
        assert!(swim.record(&ids[1]).is_none(), "departed members are forgotten");
        assert!(swim.record(&ids[3]).is_some());
        assert!(swim.record(&ids[0]).is_none(), "a broker never tracks itself");
    }
}
