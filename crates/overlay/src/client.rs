//! The Client Module.
//!
//! "Applications developed on top of JXTA-Overlay are always based on the
//! invocation of Client Module primitives and the processing of events thrown
//! by functions, executed as a result of message reception from other peers"
//! (paper, §2.2).  [`ClientPeer`] exposes those primitives:
//!
//! * **Discovery primitives** — [`ClientPeer::connect`] (locate a broker and
//!   open a connection) and [`ClientPeer::login`] (authenticate the end user
//!   with a clear-text username and password — the vulnerability the secure
//!   extension later removes).
//! * **Messenger primitives** — [`ClientPeer::send_msg_peer`] and
//!   [`ClientPeer::send_msg_peer_group`], which resolve the destination's
//!   pipe advertisement and deliver a simple text message without broker
//!   intervention.
//! * **Advertisement publication** — pipe, file, presence and statistics
//!   advertisements are published through the broker, which indexes them and
//!   pushes them to the other members of the group.
//! * **Events** — incoming messages surface through
//!   [`ClientPeer::poll_events`].
//!
//! Every primitive returns an [`OperationTiming`] so the benchmark harness
//! can decompose cost into CPU and wire time; the same accounting is reused
//! by the secure primitives in the `jxta-overlay-secure` crate, which wrap a
//! `ClientPeer`.

use crate::advertisement::{Advertisement, FileEntry, FileAdvertisement, PipeAdvertisement};
use crate::error::OverlayError;
use crate::group::GroupId;
use crate::id::PeerId;
use crate::message::{Message, MessageKind};
use crate::metrics::{OperationTiming, Stopwatch, WireTimeAccumulator};
use crate::net::{NetMessage, SimNetwork};
use crossbeam::channel::Receiver;
use rand::RngCore;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a client peer.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// End-user visible nickname.
    pub nickname: String,
    /// How long primitives wait for a broker/peer response.
    pub request_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            nickname: "peer".to_string(),
            request_timeout: Duration::from_secs(5),
        }
    }
}

impl ClientConfig {
    /// Convenience constructor setting only the nickname.
    pub fn named(nickname: impl Into<String>) -> Self {
        ClientConfig {
            nickname: nickname.into(),
            ..Default::default()
        }
    }
}

/// The client-side view of a logged-in session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSession {
    /// Authenticated username.
    pub username: String,
    /// Groups the broker placed this user in.
    pub groups: Vec<GroupId>,
}

/// Events produced by incoming messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A simple text message from another peer (`sendMsgPeer`).
    Text {
        /// Sending peer.
        from: PeerId,
        /// Group context of the message.
        group: GroupId,
        /// Message body.
        text: String,
    },
    /// An advertisement pushed by the broker.
    Advertisement {
        /// Group the advertisement belongs to.
        group: GroupId,
        /// Advertisement document type.
        doc_type: String,
        /// Raw advertisement XML.
        xml: String,
    },
    /// A message kind the plain client does not interpret (consumed by the
    /// secure extension).
    Raw(Message),
}

/// Counters describing a client's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Messages sent by this peer.
    pub messages_sent: u64,
    /// Payload bytes sent by this peer.
    pub bytes_sent: u64,
    /// Messages received by this peer.
    pub messages_received: u64,
}

/// A JXTA-Overlay client peer.
pub struct ClientPeer {
    id: PeerId,
    config: ClientConfig,
    network: Arc<SimNetwork>,
    inbox: Receiver<NetMessage>,
    broker: Option<PeerId>,
    session: Option<ClientSession>,
    next_request: u64,
    wire: WireTimeAccumulator,
    pipe_cache: HashMap<(GroupId, PeerId), PipeAdvertisement>,
    pending: VecDeque<ClientEvent>,
    stats: ClientStats,
}

impl ClientPeer {
    /// Creates a client peer with an explicit identifier and registers it
    /// with the network.
    pub fn new(network: Arc<SimNetwork>, config: ClientConfig, id: PeerId) -> Self {
        let inbox = network.register(id);
        ClientPeer {
            id,
            config,
            network,
            inbox,
            broker: None,
            session: None,
            next_request: 1,
            wire: WireTimeAccumulator::new(),
            pipe_cache: HashMap::new(),
            pending: VecDeque::new(),
            stats: ClientStats::default(),
        }
    }

    /// Creates a client peer with a random identifier.
    pub fn with_random_id<R: RngCore + ?Sized>(
        network: Arc<SimNetwork>,
        config: ClientConfig,
        rng: &mut R,
    ) -> Self {
        let id = PeerId::random(rng);
        Self::new(network, config, id)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This peer's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The network the peer is attached to.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The broker this peer connected to, if any.
    pub fn broker_id(&self) -> Option<PeerId> {
        self.broker
    }

    /// The current session, if logged in.
    pub fn session(&self) -> Option<&ClientSession> {
        self.session.as_ref()
    }

    /// Returns `true` once `login` (or `secureLogin`) succeeded.
    pub fn is_logged_in(&self) -> bool {
        self.session.is_some()
    }

    /// Groups the user belongs to (empty before login).
    pub fn groups(&self) -> Vec<GroupId> {
        self.session
            .as_ref()
            .map(|s| s.groups.clone())
            .unwrap_or_default()
    }

    /// Activity counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Accumulated virtual wire time since the last call to
    /// [`ClientPeer::take_wire_time`].
    pub fn take_wire_time(&self) -> Duration {
        self.wire.take()
    }

    // ------------------------------------------------------------------
    // Low-level plumbing shared with the secure extension
    // ------------------------------------------------------------------

    /// Allocates a fresh request identifier.
    pub fn next_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Marks this peer as connected to `broker` (used by `connect` and by the
    /// secure extension's `secureConnection`).
    pub fn set_broker(&mut self, broker: PeerId) {
        self.broker = Some(broker);
    }

    /// Installs a session (used by `login` and by `secureLogin`).
    pub fn set_session(&mut self, username: impl Into<String>, groups: Vec<GroupId>) {
        self.session = Some(ClientSession {
            username: username.into(),
            groups,
        });
    }

    /// Sends a message to an arbitrary peer, accounting wire time and
    /// counters.
    pub fn send_message(&mut self, to: PeerId, message: &Message) -> Result<Duration, OverlayError> {
        let bytes = message.to_bytes();
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        let wire = self.network.send(self.id, to, bytes)?;
        self.wire.add(wire);
        Ok(wire)
    }

    /// Sends `message` to `to` and waits for a response with the same request
    /// id.  Responses of kind `expected` are returned; an `Ack` carrying
    /// `status = "error"` is turned into [`OverlayError::Rejected`]; unrelated
    /// messages received while waiting are queued as events.
    pub fn request(
        &mut self,
        to: PeerId,
        message: &Message,
        expected: MessageKind,
    ) -> Result<Message, OverlayError> {
        let request_id = message.request_id;
        self.send_message(to, message)?;
        let deadline = crate::clock::Deadline::after(self.config.request_timeout);
        loop {
            let remaining = deadline
                .remaining()
                .ok_or_else(|| OverlayError::Timeout {
                    operation: format!("{expected:?}"),
                })?;
            let net_message = self
                .inbox
                .recv_timeout(remaining)
                .map_err(|_| OverlayError::Timeout {
                    operation: format!("{expected:?}"),
                })?;
            self.wire.add(net_message.wire_time);
            self.stats.messages_received += 1;
            let incoming = match Message::from_bytes(&net_message.payload) {
                Ok(m) => m,
                Err(_) => continue,
            };
            if incoming.request_id == request_id {
                if incoming.kind == expected {
                    return Ok(incoming);
                }
                // A rejection for our request.
                if incoming.kind == MessageKind::Ack {
                    let reason = incoming
                        .element_str("reason")
                        .unwrap_or_else(|| "unspecified".to_string());
                    return Err(OverlayError::Rejected(reason));
                }
            }
            self.queue_incoming(incoming);
        }
    }

    /// Converts an unsolicited incoming message into an event.
    fn queue_incoming(&mut self, message: Message) {
        let event = match message.kind {
            MessageKind::PeerText => {
                let group = GroupId::new(message.element_str("group").unwrap_or_default());
                let text = message.element_str("text").unwrap_or_default();
                ClientEvent::Text {
                    from: message.sender,
                    group,
                    text,
                }
            }
            MessageKind::AdvertisementPush => {
                let group = GroupId::new(message.element_str("group").unwrap_or_default());
                let doc_type = message.element_str("doc-type").unwrap_or_default();
                let xml = message.element_str("xml").unwrap_or_default();
                // Opportunistically refresh the pipe-advertisement cache.
                if doc_type == PipeAdvertisement::DOC_TYPE {
                    if let Ok(adv) = PipeAdvertisement::from_xml(&xml) {
                        self.pipe_cache.insert((adv.group.clone(), adv.owner), adv);
                    }
                }
                ClientEvent::Advertisement {
                    group,
                    doc_type,
                    xml,
                }
            }
            _ => ClientEvent::Raw(message),
        };
        self.pending.push_back(event);
    }

    /// Drains the inbox (non-blocking) and returns all pending events.
    pub fn poll_events(&mut self) -> Vec<ClientEvent> {
        while let Ok(net_message) = self.inbox.try_recv() {
            self.wire.add(net_message.wire_time);
            self.stats.messages_received += 1;
            if let Ok(message) = Message::from_bytes(&net_message.payload) {
                self.queue_incoming(message);
            }
        }
        self.pending.drain(..).collect()
    }

    /// Blocks until at least one event is available or the timeout expires.
    pub fn wait_for_event(&mut self, timeout: Duration) -> Option<ClientEvent> {
        let deadline = crate::clock::Deadline::after(timeout);
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(event);
            }
            let remaining = deadline.remaining()?;
            match self.inbox.recv_timeout(remaining) {
                Ok(net_message) => {
                    self.wire.add(net_message.wire_time);
                    self.stats.messages_received += 1;
                    if let Ok(message) = Message::from_bytes(&net_message.payload) {
                        self.queue_incoming(message);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    // ------------------------------------------------------------------
    // Discovery primitives: connect and login
    // ------------------------------------------------------------------

    /// The `connect` primitive: locates the broker and opens a connection.
    pub fn connect(&mut self, broker: PeerId) -> Result<OperationTiming, OverlayError> {
        let stopwatch = Stopwatch::start();
        let wire_before = self.wire.take();
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::ConnectRequest, self.id, request_id)
            .with_str("nickname", &self.config.nickname);
        let response = self.request(broker, &message, MessageKind::ConnectResponse)?;
        if response.element_str("status").as_deref() != Some("ok") {
            return Err(OverlayError::Rejected(
                response
                    .element_str("reason")
                    .unwrap_or_else(|| "connect rejected".to_string()),
            ));
        }
        self.broker = Some(broker);
        let wire = self.wire.take();
        self.wire.add(wire_before);
        Ok(OperationTiming::new(stopwatch.elapsed().saturating_sub(Duration::ZERO), wire))
    }

    /// The `login` primitive: authenticates the end user by sending the
    /// username and password **in the clear** — exactly the vulnerability the
    /// paper's `secureLogin` addresses.
    pub fn login(
        &mut self,
        username: &str,
        password: &str,
    ) -> Result<OperationTiming, OverlayError> {
        let broker = self.broker.ok_or(OverlayError::NotConnected)?;
        let stopwatch = Stopwatch::start();
        let wire_before = self.wire.take();
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::LoginRequest, self.id, request_id)
            .with_str("username", username)
            .with_str("password", password);
        let response = self.request(broker, &message, MessageKind::LoginResponse)?;
        if response.element_str("status").as_deref() != Some("ok") {
            return Err(OverlayError::AuthenticationFailed);
        }
        let groups: Vec<GroupId> = response
            .element_str("groups")
            .unwrap_or_default()
            .split(',')
            .filter(|s| !s.is_empty())
            .map(GroupId::new)
            .collect();
        self.set_session(username, groups);
        let wire = self.wire.take();
        self.wire.add(wire_before);
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    // ------------------------------------------------------------------
    // Advertisement publication and lookup
    // ------------------------------------------------------------------

    /// Publishes an arbitrary advertisement document through the broker.
    pub fn publish_advertisement(
        &mut self,
        group: &GroupId,
        doc_type: &str,
        xml: &str,
    ) -> Result<(), OverlayError> {
        let broker = self.broker.ok_or(OverlayError::NotConnected)?;
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::PublishAdvertisement, self.id, request_id)
            .with_str("group", group.as_str())
            .with_str("doc-type", doc_type)
            .with_str("xml", xml);
        let response = self.request(broker, &message, MessageKind::Ack)?;
        if response.element_str("status").as_deref() == Some("ok") {
            Ok(())
        } else {
            Err(OverlayError::Rejected(
                response
                    .element_str("reason")
                    .unwrap_or_else(|| "publish rejected".to_string()),
            ))
        }
    }

    /// Publishes this peer's input-pipe advertisement for `group`.
    pub fn publish_pipe(&mut self, group: &GroupId) -> Result<PipeAdvertisement, OverlayError> {
        let advertisement = PipeAdvertisement {
            owner: self.id,
            group: group.clone(),
            name: format!("{}-inbox", self.config.nickname),
        };
        self.publish_advertisement(group, PipeAdvertisement::DOC_TYPE, &advertisement.to_xml())?;
        self.pipe_cache
            .insert((group.clone(), self.id), advertisement.clone());
        Ok(advertisement)
    }

    /// Publishes the list of files this peer shares with `group`.
    pub fn publish_files(
        &mut self,
        group: &GroupId,
        entries: Vec<FileEntry>,
    ) -> Result<(), OverlayError> {
        let advertisement = FileAdvertisement {
            owner: self.id,
            group: group.clone(),
            entries,
        };
        self.publish_advertisement(group, FileAdvertisement::DOC_TYPE, &advertisement.to_xml())
    }

    /// Performs a broker lookup and returns the raw advertisement XML strings.
    pub fn lookup_advertisements(
        &mut self,
        group: &GroupId,
        doc_type: &str,
        owner: Option<PeerId>,
    ) -> Result<Vec<String>, OverlayError> {
        let broker = self.broker.ok_or(OverlayError::NotConnected)?;
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        let request_id = self.next_request_id();
        let mut message = Message::new(MessageKind::LookupRequest, self.id, request_id)
            .with_str("group", group.as_str())
            .with_str("doc-type", doc_type);
        if let Some(owner) = owner {
            message.push_element("owner", owner.to_urn().into_bytes());
        }
        let response = self.request(broker, &message, MessageKind::LookupResponse)?;
        let count: usize = response
            .element_str("count")
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        // The count is broker-asserted text: cap the pre-allocation by the
        // elements the response actually carries.
        let mut results = Vec::with_capacity(count.min(response.element_count()));
        for i in 0..count {
            if let Some(xml) = response.element_str(&format!("adv-{i}")) {
                results.push(xml);
            }
        }
        Ok(results)
    }

    /// Asks the broker whether `peer` is currently a member of `group`.
    ///
    /// The requester must be logged in and a member of `group` itself.  In a
    /// sharded federation the broker answers from its own shard when it owns
    /// the `(group, peer)` entry and routes the query to an owning replica
    /// otherwise — transparently to the client.
    pub fn query_membership(
        &mut self,
        group: &GroupId,
        peer: PeerId,
    ) -> Result<bool, OverlayError> {
        let broker = self.broker.ok_or(OverlayError::NotConnected)?;
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::LookupRequest, self.id, request_id)
            .with_str("group", group.as_str())
            .with_str("member", &peer.to_urn());
        let response = self.request(broker, &message, MessageKind::LookupResponse)?;
        Ok(response.element_str("member").as_deref() == Some("true"))
    }

    /// Resolves the pipe advertisement of `owner` within `group`, consulting
    /// the local cache first (paper §4.3: locating the advertisement is
    /// always necessary, secure or not).
    pub fn resolve_pipe(
        &mut self,
        group: &GroupId,
        owner: PeerId,
    ) -> Result<PipeAdvertisement, OverlayError> {
        if let Some(adv) = self.pipe_cache.get(&(group.clone(), owner)) {
            return Ok(adv.clone());
        }
        let results =
            self.lookup_advertisements(group, PipeAdvertisement::DOC_TYPE, Some(owner))?;
        let xml = results.first().ok_or_else(|| {
            OverlayError::AdvertisementNotFound(format!("pipe of {owner} in {group}"))
        })?;
        let advertisement = PipeAdvertisement::from_xml(xml)?;
        self.pipe_cache
            .insert((group.clone(), owner), advertisement.clone());
        Ok(advertisement)
    }

    /// Resolves every pipe advertisement published in `group` (the member
    /// list used by `sendMsgPeerGroup`).
    pub fn resolve_group_pipes(
        &mut self,
        group: &GroupId,
    ) -> Result<Vec<PipeAdvertisement>, OverlayError> {
        let results = self.lookup_advertisements(group, PipeAdvertisement::DOC_TYPE, None)?;
        let mut advertisements = Vec::with_capacity(results.len());
        for xml in &results {
            let adv = PipeAdvertisement::from_xml(xml)?;
            self.pipe_cache
                .insert((group.clone(), adv.owner), adv.clone());
            advertisements.push(adv);
        }
        Ok(advertisements)
    }

    /// Looks up the raw pipe-advertisement XML of `owner` in `group`,
    /// bypassing the typed cache.  The secure extension uses this to obtain
    /// the signed advertisement document for validation.
    pub fn resolve_pipe_xml(
        &mut self,
        group: &GroupId,
        owner: PeerId,
    ) -> Result<String, OverlayError> {
        let results =
            self.lookup_advertisements(group, PipeAdvertisement::DOC_TYPE, Some(owner))?;
        results.into_iter().next().ok_or_else(|| {
            OverlayError::AdvertisementNotFound(format!("pipe of {owner} in {group}"))
        })
    }

    // ------------------------------------------------------------------
    // Messenger primitives
    // ------------------------------------------------------------------

    /// The `sendMsgPeer` primitive: sends a simple text message to another
    /// peer without broker intervention.
    pub fn send_msg_peer(
        &mut self,
        group: &GroupId,
        to: PeerId,
        text: &str,
    ) -> Result<OperationTiming, OverlayError> {
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        if !self.groups().contains(group) {
            return Err(OverlayError::NotAGroupMember(group.as_str().to_string()));
        }
        let stopwatch = Stopwatch::start();
        // Step 1 (paper §4.3): retrieve the destination's pipe advertisement.
        let advertisement = self.resolve_pipe(group, to)?;
        debug_assert_eq!(advertisement.owner, to);
        // Step 2: deliver the message over the pipe.
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::PeerText, self.id, request_id)
            .with_str("group", group.as_str())
            .with_str("text", text);
        let wire = self.send_message(to, &message)?;
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    /// Asks this peer's home broker to relay an opaque `payload` to `to`,
    /// wherever in the federation that peer is homed.  Returns the broker's
    /// acknowledgement (whose `route` element says whether the destination
    /// was local or reached over the backbone).
    ///
    /// The payload travels unmodified: the destination receives exactly
    /// these bytes, so the secure extension can relay sealed envelopes
    /// without the brokers being able to read or alter them.
    pub fn relay_payload(&mut self, to: PeerId, payload: Vec<u8>) -> Result<Message, OverlayError> {
        let broker = self.broker.ok_or(OverlayError::NotConnected)?;
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::RelayViaBroker, self.id, request_id)
            .with_str("to", &to.to_urn())
            .with_element("payload", payload);
        let response = self.request(broker, &message, MessageKind::Ack)?;
        if response.element_str("status").as_deref() == Some("ok") {
            Ok(response)
        } else {
            Err(OverlayError::Rejected(
                response
                    .element_str("reason")
                    .unwrap_or_else(|| "relay rejected".to_string()),
            ))
        }
    }

    /// The broker-relayed variant of `sendMsgPeer`: the text is handed to
    /// this peer's home broker, which routes it through the federation to
    /// the destination's home broker.  Used when the destination is homed at
    /// another broker of the backbone.
    pub fn relay_msg_peer(
        &mut self,
        group: &GroupId,
        to: PeerId,
        text: &str,
    ) -> Result<OperationTiming, OverlayError> {
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        if !self.groups().contains(group) {
            return Err(OverlayError::NotAGroupMember(group.as_str().to_string()));
        }
        let stopwatch = Stopwatch::start();
        let wire_before = self.wire.take();
        let request_id = self.next_request_id();
        let message = Message::new(MessageKind::PeerText, self.id, request_id)
            .with_str("group", group.as_str())
            .with_str("text", text);
        self.relay_payload(to, message.to_bytes())?;
        let wire = self.wire.take();
        self.wire.add(wire_before);
        Ok(OperationTiming::new(stopwatch.elapsed(), wire))
    }

    /// The `sendMsgPeerGroup` primitive: sends the same message to every
    /// member of the group by iteratively calling [`ClientPeer::send_msg_peer`]
    /// (exactly how the original JXTA-Overlay resolves it).
    ///
    /// Returns the number of peers the message was sent to and the combined
    /// timing.
    pub fn send_msg_peer_group(
        &mut self,
        group: &GroupId,
        text: &str,
    ) -> Result<(usize, OperationTiming), OverlayError> {
        if !self.is_logged_in() {
            return Err(OverlayError::NotLoggedIn);
        }
        let stopwatch = Stopwatch::start();
        let members = self.resolve_group_pipes(group)?;
        let mut total_wire = Duration::ZERO;
        let mut sent = 0usize;
        for advertisement in members {
            if advertisement.owner == self.id {
                continue;
            }
            let timing = self.send_msg_peer(group, advertisement.owner, text)?;
            total_wire += timing.wire;
            sent += 1;
        }
        Ok((sent, OperationTiming::new(stopwatch.elapsed(), total_wire)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Broker, BrokerConfig};
    use crate::database::UserDatabase;
    use crate::net::LinkModel;
    use jxta_crypto::drbg::HmacDrbg;

    struct Fixture {
        network: Arc<SimNetwork>,
        broker: crate::broker::BrokerHandle,
        rng: HmacDrbg,
    }

    fn fixture() -> Fixture {
        let mut rng = HmacDrbg::from_seed_u64(0xC11E);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        database.register_user(&mut rng, "carol", "pw-c", &[GroupId::new("math"), GroupId::new("chem")]);
        let broker = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::named("fit-broker"),
            Arc::clone(&network),
            database,
        )
        .spawn();
        Fixture { network, broker, rng }
    }

    fn logged_in_client(fx: &mut Fixture, nickname: &str, user: &str, pw: &str) -> ClientPeer {
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::named(nickname),
            &mut fx.rng,
        );
        client.connect(fx.broker.id()).unwrap();
        client.login(user, pw).unwrap();
        client
    }

    #[test]
    fn connect_and_login_flow() {
        let mut fx = fixture();
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::named("alice-laptop"),
            &mut fx.rng,
        );
        assert!(!client.is_logged_in());
        assert!(client.broker_id().is_none());

        let timing = client.connect(fx.broker.id()).unwrap();
        assert!(timing.total() > Duration::ZERO || timing.total() == Duration::ZERO);
        assert_eq!(client.broker_id(), Some(fx.broker.id()));

        let timing = client.login("alice", "pw-a").unwrap();
        assert!(client.is_logged_in());
        assert_eq!(client.session().unwrap().username, "alice");
        assert_eq!(client.groups(), vec![GroupId::new("math")]);
        assert!(timing.cpu > Duration::ZERO);
    }

    #[test]
    fn login_before_connect_fails() {
        let mut fx = fixture();
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::default(),
            &mut fx.rng,
        );
        assert!(matches!(
            client.login("alice", "pw-a"),
            Err(OverlayError::NotConnected)
        ));
    }

    #[test]
    fn login_with_bad_password_fails() {
        let mut fx = fixture();
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::default(),
            &mut fx.rng,
        );
        client.connect(fx.broker.id()).unwrap();
        assert!(matches!(
            client.login("alice", "nope"),
            Err(OverlayError::AuthenticationFailed)
        ));
        assert!(!client.is_logged_in());
    }

    #[test]
    fn connect_to_unreachable_broker_times_out_or_fails() {
        let mut fx = fixture();
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig {
                nickname: "x".into(),
                request_timeout: Duration::from_millis(50),
            },
            &mut fx.rng,
        );
        let ghost = PeerId::random(&mut fx.rng);
        assert!(client.connect(ghost).is_err());
    }

    #[test]
    fn publish_and_resolve_pipe_advertisements() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");

        alice.publish_pipe(&group).unwrap();
        bob.publish_pipe(&group).unwrap();

        let resolved = alice.resolve_pipe(&group, bob.id()).unwrap();
        assert_eq!(resolved.owner, bob.id());
        assert_eq!(resolved.name, "bob-pc-inbox");

        // Second resolution hits the cache (no new lookup traffic).
        let before = fx.network.stats().messages_sent;
        let _ = alice.resolve_pipe(&group, bob.id()).unwrap();
        assert_eq!(fx.network.stats().messages_sent, before);

        let all = alice.resolve_group_pipes(&group).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn resolve_missing_pipe_fails() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let stranger = PeerId::random(&mut fx.rng);
        assert!(matches!(
            alice.resolve_pipe(&group, stranger),
            Err(OverlayError::AdvertisementNotFound(_))
        ));
    }

    #[test]
    fn send_msg_peer_delivers_text() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");
        alice.publish_pipe(&group).unwrap();
        bob.publish_pipe(&group).unwrap();

        let timing = alice.send_msg_peer(&group, bob.id(), "hi bob!").unwrap();
        assert!(timing.cpu >= Duration::ZERO);

        let events = bob.poll_events();
        assert!(events.iter().any(|e| matches!(
            e,
            ClientEvent::Text { from, text, group: g }
                if *from == alice.id() && text == "hi bob!" && g.as_str() == "math"
        )));
    }

    #[test]
    fn send_msg_peer_requires_login_and_membership() {
        let mut fx = fixture();
        let group = GroupId::new("chem");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let target = PeerId::random(&mut fx.rng);
        // alice is only in "math".
        assert!(matches!(
            alice.send_msg_peer(&group, target, "x"),
            Err(OverlayError::NotAGroupMember(_))
        ));

        let mut fresh = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::default(),
            &mut fx.rng,
        );
        assert!(matches!(
            fresh.send_msg_peer(&GroupId::new("math"), target, "x"),
            Err(OverlayError::NotLoggedIn)
        ));
    }

    #[test]
    fn send_msg_peer_group_reaches_all_members() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");
        let mut carol = logged_in_client(&mut fx, "carol-pc", "carol", "pw-c");
        alice.publish_pipe(&group).unwrap();
        bob.publish_pipe(&group).unwrap();
        carol.publish_pipe(&group).unwrap();

        let (sent, timing) = alice.send_msg_peer_group(&group, "hello everyone").unwrap();
        assert_eq!(sent, 2, "alice does not send to herself");
        assert!(timing.cpu > Duration::ZERO);

        for receiver in [&mut bob, &mut carol] {
            let events = receiver.poll_events();
            assert!(
                events.iter().any(|e| matches!(e, ClientEvent::Text { text, .. } if text == "hello everyone")),
                "every member receives the text"
            );
        }
    }

    #[test]
    fn relay_msg_peer_delivers_via_the_broker() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");

        let timing = alice.relay_msg_peer(&group, bob.id(), "routed hi").unwrap();
        assert!(timing.cpu >= Duration::ZERO);
        let event = bob.wait_for_event(Duration::from_secs(2)).unwrap();
        assert!(matches!(
            event,
            ClientEvent::Text { from, text, group: g }
                if from == alice.id() && text == "routed hi" && g.as_str() == "math"
        ));
        assert_eq!(fx.broker.broker().federation_stats().relays_delivered, 1);
    }

    #[test]
    fn relay_msg_peer_requires_login_membership_and_known_destination() {
        let mut fx = fixture();
        let mut fresh = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::default(),
            &mut fx.rng,
        );
        let target = PeerId::random(&mut fx.rng);
        assert!(matches!(
            fresh.relay_msg_peer(&GroupId::new("math"), target, "x"),
            Err(OverlayError::NotLoggedIn)
        ));
        assert!(matches!(
            fresh.relay_payload(target, b"x".to_vec()),
            Err(OverlayError::NotConnected)
        ));

        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        assert!(matches!(
            alice.relay_msg_peer(&GroupId::new("chem"), target, "x"),
            Err(OverlayError::NotAGroupMember(_))
        ));
        // Logged in, member, but the destination is unknown to the broker.
        assert!(matches!(
            alice.relay_msg_peer(&GroupId::new("math"), target, "x"),
            Err(OverlayError::Rejected(reason)) if reason.contains("unknown destination")
        ));
    }

    #[test]
    fn advertisement_pushes_surface_as_events_and_fill_cache() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");

        alice.publish_pipe(&group).unwrap();
        let events = bob.poll_events();
        assert!(events.iter().any(|e| matches!(
            e,
            ClientEvent::Advertisement { doc_type, .. } if doc_type == PipeAdvertisement::DOC_TYPE
        )));
        // The push pre-populated bob's cache: resolving alice's pipe costs no
        // further lookup.
        let before = fx.network.stats().messages_sent;
        let adv = bob.resolve_pipe(&group, alice.id()).unwrap();
        assert_eq!(adv.owner, alice.id());
        assert_eq!(fx.network.stats().messages_sent, before);
    }

    #[test]
    fn publish_files_and_lookup() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");

        alice
            .publish_files(
                &group,
                vec![FileEntry {
                    name: "homework.pdf".into(),
                    size: 1024,
                    digest: "00".repeat(32),
                }],
            )
            .unwrap();

        let found = bob
            .lookup_advertisements(&group, FileAdvertisement::DOC_TYPE, Some(alice.id()))
            .unwrap();
        assert_eq!(found.len(), 1);
        let adv = FileAdvertisement::from_xml(&found[0]).unwrap();
        assert_eq!(adv.entries[0].name, "homework.pdf");
    }

    #[test]
    fn stats_and_wire_time_accounting() {
        let mut fx = fixture();
        let mut client = ClientPeer::with_random_id(
            Arc::clone(&fx.network),
            ClientConfig::default(),
            &mut fx.rng,
        );
        client.connect(fx.broker.id()).unwrap();
        let stats = client.stats();
        assert!(stats.messages_sent >= 1);
        assert!(stats.messages_received >= 1);
        assert!(stats.bytes_sent > 0);
        // Ideal link → zero wire time, but the accumulator still works.
        assert_eq!(client.take_wire_time(), Duration::ZERO);
    }

    #[test]
    fn wire_time_reflects_link_model() {
        let mut rng = HmacDrbg::from_seed_u64(0x11AB);
        let network = SimNetwork::new(LinkModel::new(Duration::from_millis(3), 0));
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw", &[GroupId::new("g")]);
        let broker = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::default(),
            Arc::clone(&network),
            database,
        )
        .spawn();
        let mut client =
            ClientPeer::with_random_id(Arc::clone(&network), ClientConfig::default(), &mut rng);
        let timing = client.connect(broker.id()).unwrap();
        // Request plus response → two legs of 3 ms each.
        assert_eq!(timing.wire, Duration::from_millis(6));
        broker.shutdown();
    }

    #[test]
    fn wait_for_event_blocks_until_delivery() {
        let mut fx = fixture();
        let group = GroupId::new("math");
        let mut alice = logged_in_client(&mut fx, "alice-pc", "alice", "pw-a");
        let mut bob = logged_in_client(&mut fx, "bob-pc", "bob", "pw-b");
        alice.publish_pipe(&group).unwrap();
        bob.publish_pipe(&group).unwrap();
        // Drain the publication pushes first.
        let _ = bob.poll_events();

        alice.send_msg_peer(&group, bob.id(), "ping").unwrap();
        let event = bob.wait_for_event(Duration::from_secs(2)).unwrap();
        assert!(matches!(event, ClientEvent::Text { text, .. } if text == "ping"));
        // No further events → timeout returns None.
        assert!(bob.wait_for_event(Duration::from_millis(10)).is_none());
    }
}
