//! Peer and pipe identifiers.

use jxta_crypto::cbid::Cbid;
use jxta_crypto::sha2::hex_encode;
use rand::RngCore;
use std::fmt;

/// Length of a peer identifier in bytes.
pub const PEER_ID_LEN: usize = 16;

/// A peer identifier.
///
/// Plain JXTA-Overlay peers use random identifiers; peers running the secure
/// extension derive theirs from the CBID of their public key
/// ([`PeerId::from_cbid`]), which is what lets any peer check that a public
/// key found in an advertisement really belongs to the identifier claiming
/// it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId([u8; PEER_ID_LEN]);

impl PeerId {
    /// Generates a fresh random identifier.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; PEER_ID_LEN];
        rng.fill_bytes(&mut bytes);
        PeerId(bytes)
    }

    /// Derives an identifier from a crypto-based identifier (the leading 16
    /// bytes of the CBID digest).
    pub fn from_cbid(cbid: &Cbid) -> Self {
        let mut bytes = [0u8; PEER_ID_LEN];
        bytes.copy_from_slice(&cbid.as_bytes()[..PEER_ID_LEN]);
        PeerId(bytes)
    }

    /// Builds an identifier from raw bytes.
    pub fn from_bytes(bytes: [u8; PEER_ID_LEN]) -> Self {
        PeerId(bytes)
    }

    /// Parses an identifier from the URN form produced by [`PeerId::to_urn`].
    pub fn from_urn(urn: &str) -> Option<Self> {
        let hex = urn.strip_prefix("urn:jxta:peer:")?;
        if hex.len() != PEER_ID_LEN * 2 {
            return None;
        }
        let mut bytes = [0u8; PEER_ID_LEN];
        for (i, chunk) in hex.as_bytes().chunks_exact(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(PeerId(bytes))
    }

    /// The raw identifier bytes.
    pub fn as_bytes(&self) -> &[u8; PEER_ID_LEN] {
        &self.0
    }

    /// JXTA-style URN representation.
    pub fn to_urn(&self) -> String {
        format!("urn:jxta:peer:{}", hex_encode(&self.0))
    }

    /// Returns `true` if this identifier is consistent with `cbid` (i.e. it
    /// equals the identifier derived from that CBID).
    pub fn matches_cbid(&self, cbid: &Cbid) -> bool {
        PeerId::from_cbid(cbid) == *self
    }

    /// Short prefix for logs.
    pub fn short(&self) -> String {
        hex_encode(&self.0[..4])
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PeerId({}…)", self.short())
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_urn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;
    use jxta_crypto::rsa::RsaKeyPair;

    #[test]
    fn random_ids_differ() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        let a = PeerId::random(&mut rng);
        let b = PeerId::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn urn_roundtrip() {
        let mut rng = HmacDrbg::from_seed_u64(2);
        let id = PeerId::random(&mut rng);
        assert_eq!(PeerId::from_urn(&id.to_urn()), Some(id));
        assert!(id.to_urn().starts_with("urn:jxta:peer:"));
    }

    #[test]
    fn urn_rejects_malformed() {
        assert_eq!(PeerId::from_urn("urn:jxta:peer:xy"), None);
        assert_eq!(PeerId::from_urn("urn:other:peer:00"), None);
        assert_eq!(PeerId::from_urn(""), None);
        let bad = format!("urn:jxta:peer:{}", "zz".repeat(PEER_ID_LEN));
        assert_eq!(PeerId::from_urn(&bad), None);
    }

    #[test]
    fn cbid_binding() {
        let mut rng = HmacDrbg::from_seed_u64(3);
        let kp = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cbid = Cbid::from_public_key(&kp.public);
        let id = PeerId::from_cbid(&cbid);
        assert!(id.matches_cbid(&cbid));

        let other = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let other_cbid = Cbid::from_public_key(&other.public);
        assert!(!id.matches_cbid(&other_cbid));
    }

    #[test]
    fn debug_and_display_forms() {
        let id = PeerId::from_bytes([0xaa; PEER_ID_LEN]);
        assert!(format!("{id:?}").starts_with("PeerId("));
        assert!(format!("{id}").contains("aaaa"));
        assert_eq!(id.short().len(), 8);
        assert_eq!(id.as_bytes(), &[0xaa; PEER_ID_LEN]);
    }
}
