//! The central user database.
//!
//! "All the information related to user configuration (username, password and
//! group membership) is stored in a special single entity within the
//! JXTA-Overlay network: a central database.  Only brokers may access the
//! database contents" (paper, §2.1).  The simulator keeps it in memory;
//! passwords are stored as salted SHA-256 verifiers so that even the baseline
//! system never holds clear-text passwords at rest (the on-the-wire exposure
//! is the vulnerability the paper addresses, not storage).

use crate::group::GroupId;
use jxta_crypto::sha2::Sha256;
use parking_lot::RwLock;
use rand::RngCore;
use std::collections::HashMap;

/// A registered end user.
#[derive(Debug, Clone)]
struct UserRecord {
    salt: [u8; 16],
    verifier: [u8; 32],
    groups: Vec<GroupId>,
}

/// The central database of end users, accessed only by brokers.
#[derive(Debug)]
pub struct UserDatabase {
    users: RwLock<HashMap<String, UserRecord>>,
}

fn hash_password(salt: &[u8; 16], password: &str) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(salt);
    h.update(password.as_bytes());
    h.finalize()
}

impl Default for UserDatabase {
    fn default() -> Self {
        UserDatabase {
            users: RwLock::with_class("database.users", HashMap::new()),
        }
    }
}

impl UserDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new end user (performed by the administrator).
    ///
    /// Returns `false` (and leaves the existing record untouched) if the
    /// username is already taken.
    pub fn register_user<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        username: &str,
        password: &str,
        groups: &[GroupId],
    ) -> bool {
        let mut users = self.users.write();
        if users.contains_key(username) {
            return false;
        }
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        let verifier = hash_password(&salt, password);
        users.insert(
            username.to_string(),
            UserRecord {
                salt,
                verifier,
                groups: groups.to_vec(),
            },
        );
        true
    }

    /// Verifies a username/password pair.
    pub fn verify(&self, username: &str, password: &str) -> bool {
        let users = self.users.read();
        match users.get(username) {
            Some(record) => {
                let candidate = hash_password(&record.salt, password);
                jxta_crypto::hmac::constant_time_eq(&candidate, &record.verifier)
            }
            None => false,
        }
    }

    /// Groups the administrator assigned to this user.
    pub fn groups_of(&self, username: &str) -> Vec<GroupId> {
        self.users
            .read()
            .get(username)
            .map(|r| r.groups.clone())
            .unwrap_or_default()
    }

    /// Adds a user to an additional group.  Returns `false` for unknown users.
    pub fn add_to_group(&self, username: &str, group: GroupId) -> bool {
        let mut users = self.users.write();
        match users.get_mut(username) {
            Some(record) => {
                if !record.groups.contains(&group) {
                    record.groups.push(group);
                }
                true
            }
            None => false,
        }
    }

    /// Changes a user's password.  Returns `false` for unknown users.
    pub fn change_password<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        username: &str,
        new_password: &str,
    ) -> bool {
        let mut users = self.users.write();
        match users.get_mut(username) {
            Some(record) => {
                rng.fill_bytes(&mut record.salt);
                record.verifier = hash_password(&record.salt, new_password);
                true
            }
            None => false,
        }
    }

    /// Removes a user.  Returns `true` if the user existed.
    pub fn remove_user(&self, username: &str) -> bool {
        self.users.write().remove(username).is_some()
    }

    /// Returns `true` if the username exists.
    pub fn user_exists(&self, username: &str) -> bool {
        self.users.read().contains_key(username)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn rng() -> HmacDrbg {
        HmacDrbg::from_seed_u64(0xDB)
    }

    #[test]
    fn register_and_verify() {
        let db = UserDatabase::new();
        let mut rng = rng();
        assert!(db.register_user(&mut rng, "alice", "wonderland", &[GroupId::new("g1")]));
        assert!(db.verify("alice", "wonderland"));
        assert!(!db.verify("alice", "wrong"));
        assert!(!db.verify("bob", "wonderland"));
        assert_eq!(db.user_count(), 1);
        assert!(db.user_exists("alice"));
        assert!(!db.user_exists("bob"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let db = UserDatabase::new();
        let mut rng = rng();
        assert!(db.register_user(&mut rng, "alice", "first", &[]));
        assert!(!db.register_user(&mut rng, "alice", "second", &[]));
        // Original password still works.
        assert!(db.verify("alice", "first"));
        assert!(!db.verify("alice", "second"));
    }

    #[test]
    fn group_assignment_and_extension() {
        let db = UserDatabase::new();
        let mut rng = rng();
        db.register_user(&mut rng, "alice", "pw", &[GroupId::new("math"), GroupId::new("physics")]);
        assert_eq!(db.groups_of("alice").len(), 2);
        assert!(db.add_to_group("alice", GroupId::new("chemistry")));
        assert_eq!(db.groups_of("alice").len(), 3);
        // Adding the same group twice does not duplicate it.
        assert!(db.add_to_group("alice", GroupId::new("chemistry")));
        assert_eq!(db.groups_of("alice").len(), 3);
        assert!(!db.add_to_group("nobody", GroupId::new("x")));
        assert!(db.groups_of("nobody").is_empty());
    }

    #[test]
    fn change_password() {
        let db = UserDatabase::new();
        let mut rng = rng();
        db.register_user(&mut rng, "alice", "old", &[]);
        assert!(db.change_password(&mut rng, "alice", "new"));
        assert!(!db.verify("alice", "old"));
        assert!(db.verify("alice", "new"));
        assert!(!db.change_password(&mut rng, "nobody", "x"));
    }

    #[test]
    fn remove_user() {
        let db = UserDatabase::new();
        let mut rng = rng();
        db.register_user(&mut rng, "alice", "pw", &[]);
        assert!(db.remove_user("alice"));
        assert!(!db.remove_user("alice"));
        assert!(!db.verify("alice", "pw"));
        assert_eq!(db.user_count(), 0);
    }

    #[test]
    fn same_password_different_users_have_different_verifiers() {
        // Salting: the stored verifier must differ even for equal passwords.
        let db = UserDatabase::new();
        let mut rng = rng();
        db.register_user(&mut rng, "alice", "shared", &[]);
        db.register_user(&mut rng, "bob", "shared", &[]);
        let users = db.users.read();
        assert_ne!(users["alice"].verifier, users["bob"].verifier);
        assert_ne!(users["alice"].salt, users["bob"].salt);
    }

    #[test]
    fn empty_password_is_still_verified_consistently() {
        let db = UserDatabase::new();
        let mut rng = rng();
        db.register_user(&mut rng, "kiosk", "", &[]);
        assert!(db.verify("kiosk", ""));
        assert!(!db.verify("kiosk", " "));
    }
}
