//! Plumtree-style dissemination over the active view.
//!
//! Layered on [`crate::membership::PartialView`]: broadcast gossip (the
//! fully replicated publish/join/leave events) is **eagerly pushed** along a
//! per-broker spanning-tree edge set (the *eager* peers) and only
//! **advertised** — as a compact `IHave` digest of gossip ids — on the
//! remaining active edges (the *lazy* peers).  A receiver that learns about
//! a message from a digest it never received eagerly answers `Graft`, which
//! both pulls the missed payload and promotes the advertising edge into the
//! tree; a receiver that keeps getting duplicates over an edge answers
//! `Prune`, demoting it to lazy.  The tree therefore repairs itself around
//! dropped edges and converges towards one eager path per broker pair, while
//! the PR 4/7 anti-entropy machinery stays underneath as the last-resort
//! safety net (a graft that misses the bounded cache heals there).
//!
//! This module is the bookkeeping only — eager/lazy edge sets, the bounded
//! seen-set and payload cache keyed by [`GossipId`].  The broker owns one
//! [`PlumtreeState`] behind a classed lock and drives it from its gossip
//! paths and the `PlumtreeIHave`/`PlumtreeGraft`/`PlumtreePrune` wire
//! messages.

use crate::id::PeerId;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Identity of one broadcast gossip event: the version origin that created
/// it and the sequence number it was versioned under.  The pair is exactly
/// the event's last-writer-wins version, so it is already unique per write
/// and travels in the event's existing `vorigin`/`seq` fields.
pub type GossipId = (PeerId, u64);

/// Default bound of the seen-set and the graft cache.  Eviction is FIFO;
/// an evicted entry can only cost a redundant application (the LWW merge
/// rejects it) or a graft miss (anti-entropy heals it).
pub const DEFAULT_CACHE: usize = 4096;

/// Plumtree bookkeeping for one broker.
#[derive(Debug)]
pub struct PlumtreeState {
    /// Tree edges: broadcast payloads are pushed here in full.
    eager: BTreeSet<PeerId>,
    /// Remaining active edges: only `IHave` digests travel here.
    lazy: BTreeSet<PeerId>,
    /// Gossip ids this broker has already received or originated.
    seen: HashSet<GossipId>,
    seen_order: VecDeque<GossipId>,
    /// Recently seen payloads, kept to answer `Graft` pulls.
    cache: HashMap<GossipId, Vec<(String, String)>>,
    cache_order: VecDeque<GossipId>,
    capacity: usize,
}

impl PlumtreeState {
    /// Creates empty state with the given seen/cache bound (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        PlumtreeState {
            eager: BTreeSet::new(),
            lazy: BTreeSet::new(),
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Reconciles the edge sets with the membership layer's active view:
    /// peers that left the view are dropped, new active peers start out
    /// eager (optimistic — the first duplicate over the edge prunes it).
    pub fn sync_active(&mut self, active: &[PeerId]) {
        let view: BTreeSet<PeerId> = active.iter().copied().collect();
        self.eager.retain(|p| view.contains(p));
        self.lazy.retain(|p| view.contains(p));
        for peer in view {
            if !self.eager.contains(&peer) && !self.lazy.contains(&peer) {
                self.eager.insert(peer);
            }
        }
    }

    /// Records `gid` as seen.  Returns `true` when it was fresh — the caller
    /// applies and forwards the event only then.
    pub fn note_seen(&mut self, gid: GossipId) -> bool {
        if !self.seen.insert(gid) {
            return false;
        }
        self.seen_order.push_back(gid);
        while self.seen_order.len() > self.capacity {
            if let Some(evicted) = self.seen_order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Returns `true` when `gid` was already seen.
    pub fn has_seen(&self, gid: &GossipId) -> bool {
        self.seen.contains(gid)
    }

    /// Stores an event's field list so a later `Graft` can pull it.
    pub fn cache_event(&mut self, gid: GossipId, fields: Vec<(String, String)>) {
        if self.cache.insert(gid, fields).is_none() {
            self.cache_order.push_back(gid);
        }
        while self.cache_order.len() > self.capacity {
            if let Some(evicted) = self.cache_order.pop_front() {
                self.cache.remove(&evicted);
            }
        }
    }

    /// The cached field list of `gid`, if it has not been evicted.
    pub fn cached(&self, gid: &GossipId) -> Option<Vec<(String, String)>> {
        self.cache.get(gid).cloned()
    }

    /// Demotes an edge to lazy (a duplicate arrived over it, or the peer
    /// pruned us).  Returns `true` when the peer was eager until now.
    pub fn demote(&mut self, peer: PeerId) -> bool {
        if self.eager.remove(&peer) {
            self.lazy.insert(peer);
            return true;
        }
        false
    }

    /// Promotes an edge to eager (a digest over it beat the tree, or the
    /// peer grafted it).  Returns `true` when the peer was lazy until now.
    pub fn promote(&mut self, peer: PeerId) -> bool {
        if self.lazy.remove(&peer) {
            self.eager.insert(peer);
            return true;
        }
        false
    }

    /// The eager (tree) edges, sorted.
    pub fn eager(&self) -> Vec<PeerId> {
        self.eager.iter().copied().collect()
    }

    /// The lazy (digest-only) edges, sorted.
    pub fn lazy(&self) -> Vec<PeerId> {
        self.lazy.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxta_crypto::drbg::HmacDrbg;

    fn peers(n: usize, seed: u64) -> Vec<PeerId> {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        (0..n).map(|_| PeerId::random(&mut rng)).collect()
    }

    #[test]
    fn new_active_peers_start_eager_and_leavers_are_dropped() {
        let ids = peers(4, 1);
        let mut state = PlumtreeState::new(16);
        state.sync_active(&ids[..3]);
        assert_eq!(state.eager().len(), 3);
        state.demote(ids[0]);
        assert_eq!(state.lazy(), vec![ids[0]].into_iter().collect::<Vec<_>>());
        // ids[0] leaves the view, ids[3] joins: the demotion survives for
        // the peers that stayed, the newcomer starts eager.
        state.sync_active(&ids[1..]);
        assert!(!state.eager().contains(&ids[0]) && !state.lazy().contains(&ids[0]));
        assert!(state.eager().contains(&ids[3]));
        assert!(state.eager().contains(&ids[1]) && state.eager().contains(&ids[2]));
    }

    #[test]
    fn seen_set_dedups_and_evicts_fifo() {
        let ids = peers(1, 2);
        let mut state = PlumtreeState::new(3);
        assert!(state.note_seen((ids[0], 1)));
        assert!(!state.note_seen((ids[0], 1)), "duplicate");
        assert!(state.note_seen((ids[0], 2)));
        assert!(state.note_seen((ids[0], 3)));
        assert!(state.note_seen((ids[0], 4)), "evicts (_, 1)");
        assert!(!state.has_seen(&(ids[0], 1)), "FIFO eviction at capacity 3");
        assert!(state.has_seen(&(ids[0], 4)));
    }

    #[test]
    fn cache_serves_grafts_until_evicted() {
        let ids = peers(1, 3);
        let mut state = PlumtreeState::new(2);
        let fields = vec![("op".to_string(), "publish".to_string())];
        state.cache_event((ids[0], 1), fields.clone());
        state.cache_event((ids[0], 2), vec![]);
        assert_eq!(state.cached(&(ids[0], 1)), Some(fields));
        state.cache_event((ids[0], 3), vec![]);
        assert_eq!(state.cached(&(ids[0], 1)), None, "FIFO eviction");
        assert!(state.cached(&(ids[0], 3)).is_some());
    }

    #[test]
    fn demote_and_promote_move_edges_between_sets() {
        let ids = peers(2, 4);
        let mut state = PlumtreeState::new(8);
        state.sync_active(&ids);
        assert!(state.demote(ids[0]));
        assert!(!state.demote(ids[0]), "already lazy");
        assert_eq!(state.eager(), vec![ids[1]].into_iter().collect::<Vec<_>>());
        assert!(state.promote(ids[0]));
        assert!(!state.promote(ids[0]), "already eager");
        assert_eq!(state.lazy(), Vec::<PeerId>::new());
    }
}
