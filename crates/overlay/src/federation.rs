//! The broker federation backbone.
//!
//! The paper's architecture (§2.1) describes a *backbone of brokers*: several
//! super-peers that jointly index resources, propagate peer information and
//! act as beacons for client peers.  This module turns a set of independent
//! [`Broker`]s into that backbone:
//!
//! * [`BrokerNetwork`] interconnects brokers (every broker learns every other
//!   as an *admitted* federation peer), spawns their event loops and offers
//!   convergence checks over their replicated state.  State replication
//!   itself — advertisement index, group membership and peer→broker routing —
//!   travels as [`crate::message::MessageKind::BrokerSync`] gossip
//!   implemented by the broker module.
//! * [`InlineFederation`] is the thread-free variant: brokers are registered
//!   on the network but not spawned, and [`InlineFederation::pump`] delivers
//!   queued messages in a deterministic round-robin until quiescence.  The
//!   replication-convergence property tests are built on it, because a
//!   deterministic delivery order makes shrinking and reproduction exact.
//!
//! # The two-layer fabric
//!
//! Interconnection defines *who is admitted*, not *who is talked to*.  The
//! traffic topology layers on top:
//!
//! * At or below the active-view capacity
//!   ([`crate::broker::BrokerConfig::active_view`], default 8), every
//!   broker's view is complete and broadcast gossip goes directly to every
//!   peer — the classic full mesh, byte-identical to the previous fabric.
//! * Beyond it, the epidemic backbone engages: each broker keeps a bounded
//!   HyParView-style active view ([`crate::membership`], with a pinned ring
//!   successor guaranteeing a connected overlay) and disseminates broadcasts
//!   Plumtree-style over it ([`crate::plumtree`]) — eager pushes along the
//!   spanning-tree edges, lazy `IHave` digests on the rest, `Graft`/`Prune`
//!   tree repair, anti-entropy as the last-resort safety net.  Per-broker
//!   fan-out per publish is then O(view), not O(N).
//!   [`crate::broker::BrokerConfig::with_full_mesh`] opts a federation out.
//!
//! A client joined at broker A can therefore discover (via the replicated
//! index) and message (via the [`crate::message::MessageKind::RelayViaBroker`]
//! relay path) a peer joined at broker B.

use crate::broker::{Broker, BrokerHandle};
use crate::group::GroupId;
use crate::id::PeerId;
use crate::net::NetMessage;
use crossbeam::channel::Receiver;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default message budget of [`InlineFederation::pump`]: far beyond anything
/// a converging federation produces, so hitting it means the backbone is
/// feeding itself (a livelock), not that the workload was large.
pub const DEFAULT_PUMP_BUDGET: usize = 100_000;

/// Error returned by [`InlineFederation::try_pump`] when the message budget
/// is exhausted without the queues draining: the backbone is producing
/// traffic at least as fast as it consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpStalled {
    /// Messages processed before giving up.
    pub processed: usize,
}

impl std::fmt::Display for PumpStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "federation pump did not quiesce after {} messages (livelock?)",
            self.processed
        )
    }
}

impl std::error::Error for PumpStalled {}

/// Smallest fraction of the repair-interval ceiling the adaptive cadence can
/// shrink to (observed mismatches halve the interval, at most three times).
pub const MIN_REPAIR_INTERVAL_DIVISOR: u32 = 8;

/// Computes the next anti-entropy delay for `broker` under the adaptive
/// cadence.
///
/// * `ceiling` is the configured repair interval
///   (`with_repair_interval` / [`BrokerNetwork::spawn_with_repair`]) and is
///   never exceeded — it stays the upper bound the operator chose.
/// * `mismatches` is the number of digest mismatches the broker observed
///   since its previous round: each one halves the delay (saturating at
///   `ceiling / MIN_REPAIR_INTERVAL_DIVISOR`), so a diverging backbone
///   repairs aggressively while a healthy one idles at the ceiling.
/// * A deterministic per-broker jitter in `[0.75, 1.0)` of the base delay is
///   applied so the rounds of a large backbone spread out instead of
///   synchronising into periodic digest bursts (every broker ticking at the
///   identical interval would fire in lockstep forever).
pub fn next_repair_delay(ceiling: Duration, mismatches: u64, broker: &PeerId) -> Duration {
    use crate::shard::{fnv1a, mix, FNV_OFFSET};
    let shrink = 1u32 << (mismatches.min(3) as u32); // 1, 2, 4, 8
    let base = ceiling / shrink.min(MIN_REPAIR_INTERVAL_DIVISOR);
    let jitter_permille = 750 + (mix(fnv1a(FNV_OFFSET, broker.as_bytes())) % 250) as u32;
    base.mul_f64(f64::from(jitter_permille) / 1000.0)
}

/// Interconnects `brokers` into a full mesh: every broker learns every other
/// broker's identifier as a federation peer.
pub fn interconnect(brokers: &[Arc<Broker>]) {
    for a in brokers {
        for b in brokers {
            if a.id() != b.id() {
                a.add_peer_broker(b.id());
            }
        }
    }
}

/// Returns `true` when every broker in `brokers` holds the replicated state
/// it is responsible for and all copies agree.
///
/// * Fully replicated federation (no replication factor): identical
///   advertisement indexes, group membership and peer→broker routing on
///   every broker — PR 2's definition, unchanged.
/// * Sharded federation: the peer→broker routing still matches everywhere
///   (it stays fully replicated), while every index/membership entry must
///   live on **exactly** its ring replica set with identical content — plus,
///   for membership, the member's home broker, which keeps its local
///   sessions' memberships as ground truth.
pub fn converged(brokers: &[Arc<Broker>]) -> bool {
    let Some((first, rest)) = brokers.split_first() else {
        return true;
    };
    if first.replication_factor().is_some() {
        return sharded_converged(brokers);
    }
    let advertisements = first.advertisement_snapshot();
    let groups = first.groups().snapshot();
    let routing = first.routing_snapshot();
    rest.iter().all(|broker| {
        broker.advertisement_snapshot() == advertisements
            && broker.groups().snapshot() == groups
            && broker.routing_snapshot() == routing
    })
}

/// Sharded convergence check (see [`converged`]).
pub fn sharded_converged(brokers: &[Arc<Broker>]) -> bool {
    let Some(first) = brokers.first() else {
        return true;
    };
    // Routing is fully replicated in both modes.
    let routing = first.routing_snapshot();
    if !brokers.iter().all(|b| b.routing_snapshot() == routing) {
        return false;
    }

    // Where is every peer homed (for the membership ground-truth exception)?
    let homes: BTreeMap<PeerId, PeerId> = routing.iter().copied().collect();

    // Advertisement entries: group every copy by key and compare the holder
    // set against the ring's replica set.
    type Holders = (BTreeSet<PeerId>, BTreeSet<String>);
    let mut entries: BTreeMap<(GroupId, PeerId, String), Holders> = BTreeMap::new();
    for broker in brokers {
        for (group, owner, doc_type, xml) in broker.advertisement_snapshot() {
            let slot = entries.entry((group, owner, doc_type)).or_default();
            slot.0.insert(broker.id());
            slot.1.insert(xml);
        }
    }
    for ((group, owner, _doc_type), (holders, xmls)) in &entries {
        let expected: BTreeSet<PeerId> =
            first.shard_replicas(group, owner).into_iter().collect();
        if xmls.len() != 1 || *holders != expected {
            return false;
        }
    }

    // Membership entries: replica set plus (possibly) the member's home.
    let mut membership: BTreeMap<(GroupId, PeerId), BTreeSet<PeerId>> = BTreeMap::new();
    for broker in brokers {
        for (group, members) in broker.groups().snapshot() {
            for member in members {
                membership
                    .entry((group.clone(), member))
                    .or_default()
                    .insert(broker.id());
            }
        }
    }
    for ((group, member), holders) in &membership {
        let mut expected: BTreeSet<PeerId> =
            first.shard_replicas(group, member).into_iter().collect();
        if let Some(home) = homes.get(member) {
            expected.insert(*home);
        }
        if *holders != expected {
            return false;
        }
    }
    true
}

/// A running federation: a full mesh of spawned brokers, optionally running
/// periodic anti-entropy repair.
pub struct BrokerNetwork {
    handles: Vec<BrokerHandle>,
    /// Broker list shared with the repair thread (membership changes through
    /// [`BrokerNetwork::add_broker`]/[`BrokerNetwork::remove_broker`] are
    /// visible to it immediately).
    brokers: Arc<parking_lot::RwLock<Vec<Arc<Broker>>>>,
    repair: Option<RepairLoop>,
}

/// The periodic anti-entropy driver of a spawned federation.
struct RepairLoop {
    shutdown: crossbeam::channel::Sender<()>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for RepairLoop {
    fn drop(&mut self) {
        let _ = self.shutdown.send(());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl BrokerNetwork {
    /// Interconnects the brokers into a full mesh and spawns their event
    /// loops.  No periodic repair; see [`BrokerNetwork::spawn_with_repair`].
    ///
    /// # Panics
    ///
    /// Panics if `brokers` is empty — a deployment has at least one broker.
    pub fn spawn(brokers: Vec<Arc<Broker>>) -> Self {
        Self::spawn_with_repair(brokers, None)
    }

    /// Like [`BrokerNetwork::spawn`], but additionally runs periodic
    /// anti-entropy repair (when `interval` is `Some`), so replica
    /// divergence caused by lost backbone gossip heals within a bounded
    /// number of rounds instead of persisting forever.
    ///
    /// `interval` is the **ceiling** of an adaptive cadence, not a fixed
    /// period: each broker's next round is scheduled by
    /// [`next_repair_delay`] — digest mismatches observed since its previous
    /// round shrink the delay (down to `interval / 8`), a healthy broker
    /// idles at the ceiling, and a deterministic per-broker jitter keeps the
    /// rounds of a large backbone from synchronising.
    ///
    /// # Panics
    ///
    /// Panics if `brokers` is empty.
    pub fn spawn_with_repair(brokers: Vec<Arc<Broker>>, interval: Option<Duration>) -> Self {
        assert!(!brokers.is_empty(), "a federation needs at least one broker");
        interconnect(&brokers);
        let handles: Vec<BrokerHandle> = brokers.iter().map(|broker| broker.spawn()).collect();
        let brokers = Arc::new(parking_lot::RwLock::with_class("federation.brokers", brokers));
        let repair = interval.map(|interval| {
            let (shutdown_tx, shutdown_rx) = crossbeam::channel::bounded::<()>(1);
            let brokers = Arc::clone(&brokers);
            let thread = std::thread::Builder::new()
                .name("federation-repair".to_string())
                .spawn(move || {
                    // The scheduler ticks well below the smallest adaptive
                    // delay so due times are honoured with useful precision.
                    let tick = (interval / (2 * MIN_REPAIR_INTERVAL_DIVISOR))
                        .max(Duration::from_millis(1));
                    let mut next_due: BTreeMap<PeerId, Instant> = BTreeMap::new();
                    let mut seen_mismatches: BTreeMap<PeerId, u64> = BTreeMap::new();
                    while let Err(crossbeam::channel::RecvTimeoutError::Timeout) =
                        shutdown_rx.recv_timeout(tick)
                    {
                        let now = crate::clock::now();
                        let current: Vec<Arc<Broker>> = brokers.read().clone();
                        for broker in &current {
                            let id = broker.id();
                            match next_due.get(&id) {
                                None => {
                                    // Newly tracked broker: schedule its
                                    // first round a (jittered) ceiling out,
                                    // matching the fixed cadence's start-up.
                                    next_due
                                        .insert(id, now + next_repair_delay(interval, 0, &id));
                                }
                                Some(due) if *due <= now => {
                                    let mismatches =
                                        broker.federation_stats().repair_mismatches;
                                    let since_last = mismatches
                                        .saturating_sub(
                                            seen_mismatches.insert(id, mismatches).unwrap_or(0),
                                        );
                                    broker.start_repair_round();
                                    next_due.insert(
                                        id,
                                        now + next_repair_delay(interval, since_last, &id),
                                    );
                                }
                                Some(_) => {}
                            }
                        }
                        // Forget brokers that left the federation.
                        next_due.retain(|id, _| current.iter().any(|b| b.id() == *id));
                        seen_mismatches.retain(|id, _| current.iter().any(|b| b.id() == *id));
                    }
                })
                .expect("failed to spawn federation repair thread");
            RepairLoop {
                shutdown: shutdown_tx,
                thread: Some(thread),
            }
        });
        BrokerNetwork {
            handles,
            brokers,
            repair,
        }
    }

    /// Triggers one anti-entropy round on every broker immediately (useful
    /// when no periodic interval is configured, or to avoid waiting for the
    /// next tick in tests).
    pub fn trigger_repair(&self) {
        for broker in self.brokers.read().iter() {
            broker.start_repair_round();
        }
    }

    /// Admits a new broker into the running federation: its event loop is
    /// spawned, the full mesh is extended on both sides, and every broker
    /// re-shards so the entries the newcomer now owns migrate onto it — the
    /// spawned-path equivalent of [`InlineFederation::add_broker`].  Callers
    /// should [`BrokerNetwork::await_convergence`] afterwards (migration
    /// gossip drains asynchronously on the broker threads).
    pub fn add_broker(&mut self, broker: Arc<Broker>) {
        // Spawn first so the newcomer's endpoint exists before any migration
        // gossip is addressed to it.
        let handle = broker.spawn();
        {
            let mut brokers = self.brokers.write();
            for existing in brokers.iter() {
                existing.add_peer_broker(broker.id());
                broker.add_peer_broker(existing.id());
            }
            brokers.push(Arc::clone(&broker));
        }
        self.handles.push(handle);
        for broker in self.brokers.read().iter() {
            broker.reshard();
        }
        // Re-sharding migrates entries onto the newcomer in sharded mode; in
        // full-replication mode it is a no-op, so an anti-entropy round is
        // what transfers the existing state (and the extensions' replicated
        // state, e.g. prior revocations) to the new broker.
        self.trigger_repair();
    }

    /// Removes the `index`-th broker from the running federation: its local
    /// sessions are dropped (their clients lose their home, exactly as a
    /// broker crash would), the departure gossip is given a moment to drain,
    /// its event loop is shut down, and every survivor forgets it and
    /// re-shards — the spawned-path equivalent of
    /// [`InlineFederation::remove_broker`].  The crashed-broker client
    /// cleanup in [`Broker::remove_peer_broker`] covers whatever the drain
    /// missed.  Returns the removed broker.
    pub fn remove_broker(&mut self, index: usize) -> Arc<Broker> {
        let handle = self.handles.remove(index);
        let removed = self.brokers.write().remove(index);
        let local_peers: Vec<PeerId> = removed
            .routing_snapshot()
            .into_iter()
            .filter(|(_, home)| *home == removed.id())
            .map(|(peer, _)| peer)
            .collect();
        for peer in &local_peers {
            removed.drop_session(peer);
        }
        // Let the departure gossip drain while the leaver is still a peer:
        // poll until every survivor has processed everything delivered to it.
        let deadline = crate::clock::now() + Duration::from_millis(500);
        while crate::clock::now() < deadline {
            let drained = self.brokers.read().iter().all(|broker| {
                broker.processed_count() == broker.network().delivered_to(&broker.id())
            });
            if drained {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.shutdown();
        for survivor in self.brokers.read().iter() {
            survivor.remove_peer_broker(&removed.id());
        }
        for survivor in self.brokers.read().iter() {
            survivor.reshard();
        }
        removed
    }

    /// Number of brokers in the federation.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Returns `true` if the federation has no brokers (never the case for a
    /// spawned federation; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The `index`-th broker.
    pub fn broker(&self, index: usize) -> &Arc<Broker> {
        self.handles[index].broker()
    }

    /// The `index`-th broker's peer identifier.
    pub fn id(&self, index: usize) -> PeerId {
        self.handles[index].id()
    }

    /// All broker identifiers, in deployment order.
    pub fn ids(&self) -> Vec<PeerId> {
        self.handles.iter().map(|h| h.id()).collect()
    }

    /// Returns `true` when all brokers hold the replicated state they are
    /// responsible for **and** the backbone is quiescent (every broker has
    /// processed everything delivered to it, and nothing new arrived while
    /// we looked).
    ///
    /// The quiescence guard matters for sharded federations: a publish whose
    /// origin broker is not one of the entry's replicas exists *nowhere*
    /// while its gossip is in flight, so a pure state comparison could
    /// declare convergence a moment before the entry appears.  Comparing the
    /// monotone delivered/processed counters before and after the state
    /// check closes that window.
    pub fn converged(&self) -> bool {
        let brokers: Vec<Arc<Broker>> =
            self.handles.iter().map(|h| Arc::clone(h.broker())).collect();
        let delivered_before: Vec<u64> = brokers
            .iter()
            .map(|b| b.network().delivered_to(&b.id()))
            .collect();
        if brokers
            .iter()
            .zip(&delivered_before)
            .any(|(b, delivered)| b.processed_count() != *delivered)
        {
            return false; // messages still queued or being applied
        }
        if !converged(&brokers) {
            return false;
        }
        // No new deliveries during the state check: what we compared is the
        // settled state, not a snapshot straddling in-flight gossip.
        brokers
            .iter()
            .zip(&delivered_before)
            .all(|(b, delivered)| b.network().delivered_to(&b.id()) == *delivered)
    }

    /// Polls until the brokers converge or the timeout expires.  Returns
    /// `true` on convergence.
    pub fn await_convergence(&self, timeout: Duration) -> bool {
        let deadline = crate::clock::now() + timeout;
        loop {
            if self.converged() {
                return true;
            }
            if crate::clock::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Shuts every broker down and waits for their threads (the repair loop,
    /// when one is running, stops first).
    pub fn shutdown(self) {
        let BrokerNetwork {
            handles, repair, ..
        } = self;
        drop(repair);
        for handle in handles {
            handle.shutdown();
        }
    }
}

/// A thread-free federation for deterministic tests: brokers are registered
/// on the network but their event loops are driven explicitly by
/// [`InlineFederation::pump`].
pub struct InlineFederation {
    brokers: Vec<Arc<Broker>>,
    inboxes: Vec<Receiver<NetMessage>>,
}

impl InlineFederation {
    /// Interconnects the brokers and registers their endpoints without
    /// spawning threads.
    pub fn new(brokers: Vec<Arc<Broker>>) -> Self {
        interconnect(&brokers);
        let inboxes = brokers
            .iter()
            .map(|broker| broker.network().register(broker.id()))
            .collect();
        InlineFederation { brokers, inboxes }
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Returns `true` if the federation holds no brokers.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// The `index`-th broker.
    pub fn broker(&self, index: usize) -> &Arc<Broker> {
        &self.brokers[index]
    }

    /// Delivers queued inter-broker messages round-robin until every inbox is
    /// empty (processing a message may enqueue new ones, e.g. a relay hop).
    /// Returns the number of messages processed.  Delivery order is fully
    /// deterministic, which the replication proptests rely on.
    ///
    /// # Panics
    ///
    /// Panics if [`DEFAULT_PUMP_BUDGET`] messages do not drain the queues —
    /// the backbone is livelocked (see [`InlineFederation::try_pump`] for
    /// the non-panicking form).  A healthy federation converges within a
    /// small multiple of the events applied, so the budget is never reached
    /// in legitimate workloads.
    pub fn pump(&self) -> usize {
        match self.try_pump(DEFAULT_PUMP_BUDGET) {
            Ok(processed) => processed,
            Err(stalled) => panic!("{stalled}"),
        }
    }

    /// Like [`InlineFederation::pump`], but gives up with [`PumpStalled`]
    /// once `budget` messages have been processed without the queues
    /// draining, instead of spinning forever when the backbone produces
    /// traffic at least as fast as it consumes it (e.g. an adversary that
    /// re-injects a message for every delivery).
    pub fn try_pump(&self, budget: usize) -> Result<usize, PumpStalled> {
        let mut processed = 0;
        loop {
            let mut progressed = false;
            for (broker, inbox) in self.brokers.iter().zip(&self.inboxes) {
                while let Ok(net_message) = inbox.try_recv() {
                    broker.process_net(net_message);
                    processed += 1;
                    progressed = true;
                    if processed >= budget {
                        // Spending the whole budget is a stall only if work
                        // remains: a workload of exactly `budget` messages
                        // that drains the queues is a success, not a
                        // livelock.
                        return if self.inboxes.iter().all(|i| i.is_empty()) {
                            Ok(processed)
                        } else {
                            Err(PumpStalled { processed })
                        };
                    }
                }
            }
            if !progressed {
                return Ok(processed);
            }
        }
    }

    /// Admits a new broker into the running federation: full-mesh
    /// interconnection, ring membership on every broker, and a re-shard so
    /// the entries the newcomer now owns migrate onto it.  The migration is
    /// pumped to quiescence before returning.
    pub fn add_broker(&mut self, broker: Arc<Broker>) {
        let inbox = broker.network().register(broker.id());
        for existing in &self.brokers {
            existing.add_peer_broker(broker.id());
            broker.add_peer_broker(existing.id());
        }
        self.brokers.push(broker);
        self.inboxes.push(inbox);
        for broker in &self.brokers {
            broker.reshard();
        }
        self.pump();
        // Re-sharding is a no-op under full replication — an anti-entropy
        // round is what hands the newcomer the existing state there (and
        // extension state, e.g. prior revocations, in either mode).
        self.repair();
    }

    /// Removes the `index`-th broker from the federation: its local sessions
    /// are dropped (their clients lose their home, exactly as a broker crash
    /// would), every survivor forgets it and re-shards, and the migration is
    /// pumped to quiescence.  Returns the removed broker.
    pub fn remove_broker(&mut self, index: usize) -> Arc<Broker> {
        let removed = self.brokers.remove(index);
        self.inboxes.remove(index);
        let local_peers: Vec<PeerId> = removed
            .routing_snapshot()
            .into_iter()
            .filter(|(_, home)| *home == removed.id())
            .map(|(peer, _)| peer)
            .collect();
        for peer in &local_peers {
            removed.drop_session(peer);
        }
        // Let the departure gossip drain while the leaver is still a peer.
        self.pump();
        removed.network().unregister(&removed.id());
        for survivor in &self.brokers {
            survivor.remove_peer_broker(&removed.id());
        }
        for survivor in &self.brokers {
            survivor.reshard();
        }
        self.pump();
        removed
    }

    /// Returns `true` when all brokers hold identical replicated state.
    pub fn converged(&self) -> bool {
        converged(&self.brokers)
    }

    /// Runs one deterministic anti-entropy round: every broker digests its
    /// shared state to every peer, and the resulting snapshot exchanges are
    /// pumped to quiescence.  Returns the number of entries repaired across
    /// the federation in this round (zero on a healthy backbone).
    pub fn repair(&self) -> u64 {
        let before: u64 = self
            .brokers
            .iter()
            .map(|broker| broker.federation_stats().entries_repaired)
            .sum();
        for broker in &self.brokers {
            broker.start_repair_round();
        }
        self.pump();
        let after: u64 = self
            .brokers
            .iter()
            .map(|broker| broker.federation_stats().entries_repaired)
            .sum();
        after - before
    }

    /// Repairs until the federation converges, up to `max_rounds` rounds.
    /// Returns `Some(rounds_used)` on convergence (zero when it was already
    /// converged) and `None` when the bound was exhausted — divergence that
    /// anti-entropy cannot heal is a bug, and tests assert on it.
    pub fn repair_until_converged(&self, max_rounds: usize) -> Option<usize> {
        for round in 0..=max_rounds {
            if self.converged() {
                return Some(round);
            }
            if round == max_rounds {
                break;
            }
            self.repair();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;

    fn make_brokers(n: usize, seed: u64) -> (Arc<SimNetwork>, Arc<UserDatabase>, Vec<Arc<Broker>>) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let brokers = (0..n)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("broker-{}", i + 1)),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        (network, database, brokers)
    }

    fn make_sharded_brokers(
        n: usize,
        k: usize,
        seed: u64,
    ) -> (Arc<SimNetwork>, Arc<UserDatabase>, Vec<Arc<Broker>>) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let brokers = (0..n)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::sharded(format!("broker-{}", i + 1), k),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        (network, database, brokers)
    }

    /// Publishes `count` advertisements with distinct owners from `broker`.
    fn publish_batch(
        federation: &InlineFederation,
        broker: usize,
        count: usize,
        rng: &mut HmacDrbg,
    ) -> Vec<PeerId> {
        (0..count)
            .map(|i| {
                let owner = PeerId::random(rng);
                federation.broker(broker).index_and_distribute(
                    owner,
                    &GroupId::new("math"),
                    "jxta:PipeAdvertisement",
                    &format!("<adv n=\"{i}\"/>"),
                );
                owner
            })
            .collect()
    }

    #[test]
    fn interconnect_builds_a_full_mesh() {
        let (_net, _db, brokers) = make_brokers(3, 0xFED0);
        interconnect(&brokers);
        for (i, broker) in brokers.iter().enumerate() {
            let peers = broker.peer_brokers();
            assert_eq!(peers.len(), 2);
            for (j, other) in brokers.iter().enumerate() {
                assert_eq!(broker.is_peer_broker(&other.id()), i != j);
            }
        }
    }

    /// Brokers with small pinned view capacities, to engage the epidemic
    /// fabric in federation sizes a test can afford.
    fn make_view_brokers(
        n: usize,
        active: usize,
        passive: usize,
        seed: u64,
    ) -> (Arc<SimNetwork>, Arc<UserDatabase>, Vec<Arc<Broker>>) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let brokers = (0..n)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("broker-{}", i + 1))
                        .with_view_capacities(active, passive),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        (network, database, brokers)
    }

    #[test]
    fn small_federations_keep_the_full_mesh_fabric() {
        let (_net, _db, brokers) = make_brokers(3, 0xE800);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xE801);
        for broker in 0..3 {
            assert!(
                !federation.broker(broker).epidemic_engaged(),
                "2 peers fit a default active view of 8"
            );
        }
        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        federation.pump();
        assert!(federation.converged());
        let stats = federation.broker(0).federation_stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.publish_fanout_max, 2, "mesh fan-out is N-1");
        assert_eq!(stats.eager_pushes, 0, "no Plumtree below the threshold");
    }

    #[test]
    fn engagement_threshold_is_a_config_knob() {
        // Default rule: engage once peers outgrow the active view.
        let (_net, _db, brokers) = make_view_brokers(6, 3, 8, 0xE830);
        let federation = InlineFederation::new(brokers);
        assert!(federation.broker(0).epidemic_engaged(), "5 peers > view 3");

        // Pinned high: the same federation stays full mesh — a deployment
        // can hold the mesh fabric up to a larger backbone than its view.
        let mut rng = HmacDrbg::from_seed_u64(0xE831);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        let build = |threshold: usize, rng: &mut HmacDrbg| -> Vec<Arc<Broker>> {
            (0..6)
                .map(|i| {
                    Broker::new(
                        PeerId::random(rng),
                        BrokerConfig::named(format!("t{i}"))
                            .with_view_capacities(3, 8)
                            .with_engagement_threshold(threshold),
                        Arc::clone(&network),
                        Arc::clone(&database),
                    )
                })
                .collect()
        };
        let held = InlineFederation::new(build(16, &mut rng));
        assert!(
            !held.broker(0).epidemic_engaged(),
            "threshold 16 holds 5 peers in full mesh despite view 3"
        );
        // Pinned at zero: even a tiny federation engages (the test knob).
        let eager = InlineFederation::new(build(0, &mut rng));
        assert!(
            eager.broker(0).epidemic_engaged(),
            "threshold 0 engages at any size"
        );
        // Both shapes still replicate correctly.
        let alice = PeerId::random(&mut rng);
        held.broker(0).establish_session(alice, "alice");
        held.broker(0).index_and_distribute(
            alice,
            &GroupId::new("math"),
            "jxta:PipeAdvertisement",
            "<held/>",
        );
        held.pump();
        assert!(held.converged());
        eager.broker(1).index_and_distribute(
            PeerId::random(&mut rng),
            &GroupId::new("math"),
            "jxta:PipeAdvertisement",
            "<eager/>",
        );
        eager.pump();
        assert!(eager.repair_until_converged(4).is_some());
    }

    #[test]
    fn lazy_ihaves_batch_across_publishes_until_the_repair_tick() {
        const N: usize = 10;
        let (_net, _db, brokers) = make_view_brokers(N, 3, 8, 0xE840);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xE841);
        let group = GroupId::new("math");
        // Prune the initial all-eager topology so lazy edges exist.
        for round in 0..8 {
            federation.broker(0).index_and_distribute(
                PeerId::random(&mut rng),
                &group,
                "jxta:PipeAdvertisement",
                &format!("<warm n=\"{round}\"/>"),
            );
            federation.pump();
            federation.repair();
            let pruned: u64 = (0..N)
                .map(|i| federation.broker(i).federation_stats().prunes_sent)
                .sum();
            if pruned > 0 {
                break;
            }
        }
        let stat = |pick: fn(&crate::metrics::FederationStats) -> u64| -> u64 {
            (0..N)
                .map(|i| pick(&federation.broker(i).federation_stats()))
                .sum()
        };
        assert!(stat(|s| s.prunes_sent) > 0, "warm-up pruned the eager graph");

        // A burst of publishes between repair ticks: no IHave digest moves
        // until the tick, then each lazy edge gets exactly one digest
        // carrying the whole burst — the per-publish digests are the saving.
        let ihaves_before = stat(|s| s.ihaves_sent);
        let saved_before = stat(|s| s.ihave_digests_saved);
        const BURST: u64 = 5;
        for n in 0..BURST {
            federation.broker(0).index_and_distribute(
                PeerId::random(&mut rng),
                &group,
                "jxta:PipeAdvertisement",
                &format!("<burst n=\"{n}\"/>"),
            );
            federation.pump();
        }
        assert_eq!(
            stat(|s| s.ihaves_sent),
            ihaves_before,
            "no IHave digest ships between repair ticks"
        );
        federation.repair();
        let shipped = stat(|s| s.ihaves_sent) - ihaves_before;
        let saved = stat(|s| s.ihave_digests_saved) - saved_before;
        assert!(shipped > 0, "the repair tick ships the batched digests");
        assert!(saved > 0, "a multi-publish burst saves per-publish digests");
        // Aggregated over every (broker, lazy edge): per-publish flushing
        // would have cost `shipped + saved` digests; each destination's
        // batch of k ids saved k-1, bounded by BURST-1 per edge.
        assert!(saved <= (BURST - 1) * shipped);
        assert!(federation.repair_until_converged(4).is_some());
    }

    #[test]
    fn epidemic_backbone_converges_with_bounded_fanout() {
        const N: usize = 10;
        const ACTIVE: usize = 3;
        let (_net, _db, brokers) = make_view_brokers(N, ACTIVE, 8, 0xE810);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xE811);
        for i in 0..N {
            assert!(federation.broker(i).epidemic_engaged());
            let view = federation.broker(i).active_view();
            assert!(!view.is_empty() && view.len() <= ACTIVE + 1);
        }

        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        federation.broker(0).index_and_distribute(
            alice,
            &GroupId::new("math"),
            "jxta:PipeAdvertisement",
            "<epidemic/>",
        );
        federation.pump();
        assert!(
            federation.converged(),
            "epidemic dissemination must reach every broker"
        );
        // The far side resolves the advertisement and the route.
        assert_eq!(
            federation
                .broker(N - 1)
                .lookup(&GroupId::new("math"), "jxta:PipeAdvertisement", Some(alice)),
            vec!["<epidemic/>".to_string()]
        );
        assert_eq!(
            federation.broker(N - 1).home_of(&alice),
            Some(federation.broker(0).id())
        );

        let stats = federation.broker(0).federation_stats();
        assert!(
            stats.publish_fanout_max <= (ACTIVE + 1) as u64,
            "origin fan-out {} exceeds the active view bound",
            stats.publish_fanout_max
        );
        assert!(stats.eager_pushes > 0, "dissemination went over tree edges");
    }

    #[test]
    fn epidemic_leave_and_rehome_converge_like_the_mesh() {
        const N: usize = 9;
        let (_net, _db, brokers) = make_view_brokers(N, 2, 8, 0xE820);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xE821);
        let alice = PeerId::random(&mut rng);

        federation.broker(0).establish_session(alice, "alice");
        federation.pump();
        for i in 0..N {
            assert_eq!(
                federation.broker(i).home_of(&alice),
                Some(federation.broker(0).id()),
                "join must replicate through the epidemic fabric"
            );
        }
        // Re-home: the leave and the new join both travel epidemically.
        federation.broker(0).drop_session(&alice);
        federation.broker(4).establish_session(alice, "alice");
        federation.pump();
        assert!(federation.converged());
        for i in 0..N {
            assert_eq!(
                federation.broker(i).home_of(&alice),
                Some(federation.broker(4).id())
            );
        }
    }

    #[test]
    fn full_mesh_opt_out_bypasses_the_epidemic_fabric() {
        let mut rng = HmacDrbg::from_seed_u64(0xE830);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        let brokers: Vec<Arc<Broker>> = (0..6)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("broker-{}", i + 1))
                        .with_view_capacities(2, 4)
                        .with_full_mesh(),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let federation = InlineFederation::new(brokers);
        let alice = PeerId::random(&mut rng);
        assert!(!federation.broker(0).epidemic_engaged());
        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<m/>");
        federation.pump();
        assert!(federation.converged());
        let stats = federation.broker(0).federation_stats();
        assert_eq!(stats.publish_fanout_max, 5, "pinned mesh sends to N-1");
        assert_eq!(stats.eager_pushes, 0);
    }

    /// Satellite regression for group-aware push routing: a sharded 3-broker
    /// federation with a single-broker group must send **zero** backbone
    /// traffic for that group's publishes to the two uninvolved brokers —
    /// and a member homed on a non-replica broker must still get its push.
    #[test]
    fn sharded_publish_targets_only_replicas_and_member_hosts() {
        let mut rng = HmacDrbg::from_seed_u64(0xE840);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "carol", "pw-c", &[GroupId::new("solo")]);
        database.register_user(&mut rng, "dina", "pw-d", &[GroupId::new("solo")]);
        let brokers: Vec<Arc<Broker>> = (0..3)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::sharded(format!("broker-{}", i + 1), 1),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let federation = InlineFederation::new(brokers);
        let group = GroupId::new("solo");
        let home = federation.broker(0).id();
        // Pick the publisher id so broker 0 — its home — is also the entry's
        // single ring replica: the publish then involves no other broker.
        let carol = loop {
            let candidate = PeerId::random(&mut rng);
            if federation.broker(0).shard_replicas(&group, &candidate) == vec![home] {
                break candidate;
            }
        };
        federation.broker(0).establish_session(carol, "carol");
        federation.pump();

        let idle: Vec<u64> = (1..3)
            .map(|i| network.delivered_to(&federation.broker(i).id()))
            .collect();
        federation.broker(0).index_and_distribute(
            carol,
            &group,
            "jxta:PipeAdvertisement",
            "<solo/>",
        );
        federation.pump();
        for (i, before) in (1..3).zip(&idle) {
            assert_eq!(
                network.delivered_to(&federation.broker(i).id()),
                *before,
                "broker {i} hosts no member and replicates nothing for the group"
            );
        }
        assert!(federation.converged());
        assert_eq!(
            federation.broker(0).federation_stats().publish_fanout_max,
            0,
            "single-broker group costs zero backbone messages per publish"
        );

        // A second member homed at broker 1 (not a replica of the entry)
        // turns broker 1 into a push target — and only broker 1.
        let dina = PeerId::random(&mut rng);
        let dina_inbox = network.register(dina);
        federation.broker(1).establish_session(dina, "dina");
        federation.pump();
        let idle_2 = network.delivered_to(&federation.broker(2).id());
        federation.broker(0).index_and_distribute(
            carol,
            &group,
            "jxta:PipeAdvertisement",
            "<solo v=\"2\"/>",
        );
        federation.pump();
        assert_eq!(
            network.delivered_to(&federation.broker(2).id()),
            idle_2,
            "broker 2 still hosts nobody in the group"
        );
        let pushes: Vec<crate::message::Message> = dina_inbox
            .try_iter()
            .filter_map(|net| crate::message::Message::from_bytes(&net.payload).ok())
            .filter(|m| m.kind == crate::message::MessageKind::AdvertisementPush)
            .collect();
        assert!(
            pushes.iter().any(|m| m.element_str("xml").as_deref() == Some("<solo v=\"2\"/>")),
            "member on the non-replica host broker must receive the push"
        );
        assert!(federation.converged(), "store stays confined to the replica");
    }

    #[test]
    fn inline_pump_replicates_session_and_index() {
        let (_net, _db, brokers) = make_brokers(3, 0xFED1);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED2);
        let alice = PeerId::random(&mut rng);

        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        assert!(!federation.converged(), "gossip is still queued");
        assert!(federation.pump() > 0);
        assert!(federation.converged());

        // Broker 2 never saw the client, yet resolves the advertisement and
        // knows where the peer is homed.
        assert_eq!(
            federation
                .broker(2)
                .lookup(&GroupId::new("math"), "jxta:PipeAdvertisement", Some(alice)),
            vec!["<a/>".to_string()]
        );
        assert_eq!(federation.broker(2).home_of(&alice), Some(federation.broker(0).id()));
        assert_eq!(federation.pump(), 0, "pump is idempotent once quiescent");
    }

    #[test]
    fn rehoming_a_peer_moves_its_route() {
        let (_net, _db, brokers) = make_brokers(2, 0xFED3);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED4);
        let alice = PeerId::random(&mut rng);

        federation.broker(0).establish_session(alice, "alice");
        federation.pump();
        assert_eq!(federation.broker(1).home_of(&alice), Some(federation.broker(0).id()));

        // The same peer drops off broker 0 and logs in at broker 1.
        federation.broker(0).drop_session(&alice);
        federation.broker(1).establish_session(alice, "alice");
        federation.pump();
        assert!(federation.converged());
        for i in 0..2 {
            assert_eq!(
                federation.broker(i).home_of(&alice),
                Some(federation.broker(1).id())
            );
        }
    }

    #[test]
    fn republish_from_a_quiet_broker_beats_the_busy_brokers_replica() {
        // Regression: LWW versions are (per-origin seq, origin id).  Without
        // a Lamport merge of observed sequence numbers, a fresh publish on a
        // quiet broker (low counter) would lose against the replica of an
        // older publish from a busy broker (high counter) — the update would
        // be silently discarded federation-wide.
        let (_net, _db, brokers) = make_brokers(2, 0xFED8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED9);
        let alice = PeerId::random(&mut rng);
        let group = GroupId::new("math");

        // Busy broker 0: the target entry plus unrelated traffic that
        // inflates its sequence counter well past broker 1's.
        federation
            .broker(0)
            .index_and_distribute(alice, &group, "jxta:PipeAdvertisement", "<old/>");
        for i in 0..5 {
            federation.broker(0).index_and_distribute(
                alice,
                &group,
                &format!("jxta:OtherAdvertisement-{i}"),
                "<noise/>",
            );
        }
        federation.pump();

        // Quiet broker 1 republishes the same (owner, doc type) key.
        federation
            .broker(1)
            .index_and_distribute(alice, &group, "jxta:PipeAdvertisement", "<new/>");
        federation.pump();

        assert!(federation.converged());
        for i in 0..2 {
            assert_eq!(
                federation
                    .broker(i)
                    .lookup(&group, "jxta:PipeAdvertisement", Some(alice)),
                vec!["<new/>".to_string()],
                "broker {i} must serve the republished advertisement"
            );
        }
    }

    #[test]
    fn stale_gossip_cannot_ghost_a_live_session() {
        // Regression: join at A, leave at A, join at B — all before any
        // gossip is delivered.  A's leave is sequenced above B's join, so a
        // naive LWW would log the peer out of B (its *live* home) once the
        // gossip lands.  The live-session re-assertion (lower-id broker) or
        // the shadow-and-resurrect path (higher-id broker) must win instead,
        // whatever the broker id order is and even when the stale home's
        // sequence counter is inflated far past the live home's (the case
        // where the stale join outranks the live one outright).
        for (home, other) in [(0usize, 1usize), (1, 0)] {
            for inflate in [false, true] {
                let (_net, _db, brokers) = make_brokers(2, 0xFEDA);
                let federation = InlineFederation::new(brokers);
                let mut rng = HmacDrbg::from_seed_u64(0xFEDB);
                let alice = PeerId::random(&mut rng);
                let label = format!("home={home} inflate={inflate}");

                if inflate {
                    let noise = PeerId::random(&mut rng);
                    for i in 0..5 {
                        federation.broker(other).index_and_distribute(
                            noise,
                            &GroupId::new("noise"),
                            &format!("jxta:Noise-{i}"),
                            "<n/>",
                        );
                    }
                }
                federation.broker(other).establish_session(alice, "alice");
                federation.broker(other).drop_session(&alice);
                federation.broker(home).establish_session(alice, "alice");
                federation.pump();

                assert!(federation.converged(), "{label}");
                let home_id = federation.broker(home).id();
                for i in 0..2 {
                    assert_eq!(
                        federation.broker(i).home_of(&alice),
                        Some(home_id),
                        "broker {i} must route to the live home ({label})"
                    );
                }
                assert!(
                    federation.broker(home).session(&alice).is_some(),
                    "the live session survives the stale leave ({label})"
                );
                assert!(
                    federation
                        .broker(home)
                        .groups()
                        .is_member(&GroupId::new("math"), &alice),
                    "membership survives too ({label})"
                );
            }
        }
    }

    #[test]
    fn spawned_federation_serves_clients_at_different_brokers() {
        use crate::client::{ClientConfig, ClientEvent, ClientPeer};
        let (network, _db, brokers) = make_brokers(2, 0xFED5);
        let federation = BrokerNetwork::spawn(brokers);
        assert_eq!(federation.len(), 2);
        assert!(!federation.is_empty());
        let mut rng = HmacDrbg::from_seed_u64(0xFED6);

        let mut alice =
            ClientPeer::with_random_id(Arc::clone(&network), ClientConfig::named("alice-pc"), &mut rng);
        let mut bob =
            ClientPeer::with_random_id(Arc::clone(&network), ClientConfig::named("bob-pc"), &mut rng);
        alice.connect(federation.id(0)).unwrap();
        alice.login("alice", "pw-a").unwrap();
        bob.connect(federation.id(1)).unwrap();
        bob.login("bob", "pw-b").unwrap();

        let group = GroupId::new("math");
        bob.publish_pipe(&group).unwrap();
        assert!(federation.await_convergence(Duration::from_secs(2)));

        // Alice resolves Bob's advertisement through *her* broker.
        let resolved = alice.resolve_pipe(&group, bob.id()).unwrap();
        assert_eq!(resolved.owner, bob.id());

        // And relays a message to him across the backbone.
        alice.relay_msg_peer(&group, bob.id(), "hello across brokers").unwrap();
        let event = bob.wait_for_event(Duration::from_secs(2)).unwrap();
        assert!(matches!(
            event,
            ClientEvent::Text { from, text, .. }
                if from == alice.id() && text == "hello across brokers"
        ));
        // The delivery to bob and the destination broker's counter update
        // are not ordered with respect to each other; poll briefly.
        let deadline = crate::clock::now() + Duration::from_secs(2);
        while federation.broker(1).federation_stats().relays_delivered == 0
            && crate::clock::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(federation.broker(0).federation_stats().relays_forwarded, 1);
        assert_eq!(federation.broker(1).federation_stats().relays_delivered, 1);
        federation.shutdown();
    }

    #[test]
    fn single_broker_federation_behaves_like_a_plain_broker() {
        let (_net, _db, brokers) = make_brokers(1, 0xFED7);
        let federation = BrokerNetwork::spawn(brokers);
        assert_eq!(federation.len(), 1);
        assert!(federation.converged());
        assert_eq!(federation.broker(0).peer_brokers(), Vec::new());
        federation.shutdown();
    }

    #[test]
    fn sharded_state_and_gossip_scale_with_k_not_n() {
        // The acceptance criterion of the sharding work: with K=2 replicas
        // and N=4 brokers, per-broker index size and per-publish backbone
        // message count are O(K), not O(N).
        const N: usize = 4;
        const K: usize = 2;
        const PUBLISHES: usize = 40;

        // Fully replicated baseline.
        let (_n0, _d0, full) = make_brokers(N, 0xA0);
        let full_federation = InlineFederation::new(full);
        let mut rng = HmacDrbg::from_seed_u64(0xA1);
        publish_batch(&full_federation, 0, PUBLISHES, &mut rng);
        full_federation.pump();
        assert!(full_federation.converged());
        let full_syncs = full_federation.broker(0).federation_stats().syncs_sent;
        for i in 0..N {
            assert_eq!(
                full_federation.broker(i).advertisement_entry_count(),
                PUBLISHES,
                "full replication stores every entry everywhere"
            );
        }
        assert_eq!(full_syncs, (PUBLISHES * (N - 1)) as u64);

        // Sharded federation, same workload (same owner sequence).
        let (_n1, _d1, sharded) = make_sharded_brokers(N, K, 0xA0);
        let sharded_federation = InlineFederation::new(sharded);
        let mut rng = HmacDrbg::from_seed_u64(0xA1);
        publish_batch(&sharded_federation, 0, PUBLISHES, &mut rng);
        sharded_federation.pump();
        assert!(sharded_federation.converged(), "sharded convergence");

        let total: usize = (0..N)
            .map(|i| sharded_federation.broker(i).advertisement_entry_count())
            .sum();
        assert_eq!(total, PUBLISHES * K, "each entry lives on exactly K replicas");
        for i in 0..N {
            let held = sharded_federation.broker(i).advertisement_entry_count();
            assert!(
                held < PUBLISHES,
                "broker {i} must hold a shard, not the whole index ({held}/{PUBLISHES})"
            );
        }
        let sharded_syncs = sharded_federation.broker(0).federation_stats().syncs_sent;
        assert!(
            sharded_syncs <= (PUBLISHES * K) as u64,
            "per-publish gossip is O(K): {sharded_syncs} > {}",
            PUBLISHES * K
        );
        assert!(sharded_syncs < full_syncs, "sharding cuts backbone traffic");
    }

    /// Sends `message` from a registered client endpoint into `broker` and
    /// pumps until the client's inbox yields a `LookupResponse`.
    fn query_via_network(
        federation: &InlineFederation,
        rx: &Receiver<NetMessage>,
        client: PeerId,
        broker: usize,
        message: crate::message::Message,
    ) -> crate::message::Message {
        federation
            .broker(broker)
            .network()
            .send(client, federation.broker(broker).id(), message.to_bytes())
            .unwrap();
        federation.pump();
        while let Ok(delivered) = rx.try_recv() {
            if let Ok(parsed) = crate::message::Message::from_bytes(&delivered.payload) {
                if parsed.kind == crate::message::MessageKind::LookupResponse {
                    return parsed;
                }
            }
        }
        panic!("no LookupResponse arrived at the client");
    }

    #[test]
    fn sharded_lookup_routes_to_an_owning_replica() {
        use crate::message::{Message, MessageKind};
        let (net, _db, brokers) = make_sharded_brokers(4, 2, 0xB0);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xB1);
        let group = GroupId::new("math");

        // A client logged in at broker 0 (so lookups are authorised there).
        let client = PeerId::random(&mut rng);
        let rx = net.register(client);
        federation.broker(0).establish_session(client, "alice");
        federation.pump();

        // An owner whose shard does NOT include broker 0 and one whose does.
        let b0 = federation.broker(0).id();
        let remote_owner = loop {
            let owner = PeerId::random(&mut rng);
            if !federation.broker(0).shard_replicas(&group, &owner).contains(&b0) {
                break owner;
            }
        };
        let local_owner = loop {
            let owner = PeerId::random(&mut rng);
            if federation.broker(0).shard_replicas(&group, &owner).contains(&b0) {
                break owner;
            }
        };
        federation.broker(1).index_and_distribute(
            remote_owner,
            &group,
            "jxta:PipeAdvertisement",
            "<remote/>",
        );
        federation.broker(1).index_and_distribute(
            local_owner,
            &group,
            "jxta:PipeAdvertisement",
            "<local/>",
        );
        federation.pump();
        assert!(federation.converged());
        assert!(
            federation
                .broker(0)
                .lookup(&group, "jxta:PipeAdvertisement", Some(remote_owner))
                .is_empty(),
            "broker 0 must not hold the remote owner's entry"
        );

        // Remote key: broker 0 routes the query to an owning replica and
        // still answers the client correctly.
        let lookup = Message::new(MessageKind::LookupRequest, client, 71)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &remote_owner.to_urn());
        let response = query_via_network(&federation, &rx, client, 0, lookup);
        assert_eq!(response.request_id, 71);
        assert_eq!(response.element_str("count").unwrap(), "1");
        assert_eq!(response.element_str("adv-0").unwrap(), "<remote/>");
        assert_eq!(federation.broker(0).federation_stats().shard_misses, 1);

        // Local key: answered from broker 0's own shard.
        let lookup = Message::new(MessageKind::LookupRequest, client, 72)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement")
            .with_str("owner", &local_owner.to_urn());
        let response = query_via_network(&federation, &rx, client, 0, lookup);
        assert_eq!(response.element_str("adv-0").unwrap(), "<local/>");
        assert_eq!(federation.broker(0).federation_stats().shard_hits, 1);

        // Group-wide search: scatter-gather merges both shards.
        let lookup = Message::new(MessageKind::LookupRequest, client, 73)
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        let response = query_via_network(&federation, &rx, client, 0, lookup);
        assert_eq!(response.element_str("count").unwrap(), "2");
    }

    #[test]
    fn sharded_membership_query_routes_across_shards() {
        use crate::message::{Message, MessageKind};
        let (net, _db, brokers) = make_sharded_brokers(4, 2, 0xB4);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xB5);

        let client = PeerId::random(&mut rng);
        let rx = net.register(client);
        federation.broker(0).establish_session(client, "alice");
        // Bob logs in at broker 3; his membership is sharded.
        let bob = PeerId::random(&mut rng);
        federation.broker(3).establish_session(bob, "bob");
        federation.pump();
        assert!(federation.converged());

        let query = Message::new(MessageKind::LookupRequest, client, 80)
            .with_str("group", "math")
            .with_str("member", &bob.to_urn());
        let response = query_via_network(&federation, &rx, client, 0, query);
        assert_eq!(response.element_str("member").unwrap(), "true");

        // A stranger is not a member anywhere.
        let stranger = PeerId::random(&mut rng);
        let query = Message::new(MessageKind::LookupRequest, client, 81)
            .with_str("group", "math")
            .with_str("member", &stranger.to_urn());
        let response = query_via_network(&federation, &rx, client, 0, query);
        assert_eq!(response.element_str("member").unwrap(), "false");
    }

    #[test]
    fn shard_query_from_unknown_origin_is_rejected() {
        use crate::message::{Message, MessageKind};
        let (net, _db, brokers) = make_sharded_brokers(2, 2, 0xB8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xB9);
        let rogue = PeerId::random(&mut rng);
        let rogue_rx = net.register(rogue);

        let query = Message::new(MessageKind::ShardQuery, rogue, 0)
            .with_str("seq", "1")
            .with_str("query", "1")
            .with_str("group", "math")
            .with_str("doc-type", "jxta:PipeAdvertisement");
        net.send(rogue, federation.broker(0).id(), query.to_bytes())
            .unwrap();
        federation.pump();
        assert_eq!(
            federation.broker(0).federation_stats().rejected_unknown_origin,
            1
        );
        assert!(
            rogue_rx.try_recv().is_err(),
            "no shard data flows to an unadmitted origin"
        );
    }

    #[test]
    fn broker_join_and_leave_migrate_entries_on_the_ring() {
        let (net, db, brokers) = make_sharded_brokers(3, 2, 0xC0);
        let mut federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xC1);
        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        let owners = publish_batch(&federation, 0, 30, &mut rng);
        federation.pump();
        assert!(federation.converged());

        // A fourth broker joins the backbone: the ring re-routes a share of
        // the entries onto it, and nothing is lost.
        let newcomer = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::sharded("broker-4", 2),
            Arc::clone(&net),
            Arc::clone(&db),
        );
        federation.add_broker(Arc::clone(&newcomer));
        assert!(federation.converged(), "converged after broker join");
        assert!(
            newcomer.advertisement_entry_count() > 0,
            "the newcomer received its shard"
        );
        let migrated: u64 = (0..federation.len())
            .map(|i| federation.broker(i).federation_stats().entries_migrated)
            .sum();
        assert!(migrated > 0, "entries moved off their old replicas");
        let total: usize = (0..federation.len())
            .map(|i| federation.broker(i).advertisement_entry_count())
            .sum();
        assert_eq!(total, owners.len() * 2, "still exactly K copies of each entry");

        // A broker leaves: survivors re-replicate its shard among themselves.
        federation.remove_broker(1);
        assert!(federation.converged(), "converged after broker leave");
        let total: usize = (0..federation.len())
            .map(|i| federation.broker(i).advertisement_entry_count())
            .sum();
        assert_eq!(total, owners.len() * 2, "no entry lost on departure");
        // Alice's session (homed at broker 0) survived the churn.
        assert!(federation.broker(0).session(&alice).is_some());
    }

    #[test]
    fn migration_gossip_is_coalesced_into_digests() {
        // Re-sharding moves many entries, but ships them as one BrokerSync
        // digest per destination — the backbone message count is O(brokers),
        // not O(entries).  This is the satellite fix for the one-message-per-
        // event gossip of PR 2.
        let (net, db, brokers) = make_sharded_brokers(3, 2, 0xC4);
        let mut federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xC5);
        publish_batch(&federation, 0, 40, &mut rng);
        federation.pump();

        let syncs_before: u64 = (0..3)
            .map(|i| federation.broker(i).federation_stats().syncs_sent)
            .sum();
        let newcomer = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::sharded("broker-4", 2),
            Arc::clone(&net),
            Arc::clone(&db),
        );
        federation.add_broker(newcomer);
        assert!(federation.converged());

        let migrated: u64 = (0..federation.len())
            .map(|i| federation.broker(i).federation_stats().entries_migrated)
            .sum();
        let syncs_after: u64 = (0..federation.len())
            .map(|i| federation.broker(i).federation_stats().syncs_sent)
            .sum();
        let messages = syncs_after - syncs_before;
        assert!(migrated > 3, "enough churn to make batching observable");
        assert!(
            messages <= (federation.len() * federation.len()) as u64,
            "migration must coalesce: {messages} messages for {migrated} migrated entries"
        );
        assert!(
            messages < migrated,
            "fewer backbone messages than migrated entries ({messages} vs {migrated})"
        );
    }

    #[test]
    fn repair_is_idle_on_a_healthy_federation() {
        let (_net, _db, brokers) = make_brokers(3, 0xD0);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD1);
        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        federation.pump();
        assert!(federation.converged());

        assert_eq!(federation.repair(), 0, "nothing to repair when converged");
        for i in 0..3 {
            let stats = federation.broker(i).federation_stats();
            assert_eq!(stats.repair_mismatches, 0, "broker {i} saw no mismatch");
            assert!(stats.repair_rounds >= 1, "broker {i} initiated a round");
        }
        assert!(federation.converged(), "repair does not perturb healthy state");
        assert_eq!(federation.repair_until_converged(2), Some(0));
    }

    #[test]
    fn anti_entropy_repairs_a_dropped_publish_and_join() {
        use crate::net::RandomDrop;
        // All backbone traffic between broker 0 and broker 1 is lost while
        // alice joins and publishes at broker 0: broker 1 diverges (the PR 3
        // state of the world: detectable forever, repaired never).  One
        // repair round must heal index, membership and routing.
        let (net, _db, brokers) = make_brokers(3, 0xD2);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD3);
        let alice = PeerId::random(&mut rng);
        let group = GroupId::new("math");
        let edge = vec![federation.broker(0).id(), federation.broker(1).id()];
        net.set_adversary(RandomDrop::between(1, 100, edge));

        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &group, "jxta:PipeAdvertisement", "<a/>");
        federation.pump();
        net.clear_adversary();

        assert!(!federation.converged(), "the drop diverged the replicas");
        assert!(federation.broker(1).home_of(&alice).is_none());
        assert!(federation
            .broker(1)
            .lookup(&group, "jxta:PipeAdvertisement", Some(alice))
            .is_empty());
        // Broker 2 saw everything (its edges were clean).
        assert_eq!(federation.broker(2).home_of(&alice), Some(federation.broker(0).id()));

        let repaired = federation.repair();
        assert!(repaired > 0, "repair healed entries");
        assert!(federation.converged(), "one round reconverges the federation");
        assert_eq!(federation.broker(1).home_of(&alice), Some(federation.broker(0).id()));
        assert_eq!(
            federation.broker(1).lookup(&group, "jxta:PipeAdvertisement", Some(alice)),
            vec!["<a/>".to_string()]
        );
        assert!(federation.broker(1).groups().is_member(&group, &alice));
        let mismatches: u64 = (0..3)
            .map(|i| federation.broker(i).federation_stats().repair_mismatches)
            .sum();
        assert!(mismatches > 0, "the divergence was detected via digests");
    }

    #[test]
    fn anti_entropy_repairs_a_dropped_leave() {
        use crate::net::RandomDrop;
        // Broker 1 misses alice's departure: without repair it keeps her
        // routing and membership as ghosts forever.
        let (net, _db, brokers) = make_brokers(3, 0xD4);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD5);
        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        federation.pump();
        assert!(federation.converged());

        let edge = vec![federation.broker(0).id(), federation.broker(1).id()];
        net.set_adversary(RandomDrop::between(2, 100, edge));
        federation.broker(0).drop_session(&alice);
        federation.pump();
        net.clear_adversary();

        assert!(!federation.converged());
        assert!(federation.broker(1).groups().is_member(&GroupId::new("math"), &alice));

        assert!(federation.repair() > 0);
        assert!(federation.converged());
        assert!(federation.broker(1).home_of(&alice).is_none());
        assert!(
            !federation.broker(1).groups().is_member(&GroupId::new("math"), &alice),
            "the ghost membership was repaired away"
        );
    }

    #[test]
    fn sharded_divergence_heals_with_lww_intact() {
        use crate::net::RandomDrop;
        // Sharded federation: a replica misses a *re-publish* (newer version
        // of an existing key).  Repair must converge every replica to the
        // newer write — and must never regress it back to the old one.
        let (net, _db, brokers) = make_sharded_brokers(4, 2, 0xD6);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD7);
        let group = GroupId::new("math");
        let owner = PeerId::random(&mut rng);
        federation
            .broker(0)
            .index_and_distribute(owner, &group, "jxta:PipeAdvertisement", "<v1/>");
        federation.pump();
        assert!(federation.converged());

        // Drop all backbone gossip while the re-publish happens, so at least
        // one replica keeps serving <v1/>.
        let backbone: Vec<PeerId> = (0..4).map(|i| federation.broker(i).id()).collect();
        net.set_adversary(RandomDrop::between(3, 100, backbone));
        federation
            .broker(0)
            .index_and_distribute(owner, &group, "jxta:PipeAdvertisement", "<v2/>");
        federation.pump();
        net.clear_adversary();

        let rounds = federation.repair_until_converged(4).expect("repair reconverges");
        // Which xml won depends on whether broker 0 is a replica of the key;
        // either way every replica serves the same, *newest surviving* write.
        let survivors: Vec<String> = (0..4)
            .flat_map(|i| {
                federation
                    .broker(i)
                    .lookup(&group, "jxta:PipeAdvertisement", Some(owner))
            })
            .collect();
        assert!(!survivors.is_empty());
        assert!(
            survivors.iter().all(|xml| xml == &survivors[0]),
            "all replicas agree after {rounds} rounds: {survivors:?}"
        );
        if federation
            .broker(0)
            .shard_replicas(&group, &owner)
            .contains(&federation.broker(0).id())
        {
            assert_eq!(survivors[0], "<v2/>", "the origin stored v2, so v2 must win");
        }
    }

    #[test]
    fn keyed_shard_queries_rotate_across_the_replica_set() {
        use crate::message::{Message, MessageKind};
        let (net, _db, brokers) = make_sharded_brokers(5, 3, 0xD8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD9);
        let group = GroupId::new("math");

        let client = PeerId::random(&mut rng);
        let rx = net.register(client);
        federation.broker(0).establish_session(client, "alice");
        federation.pump();

        // An owner whose replica set excludes broker 0: all three replicas
        // are remote, so every keyed lookup must be routed.
        let b0 = federation.broker(0).id();
        let owner = loop {
            let candidate = PeerId::random(&mut rng);
            if !federation.broker(0).shard_replicas(&group, &candidate).contains(&b0) {
                break candidate;
            }
        };
        federation
            .broker(1)
            .index_and_distribute(owner, &group, "jxta:PipeAdvertisement", "<hot/>");
        federation.pump();
        assert!(federation.converged());

        let replicas = federation.broker(0).shard_replicas(&group, &owner);
        assert_eq!(replicas.len(), 3);
        let before: Vec<u64> = replicas.iter().map(|r| net.delivered_to(r)).collect();
        for i in 0..6 {
            let lookup = Message::new(MessageKind::LookupRequest, client, 90 + i)
                .with_str("group", "math")
                .with_str("doc-type", "jxta:PipeAdvertisement")
                .with_str("owner", &owner.to_urn());
            let response = query_via_network(&federation, &rx, client, 0, lookup);
            assert_eq!(response.element_str("adv-0").unwrap(), "<hot/>");
        }
        let deltas: Vec<u64> = replicas
            .iter()
            .zip(&before)
            .map(|(r, b)| net.delivered_to(r) - b)
            .collect();
        assert!(
            deltas.iter().all(|d| *d >= 1),
            "6 keyed lookups must spread over all 3 replicas, got {deltas:?}"
        );
    }

    #[test]
    fn adaptive_repair_delay_policy() {
        let mut rng = HmacDrbg::from_seed_u64(0xADA9);
        let ceiling = Duration::from_millis(800);
        let a = PeerId::random(&mut rng);
        let b = PeerId::random(&mut rng);

        // Deterministic, and never above the configured ceiling.
        assert_eq!(next_repair_delay(ceiling, 0, &a), next_repair_delay(ceiling, 0, &a));
        for mismatches in 0..6 {
            for broker in [&a, &b] {
                assert!(next_repair_delay(ceiling, mismatches, broker) <= ceiling);
            }
        }

        // Observed mismatches shrink the delay monotonically, saturating at
        // ceiling / MIN_REPAIR_INTERVAL_DIVISOR (times the jitter factor).
        let delays: Vec<Duration> = (0..5).map(|m| next_repair_delay(ceiling, m, &a)).collect();
        assert!(delays.windows(2).all(|w| w[1] <= w[0]), "{delays:?}");
        assert!(delays[3] < delays[0] / 4, "three mismatches shrink ≥ 8x: {delays:?}");
        assert_eq!(delays[3], delays[4], "acceleration saturates");
        assert!(
            delays[4] >= ceiling / (2 * MIN_REPAIR_INTERVAL_DIVISOR),
            "the floor keeps repair from busy-spinning"
        );

        // Distinct brokers get distinct jitter, so equal ceilings do not
        // synchronise their rounds.
        let healthy_a = next_repair_delay(ceiling, 0, &a);
        let healthy_b = next_repair_delay(ceiling, 0, &b);
        assert_ne!(healthy_a, healthy_b);
        for broker in [&a, &b] {
            let healthy = next_repair_delay(ceiling, 0, broker);
            assert!(healthy >= ceiling.mul_f64(0.75) && healthy <= ceiling);
        }
    }

    #[test]
    fn adaptive_repair_accelerates_on_divergence_and_heals() {
        use crate::net::RandomDrop;
        // A spawned federation with a large repair ceiling: after a lossy
        // episode the mismatch-driven acceleration must repair well before
        // several ceilings elapse.
        let (net, _db, brokers) = make_brokers(3, 0xADAA);
        let all = brokers.clone();
        let ceiling = Duration::from_millis(400);
        let federation = BrokerNetwork::spawn_with_repair(brokers, Some(ceiling));
        let mut rng = HmacDrbg::from_seed_u64(0xADAB);
        let alice = PeerId::random(&mut rng);

        let edge = vec![federation.id(0), federation.id(1)];
        net.set_adversary(RandomDrop::between(5, 100, edge));
        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        // Let the (partially dropped) gossip drain before lifting the drops.
        let deadline = crate::clock::now() + Duration::from_secs(2);
        while crate::clock::now() < deadline {
            let drained = all.iter().all(|broker| {
                broker.processed_count() == net.delivered_to(&broker.id())
            });
            if drained {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        net.clear_adversary();

        assert!(
            federation.await_convergence(Duration::from_secs(10)),
            "adaptive repair reconverges the federation"
        );
        let repaired: u64 = (0..3)
            .map(|i| federation.broker(i).federation_stats().entries_repaired)
            .sum();
        assert!(repaired > 0, "the heal went through anti-entropy");
        federation.shutdown();
    }

    #[test]
    fn keyed_shard_queries_prefer_the_cheapest_link() {
        use crate::message::{Message, MessageKind};
        use crate::net::LinkModel;
        let (net, _db, brokers) = make_sharded_brokers(5, 3, 0xD8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xD9);
        let group = GroupId::new("math");

        let client = PeerId::random(&mut rng);
        let rx = net.register(client);
        federation.broker(0).establish_session(client, "alice");
        federation.pump();

        // Same fixture as the rotation test: an owner whose three replicas
        // are all remote from broker 0 — but now one replica sits behind a
        // WAN-priced link, so the rotation must skip it entirely.
        let b0 = federation.broker(0).id();
        let owner = loop {
            let candidate = PeerId::random(&mut rng);
            if !federation.broker(0).shard_replicas(&group, &candidate).contains(&b0) {
                break candidate;
            }
        };
        federation
            .broker(1)
            .index_and_distribute(owner, &group, "jxta:PipeAdvertisement", "<hot/>");
        federation.pump();
        assert!(federation.converged());

        let replicas = federation.broker(0).shard_replicas(&group, &owner);
        assert_eq!(replicas.len(), 3);
        let wan_replica = replicas[0];
        net.set_link_between(b0, wan_replica, LinkModel::wan());

        let before: Vec<u64> = replicas.iter().map(|r| net.delivered_to(r)).collect();
        for i in 0..6 {
            let lookup = Message::new(MessageKind::LookupRequest, client, 90 + i)
                .with_str("group", "math")
                .with_str("doc-type", "jxta:PipeAdvertisement")
                .with_str("owner", &owner.to_urn());
            let response = query_via_network(&federation, &rx, client, 0, lookup);
            assert_eq!(response.element_str("adv-0").unwrap(), "<hot/>");
        }
        let deltas: Vec<u64> = replicas
            .iter()
            .zip(&before)
            .map(|(r, b)| net.delivered_to(r) - b)
            .collect();
        assert_eq!(
            deltas[0], 0,
            "the WAN-priced replica is avoided entirely: {deltas:?}"
        );
        assert!(
            deltas[1] >= 1 && deltas[2] >= 1,
            "the equally cheap replicas share the load: {deltas:?}"
        );
    }

    #[test]
    fn spawned_federation_admits_and_removes_brokers() {
        let (net, db, brokers) = make_sharded_brokers(3, 2, 0xDA);
        let mut rng = HmacDrbg::from_seed_u64(0xDB);
        let alice = PeerId::random(&mut rng);
        let mut federation = BrokerNetwork::spawn(brokers);
        federation.broker(0).establish_session(alice, "alice");
        let owners: Vec<PeerId> = (0..24)
            .map(|i| {
                let owner = PeerId::random(&mut rng);
                federation.broker(0).index_and_distribute(
                    owner,
                    &GroupId::new("math"),
                    "jxta:PipeAdvertisement",
                    &format!("<adv n=\"{i}\"/>"),
                );
                owner
            })
            .collect();
        assert!(federation.await_convergence(Duration::from_secs(2)));

        // A fourth broker joins the *running* backbone and receives a shard.
        let newcomer = Broker::new(
            PeerId::random(&mut rng),
            BrokerConfig::sharded("broker-4", 2),
            Arc::clone(&net),
            Arc::clone(&db),
        );
        federation.add_broker(Arc::clone(&newcomer));
        assert_eq!(federation.len(), 4);
        assert!(federation.await_convergence(Duration::from_secs(2)));
        assert!(newcomer.advertisement_entry_count() > 0, "the newcomer owns a shard");
        let total: usize = (0..4)
            .map(|i| federation.broker(i).advertisement_entry_count())
            .sum();
        assert_eq!(total, owners.len() * 2, "exactly K copies of each entry");

        // A broker leaves; the survivors re-replicate its shard.
        federation.remove_broker(1);
        assert_eq!(federation.len(), 3);
        assert!(federation.await_convergence(Duration::from_secs(2)));
        let total: usize = (0..3)
            .map(|i| federation.broker(i).advertisement_entry_count())
            .sum();
        assert_eq!(total, owners.len() * 2, "no entry lost on departure");
        assert!(federation.broker(0).session(&alice).is_some());
        federation.shutdown();
    }

    #[test]
    fn spawned_federation_repairs_on_an_interval() {
        use crate::net::RandomDrop;
        // The periodic repair loop heals a divergence with no manual pump:
        // the drop adversary severs one backbone edge during a publish, and
        // once it lifts, the interval-driven anti-entropy reconverges the
        // federation by itself.
        let (net, _db, brokers) = make_brokers(2, 0xDC);
        let mut rng = HmacDrbg::from_seed_u64(0xDD);
        let alice = PeerId::random(&mut rng);
        let federation =
            BrokerNetwork::spawn_with_repair(brokers, Some(Duration::from_millis(10)));
        let edge = vec![federation.broker(0).id(), federation.broker(1).id()];
        net.set_adversary(RandomDrop::between(4, 100, edge));
        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        std::thread::sleep(Duration::from_millis(30));
        net.clear_adversary();

        assert!(
            federation.await_convergence(Duration::from_secs(2)),
            "interval repair must reconverge the federation unattended"
        );
        assert_eq!(
            federation.broker(1).home_of(&alice),
            Some(federation.broker(0).id())
        );
        let repaired: u64 = (0..2)
            .map(|i| federation.broker(i).federation_stats().entries_repaired)
            .sum();
        assert!(repaired > 0, "the healing went through the repair path");
        federation.shutdown();
    }

    #[test]
    fn try_pump_budget_spent_on_a_draining_workload_is_not_a_stall() {
        // A workload of exactly `budget` messages that leaves the queues
        // empty is a success, not a livelock.
        let (_net, _db, brokers) = make_brokers(2, 0xCB);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xCC);
        let alice = PeerId::random(&mut rng);
        federation.broker(0).establish_session(alice, "alice");
        // The join gossips exactly one digest to broker 1.
        assert_eq!(federation.try_pump(1), Ok(1));
        assert!(federation.converged());
    }

    #[test]
    fn crashed_broker_removal_clears_its_clients_membership() {
        // A broker that crashes never gossips its clients' leaves; removing
        // it from the backbone must still clear their replicated group
        // membership on the survivors, or they stay ghost members forever.
        let (_net, _db, brokers) = make_sharded_brokers(3, 2, 0xCD);
        let mut federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xCE);
        let alice = PeerId::random(&mut rng);
        federation.broker(2).establish_session(alice, "alice");
        federation.pump();

        // Simulate a crash: survivors drop the broker without it having
        // gossiped anything (bypassing remove_broker's graceful
        // drop_session path).
        let dead = federation.broker(2).id();
        federation.broker(2).network().unregister(&dead);
        for i in 0..2 {
            federation.broker(i).remove_peer_broker(&dead);
        }
        for i in 0..2 {
            assert!(
                federation.broker(i).home_of(&alice).is_none(),
                "broker {i} must drop the crashed broker's routes"
            );
            assert!(
                !federation.broker(i).groups().is_member(&GroupId::new("math"), &alice),
                "broker {i} must not keep ghost membership"
            );
        }
        // Re-sharding afterwards does not resurrect the ghost.
        for i in 0..2 {
            federation.broker(i).reshard();
        }
        let remaining: Vec<Arc<Broker>> =
            (0..2).map(|i| Arc::clone(federation.broker(i))).collect();
        federation.brokers.truncate(2);
        federation.inboxes.truncate(2);
        federation.pump();
        for broker in &remaining {
            assert!(!broker.groups().is_member(&GroupId::new("math"), &alice));
        }
    }

    #[test]
    fn try_pump_detects_a_livelocked_backbone() {
        use crate::net::{Adversary, NetMessage as RawNetMessage};
        // An adversary that answers every message broker 0 *sends* (its
        // replies) by injecting a fresh request back into broker 0: each
        // processed message begets another, so without a budget pump() would
        // spin forever.
        struct Feedback {
            target: PeerId,
            source: PeerId,
        }
        impl Adversary for Feedback {
            fn inject(&self, message: &RawNetMessage) -> Vec<RawNetMessage> {
                if message.from != self.target {
                    return Vec::new();
                }
                let ping = crate::message::Message::new(
                    crate::message::MessageKind::ConnectRequest,
                    self.source,
                    0,
                );
                vec![RawNetMessage {
                    from: self.source,
                    to: self.target,
                    payload: ping.to_bytes(),
                    wire_time: Duration::ZERO,
                }]
            }
        }

        let (net, _db, brokers) = make_brokers(2, 0xC8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xC9);
        let source = PeerId::random(&mut rng);
        let _source_rx = net.register(source);
        net.set_adversary(Arc::new(Feedback {
            target: federation.broker(0).id(),
            source,
        }));

        // Seed the feedback loop with one message.
        let ping =
            crate::message::Message::new(crate::message::MessageKind::ConnectRequest, source, 0);
        net.send(source, federation.broker(0).id(), ping.to_bytes())
            .unwrap();

        let result = federation.try_pump(500);
        assert_eq!(result, Err(PumpStalled { processed: 500 }));
        net.clear_adversary();
        // With the adversary gone the backbone drains normally again.
        assert!(federation.try_pump(DEFAULT_PUMP_BUDGET).is_ok());
    }

    /// The tentpole property of the hash-tree repair: a 1-entry divergence
    /// in a 100 000-entry section heals within `depth + 1` exchange legs and
    /// ships well under 1% of the bytes the flat full-section snapshot
    /// protocol needs for the same divergence.
    #[test]
    fn single_divergence_in_large_section_heals_in_bounded_legs_and_bytes() {
        use crate::shard::REPAIR_TREE_DEPTH;

        let entries = 100_000usize;
        // Returns (repair bytes, exchange legs) summed over both brokers.
        let run = |tree: bool| -> (u64, u64) {
            let mut rng = HmacDrbg::from_seed_u64(0xD17);
            let network = SimNetwork::new(LinkModel::ideal());
            let database = Arc::new(UserDatabase::new());
            let brokers: Vec<Arc<Broker>> = (0..2)
                .map(|i| {
                    let config = crate::broker::BrokerConfig {
                        name: format!("broker-{i}"),
                        ..Default::default()
                    };
                    let config = if tree { config } else { config.with_flat_repair() };
                    Broker::new(
                        PeerId::random(&mut rng),
                        config,
                        Arc::clone(&network),
                        Arc::clone(&database),
                    )
                })
                .collect();
            let federation = InlineFederation::new(brokers);
            let group = GroupId::new("math");
            let origin = federation.broker(0).id();
            let mut first_owner = None;
            for i in 0..entries {
                let owner = PeerId::random(&mut rng);
                first_owner.get_or_insert(owner);
                for b in 0..2 {
                    federation.broker(b).load_advertisement(
                        owner,
                        &group,
                        "jxta:PipeAdvertisement",
                        &format!("<adv n=\"{i}\"/>"),
                        (1, origin),
                    );
                }
            }
            // One write broker 1 missed: broker 0 holds a newer version of a
            // single entry.
            federation.broker(0).load_advertisement(
                first_owner.unwrap(),
                &group,
                "jxta:PipeAdvertisement",
                "<adv n=\"0\" rev=\"2\"/>",
                (2, origin),
            );
            assert!(!federation.converged());
            assert!(
                federation.repair_until_converged(2).is_some(),
                "tree={tree}: no reconvergence"
            );
            let mut bytes = 0u64;
            let mut legs = 0u64;
            for b in 0..2 {
                let stats = federation.broker(b).federation_stats();
                bytes += stats.repair_bytes;
                legs += stats.descent_rounds + stats.repair_pages;
            }
            (bytes, legs)
        };

        let (tree_bytes, tree_legs) = run(true);
        let (flat_bytes, _) = run(false);
        assert!(tree_bytes > 0 && flat_bytes > 0);
        // With the triggering digest, the exchange took `tree_legs + 1`
        // legs; the acceptance bound is depth + 1.
        assert!(
            tree_legs <= u64::from(REPAIR_TREE_DEPTH),
            "descent took {tree_legs} range/page legs — more than depth"
        );
        assert!(
            tree_bytes * 100 < flat_bytes,
            "tree repair shipped {tree_bytes} bytes, \
             not under 1% of the flat protocol's {flat_bytes}"
        );
    }
}

#[cfg(test)]
mod proptests {
    //! Replication-convergence property tests: random sequences of joins,
    //! leaves and publishes, applied at random brokers, must end with every
    //! broker holding the identical advertisement index, group membership and
    //! routing table once the gossip queues drain.  Like the other proptests
    //! in this workspace, the cases are deterministic (name-seeded runner,
    //! fixed DRBG seeds), so failures reproduce exactly.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;
    use std::collections::HashMap;

    const USERS: usize = 5;
    const GROUP_NAMES: [&str; 3] = ["math", "chem", "bio"];

    fn build_federation(broker_count: usize) -> (InlineFederation, Vec<PeerId>) {
        let mut rng = HmacDrbg::from_seed_u64(0xC04E);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        for u in 0..USERS {
            // Each user belongs to a deterministic subset of the groups.
            let groups: Vec<GroupId> = GROUP_NAMES
                .iter()
                .enumerate()
                .filter(|(g, _)| (u + g) % 2 == 0)
                .map(|(_, name)| GroupId::new(*name))
                .collect();
            database.register_user(&mut rng, &format!("user-{u}"), "pw", &groups);
        }
        let brokers: Vec<Arc<Broker>> = (0..broker_count)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("broker-{}", i + 1)),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let peers = (0..USERS).map(|_| PeerId::random(&mut rng)).collect();
        (InlineFederation::new(brokers), peers)
    }

    /// One scripted operation: `(selector, user index, broker index)`.
    /// `selector % 3` picks join / leave / publish.
    type Op = (u8, usize, usize);

    fn run_ops(federation: &InlineFederation, peers: &[PeerId], ops: &[Op]) {
        // Tracks where each user is currently homed so the script never
        // issues the ambiguous "joined at two brokers at once" sequence a
        // real client cannot produce either.
        let mut homes: HashMap<usize, usize> = HashMap::new();
        for &(selector, user, broker) in ops {
            let user = user % USERS;
            let broker = broker % federation.len();
            match selector % 3 {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = homes.entry(user) {
                        federation
                            .broker(broker)
                            .establish_session(peers[user], &format!("user-{user}"));
                        e.insert(broker);
                    }
                }
                1 => {
                    if let Some(home) = homes.remove(&user) {
                        federation.broker(home).drop_session(&peers[user]);
                    }
                }
                _ => {
                    let group = GROUP_NAMES[(user + broker) % GROUP_NAMES.len()];
                    federation.broker(broker).index_and_distribute(
                        peers[user],
                        &GroupId::new(group),
                        "jxta:PipeAdvertisement",
                        &format!("<adv owner=\"{user}\" at=\"{broker}\"/>"),
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn replicated_state_converges_on_every_broker(
            broker_count in 2usize..5,
            ops in proptest::collection::vec((any::<u8>(), 0usize..USERS, 0usize..4), 0..40),
        ) {
            let (federation, peers) = build_federation(broker_count);
            run_ops(&federation, &peers, &ops);
            federation.pump();
            prop_assert!(federation.converged(), "brokers diverged after {} ops", ops.len());
            prop_assert_eq!(federation.pump(), 0, "pump must be idempotent once quiescent");
        }

        #[test]
        fn advertisement_indexes_are_identical_regardless_of_publish_origin(
            publishes in proptest::collection::vec((0usize..USERS, 0usize..3), 1..30),
        ) {
            let (federation, peers) = build_federation(3);
            for &(user, broker) in &publishes {
                federation.broker(broker).index_and_distribute(
                    peers[user],
                    &GroupId::new(GROUP_NAMES[user % GROUP_NAMES.len()]),
                    "jxta:FileAdvertisement",
                    &format!("<file owner=\"{user}\" from=\"{broker}\"/>"),
                );
            }
            federation.pump();
            let reference = federation.broker(0).advertisement_snapshot();
            prop_assert!(!reference.is_empty());
            for i in 1..federation.len() {
                prop_assert_eq!(&federation.broker(i).advertisement_snapshot(), &reference);
            }
        }

        #[test]
        fn membership_and_routing_converge_under_joins_and_leaves(
            ops in proptest::collection::vec((0u8..2, 0usize..USERS, 0usize..3), 0..30),
        ) {
            let (federation, peers) = build_federation(3);
            run_ops(&federation, &peers, &ops);
            federation.pump();
            let groups = federation.broker(0).groups().snapshot();
            let routing = federation.broker(0).routing_snapshot();
            for i in 1..federation.len() {
                prop_assert_eq!(&federation.broker(i).groups().snapshot(), &groups);
                prop_assert_eq!(&federation.broker(i).routing_snapshot(), &routing);
            }
        }
    }
}


#[cfg(test)]
mod repair_proptests {
    //! Anti-entropy under adversarial loss: random backbone drops + random
    //! join/leave/publish sequences + bounded repair rounds must always
    //! reconverge, and the surviving advertisement versions must be exactly
    //! the per-key maxima that existed before repair started — repair heals
    //! missed writes but never regresses a newer one and never invents data.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, RandomDrop, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap};

    const USERS: usize = 4;
    const GROUP_NAMES: [&str; 2] = ["math", "chem"];
    const BROKERS: usize = 4;

    fn build(
        replication: Option<usize>,
        tree: bool,
    ) -> (Arc<SimNetwork>, InlineFederation, Vec<PeerId>) {
        let mut rng = HmacDrbg::from_seed_u64(0xAE0);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        let groups: Vec<GroupId> = GROUP_NAMES.iter().map(|g| GroupId::new(*g)).collect();
        for user in 0..USERS {
            database.register_user(&mut rng, &format!("user-{user}"), "pw", &groups);
        }
        let brokers: Vec<Arc<Broker>> = (0..BROKERS)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig {
                        name: format!("broker-{}", i + 1),
                        replication_factor: replication,
                        repair_tree: tree,
                        ..Default::default()
                    },
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let peers = (0..USERS).map(|_| PeerId::random(&mut rng)).collect();
        (network, InlineFederation::new(brokers), peers)
    }

    /// Per-key `(max version, holder count)` over every broker's index.
    fn version_maxima(
        federation: &InlineFederation,
    ) -> BTreeMap<(GroupId, PeerId, String), (u64, PeerId)> {
        let mut maxima = BTreeMap::new();
        for i in 0..federation.len() {
            for (group, owner, doc_type, version) in federation.broker(i).advertisement_versions() {
                let slot = maxima.entry((group, owner, doc_type)).or_insert(version);
                if version > *slot {
                    *slot = version;
                }
            }
        }
        maxima
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn random_drops_plus_repair_always_reconverge(
            sharded in any::<bool>(),
            // Both repair protocols — the flat full-section snapshots and
            // the hash-tree descent — must satisfy the same oracle: the LWW
            // merge underneath is shared, only the delta location differs.
            tree in any::<bool>(),
            drop_percent in 0u32..80,
            drop_seed in any::<u64>(),
            ops in proptest::collection::vec(
                (any::<u8>(), 0usize..USERS, 0usize..BROKERS, 0usize..GROUP_NAMES.len()),
                1..30,
            ),
        ) {
            let replication = if sharded { Some(2) } else { None };
            let (network, federation, peers) = build(replication, tree);
            let backbone: Vec<PeerId> =
                (0..BROKERS).map(|i| federation.broker(i).id()).collect();
            network.set_adversary(RandomDrop::between(drop_seed, drop_percent, backbone));

            let mut homes: HashMap<usize, usize> = HashMap::new();
            for (n, &(selector, user, broker, group_sel)) in ops.iter().enumerate() {
                match selector % 3 {
                    0 => {
                        if let std::collections::hash_map::Entry::Vacant(slot) = homes.entry(user)
                        {
                            federation
                                .broker(broker)
                                .establish_session(peers[user], &format!("user-{user}"));
                            slot.insert(broker);
                        }
                    }
                    1 => {
                        if let Some(home) = homes.remove(&user) {
                            federation.broker(home).drop_session(&peers[user]);
                        }
                    }
                    _ => {
                        let group = GroupId::new(GROUP_NAMES[group_sel % GROUP_NAMES.len()]);
                        federation.broker(broker).index_and_distribute(
                            peers[user],
                            &group,
                            "jxta:PipeAdvertisement",
                            &format!("<adv user=\"{user}\" n=\"{n}\"/>"),
                        );
                    }
                }
                federation.pump();
            }
            network.clear_adversary();
            federation.pump();

            let before = version_maxima(&federation);

            // Bounded-time self-healing: a handful of full-mesh rounds must
            // reconverge whatever the drops did.
            let rounds = federation.repair_until_converged(6);
            prop_assert!(
                rounds.is_some(),
                "no reconvergence after 6 repair rounds: sharded={sharded} tree={tree} drop_percent={drop_percent} drop_seed={drop_seed} ops={ops:?}"
            );

            // Zero LWW regression and no invented data: the surviving
            // version of every key is exactly the pre-repair maximum, and no
            // key appeared from nowhere.
            let after = version_maxima(&federation);
            prop_assert_eq!(&after, &before, "repair changed the per-key version maxima");
            for i in 0..federation.len() {
                for (group, owner, doc_type, version) in
                    federation.broker(i).advertisement_versions()
                {
                    prop_assert_eq!(
                        version,
                        before[&(group, owner, doc_type)],
                        "broker {} serves a non-maximal version after repair",
                        i
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod shard_proptests {
    //! The sharded federation must be *observationally equivalent* to a
    //! fully replicated one: over random join/leave/publish/re-shard
    //! sequences, every advertisement search, pipe resolution and membership
    //! query routed through an arbitrary broker answers exactly what a
    //! fully-replicated oracle (here: a plain map applying the same ops)
    //! would answer.  Queries travel the real client→broker→shard-replica
    //! message path, so the `ShardQuery`/`ShardResponse` routing itself is
    //! under test, not just the storage partitioning.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::message::{Message, MessageKind};
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;
    use std::collections::HashMap;

    const USERS: usize = 5;
    const GROUP_NAMES: [&str; 3] = ["math", "chem", "bio"];
    const BASE_BROKERS: usize = 4;
    const K: usize = 2;
    const DOC_TYPE: &str = "jxta:PipeAdvertisement";

    /// Deterministic group subset of each user (same shape as the PR 2
    /// replication proptests).
    fn user_groups(user: usize) -> Vec<GroupId> {
        GROUP_NAMES
            .iter()
            .enumerate()
            .filter(|(g, _)| (user + g).is_multiple_of(2))
            .map(|(_, name)| GroupId::new(*name))
            .collect()
    }

    struct World {
        federation: InlineFederation,
        peers: Vec<PeerId>,
        querier: PeerId,
        querier_rx: Receiver<NetMessage>,
        /// Fresh brokers waiting to be admitted by a re-shard op (a removed
        /// broker is never re-admitted: its state is gone, like a real
        /// machine that was decommissioned).
        standby: Vec<Arc<Broker>>,
        standby_active: bool,
    }

    fn build_world() -> World {
        let mut rng = HmacDrbg::from_seed_u64(0x5AD0);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        for user in 0..USERS {
            database.register_user(&mut rng, &format!("user-{user}"), "pw", &user_groups(user));
        }
        let all_groups: Vec<GroupId> = GROUP_NAMES.iter().map(|g| GroupId::new(*g)).collect();
        database.register_user(&mut rng, "querier", "pw", &all_groups);

        let brokers: Vec<Arc<Broker>> = (0..BASE_BROKERS)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::sharded(format!("broker-{}", i + 1), K),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let standby = (0..8)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::sharded(format!("standby-{i}"), K),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let federation = InlineFederation::new(brokers);

        let peers = (0..USERS).map(|_| PeerId::random(&mut rng)).collect();
        let querier = PeerId::random(&mut rng);
        let querier_rx = network.register(querier);
        federation.broker(0).establish_session(querier, "querier");
        federation.pump();

        World {
            federation,
            peers,
            querier,
            querier_rx,
            standby,
            standby_active: false,
        }
    }

    /// Routes `message` through broker 0 and returns the matching response.
    fn query(world: &World, message: Message) -> Message {
        let request_id = message.request_id;
        world
            .federation
            .broker(0)
            .network()
            .send(world.querier, world.federation.broker(0).id(), message.to_bytes())
            .unwrap();
        world.federation.pump();
        while let Ok(delivered) = world.querier_rx.try_recv() {
            if let Ok(parsed) = Message::from_bytes(&delivered.payload) {
                if parsed.kind == MessageKind::LookupResponse && parsed.request_id == request_id {
                    return parsed;
                }
            }
        }
        panic!("no LookupResponse for request {request_id}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn sharded_queries_match_a_fully_replicated_oracle(
            ops in proptest::collection::vec(
                (any::<u8>(), 0usize..USERS, 0usize..8, 0usize..GROUP_NAMES.len()),
                0..30,
            ),
        ) {
            let mut world = build_world();
            // The oracle: what a fully replicated index would hold.
            let mut oracle_ads: HashMap<(usize, usize), String> = HashMap::new();
            let mut oracle_joined: HashMap<usize, PeerId> = HashMap::new();

            for (n, &(selector, user, broker_sel, group_sel)) in ops.iter().enumerate() {
                match selector % 4 {
                    0 => {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            oracle_joined.entry(user)
                        {
                            let b = broker_sel % world.federation.len();
                            world
                                .federation
                                .broker(b)
                                .establish_session(world.peers[user], &format!("user-{user}"));
                            slot.insert(world.federation.broker(b).id());
                            world.federation.pump();
                        }
                    }
                    1 => {
                        if let Some(home) = oracle_joined.remove(&user) {
                            let idx = (0..world.federation.len())
                                .find(|i| world.federation.broker(*i).id() == home)
                                .expect("home broker still deployed");
                            world.federation.broker(idx).drop_session(&world.peers[user]);
                            world.federation.pump();
                        }
                    }
                    2 => {
                        let g = group_sel % GROUP_NAMES.len();
                        let b = broker_sel % world.federation.len();
                        let xml = format!("<adv user=\"{user}\" g=\"{g}\" n=\"{n}\"/>");
                        world.federation.broker(b).index_and_distribute(
                            world.peers[user],
                            &GroupId::new(GROUP_NAMES[g]),
                            DOC_TYPE,
                            &xml,
                        );
                        oracle_ads.insert((g, user), xml);
                        world.federation.pump();
                    }
                    _ => {
                        // Re-shard: backbone membership change.
                        if world.standby_active {
                            let removed =
                                world.federation.remove_broker(world.federation.len() - 1);
                            oracle_joined.retain(|_, home| *home != removed.id());
                            world.standby_active = false;
                        } else if let Some(fresh) = world.standby.pop() {
                            world.federation.add_broker(fresh);
                            world.standby_active = true;
                        }
                    }
                }
            }
            world.federation.pump();
            prop_assert!(world.federation.converged(), "sharded convergence after ops");

            // Every query the oracle can answer, asked through broker 0 over
            // the real routing path.
            let mut request_id = 10_000u64;
            for (g, group_name) in GROUP_NAMES.iter().enumerate() {
                let group = GroupId::new(*group_name);
                for user in 0..USERS {
                    // search / resolve_pipe (owner-keyed lookup).
                    request_id += 1;
                    let lookup = Message::new(MessageKind::LookupRequest, world.querier, request_id)
                        .with_str("group", group.as_str())
                        .with_str("doc-type", DOC_TYPE)
                        .with_str("owner", &world.peers[user].to_urn());
                    let response = query(&world, lookup);
                    let count = response.element_str("count");
                    let first_adv = response.element_str("adv-0");
                    match oracle_ads.get(&(g, user)) {
                        Some(xml) => {
                            prop_assert_eq!(count.as_deref(), Some("1"));
                            prop_assert_eq!(first_adv.as_deref(), Some(xml.as_str()));
                        }
                        None => {
                            prop_assert_eq!(count.as_deref(), Some("0"));
                        }
                    }
                    // membership query.
                    request_id += 1;
                    let probe = Message::new(MessageKind::LookupRequest, world.querier, request_id)
                        .with_str("group", group.as_str())
                        .with_str("member", &world.peers[user].to_urn());
                    let response = query(&world, probe);
                    let expected = oracle_joined.contains_key(&user)
                        && user_groups(user).contains(&group);
                    let member = response.element_str("member");
                    prop_assert_eq!(
                        member.as_deref(),
                        Some(if expected { "true" } else { "false" }),
                        "membership of user {} in {}", user, group
                    );
                }
                // Group-wide search (scatter-gather) matches the oracle too.
                request_id += 1;
                let sweep = Message::new(MessageKind::LookupRequest, world.querier, request_id)
                    .with_str("group", group.as_str())
                    .with_str("doc-type", DOC_TYPE);
                let response = query(&world, sweep);
                let expected: usize = (0..USERS).filter(|u| oracle_ads.contains_key(&(g, *u))).count();
                let count = response.element_str("count");
                let expected = expected.to_string();
                prop_assert_eq!(count.as_deref(), Some(expected.as_str()));
            }
        }
    }
}

#[cfg(test)]
mod epidemic_proptests {
    //! Membership-churn safety of the two-layer fabric, generalized over
    //! mesh × epidemic exactly like the lane proptests generalize over
    //! pipelines: random join/leave/crash sequences of *brokers* must leave
    //! every survivor with a non-empty active view, an overlay whose
    //! active-view edges reach every live broker (the reachability oracle —
    //! the pinned ring successors guarantee it structurally), and fully
    //! convergent replicated state under the same LWW oracle as always.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Small capacities so even a handful of brokers trips the epidemic
    /// engagement threshold (`peers > active`).
    const ACTIVE: usize = 2;
    const PASSIVE: usize = 6;
    /// Brokers at start; churn adds and removes around this size.
    const START: usize = 7;
    /// Ceiling on live brokers (keeps the proptest cheap).
    const MAX: usize = 12;

    struct Churn {
        network: Arc<SimNetwork>,
        database: Arc<UserDatabase>,
        federation: InlineFederation,
        rng: HmacDrbg,
        next_name: usize,
        full_mesh: bool,
    }

    impl Churn {
        fn new(seed: u64, full_mesh: bool) -> Self {
            let mut rng = HmacDrbg::from_seed_u64(seed);
            let network = SimNetwork::new(LinkModel::ideal());
            let database = Arc::new(UserDatabase::new());
            database.register_user(&mut rng, "alice", "pw", &[GroupId::new("math")]);
            let mut churn = Churn {
                network,
                database,
                federation: InlineFederation::new(Vec::new()),
                rng,
                next_name: 0,
                full_mesh,
            };
            let brokers: Vec<Arc<Broker>> = (0..START).map(|_| churn.make_broker()).collect();
            churn.federation = InlineFederation::new(brokers);
            churn
        }

        fn make_broker(&mut self) -> Arc<Broker> {
            self.next_name += 1;
            let mut config = BrokerConfig::named(format!("broker-{}", self.next_name))
                .with_view_capacities(ACTIVE, PASSIVE);
            if self.full_mesh {
                config = config.with_full_mesh();
            }
            Broker::new(
                PeerId::random(&mut self.rng),
                config,
                Arc::clone(&self.network),
                Arc::clone(&self.database),
            )
        }

        /// Every live broker's active view is non-empty, contains only live
        /// brokers, and the union of directed view edges reaches every live
        /// broker from every other (BFS over the active-view graph).
        fn overlay_connected(&self) -> Result<(), String> {
            let n = self.federation.len();
            if n < 2 {
                return Ok(());
            }
            let ids: Vec<PeerId> = (0..n).map(|i| self.federation.broker(i).id()).collect();
            let live: BTreeSet<PeerId> = ids.iter().copied().collect();
            let mut edges: Vec<(PeerId, PeerId)> = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                let view = self.federation.broker(i).active_view();
                if view.is_empty() {
                    return Err(format!("broker {i} has an empty active view"));
                }
                for peer in view {
                    if !live.contains(&peer) {
                        return Err(format!("broker {i} keeps dead peer in its view"));
                    }
                    edges.push((*id, peer));
                }
            }
            // Active-view edges are symmetric links in spirit (either end
            // may push); BFS over the undirected graph.
            let mut seen = BTreeSet::from([ids[0]]);
            let mut frontier = vec![ids[0]];
            while let Some(at) = frontier.pop() {
                for (a, b) in &edges {
                    let next = match (at == *a, at == *b) {
                        (true, _) => *b,
                        (_, true) => *a,
                        _ => continue,
                    };
                    if seen.insert(next) {
                        frontier.push(next);
                    }
                }
            }
            if seen.len() != n {
                return Err(format!("overlay split: reached {}/{n} brokers", seen.len()));
            }
            Ok(())
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn broker_churn_keeps_the_overlay_connected_and_convergent(
            seed in 0u64..1_000_000,
            full_mesh in any::<bool>(),
            ops in proptest::collection::vec((0u8..3, any::<u16>()), 1..10),
        ) {
            let mut churn = Churn::new(seed, full_mesh);
            // A replicated workload rides along so convergence is not vacuous.
            let alice = PeerId::random(&mut churn.rng);
            churn.federation.broker(0).establish_session(alice, "alice");
            churn.federation.broker(0).index_and_distribute(
                alice,
                &GroupId::new("math"),
                "jxta:PipeAdvertisement",
                "<churn/>",
            );
            churn.federation.pump();

            for &(selector, pick) in &ops {
                match selector {
                    0 if churn.federation.len() < MAX => {
                        let broker = churn.make_broker();
                        churn.federation.add_broker(broker);
                    }
                    1 if churn.federation.len() > 2 => {
                        // Graceful removal (drop_session + goodbye gossip).
                        let at = pick as usize % churn.federation.len();
                        churn.federation.remove_broker(at);
                    }
                    _ if churn.federation.len() > 2 => {
                        // Crash: the broker vanishes without draining its
                        // departure gossip first; remove_broker's survivor
                        // cleanup is all that heals the views.
                        let at = pick as usize % churn.federation.len();
                        if churn.federation.broker(at).id() != churn.federation.broker(0).id()
                            || churn.federation.len() > 3
                        {
                            churn.federation.remove_broker(at);
                        }
                    }
                    _ => {}
                }
                prop_assert!(churn.overlay_connected().is_ok(),
                    "{}", churn.overlay_connected().unwrap_err());
            }
            churn.federation.pump();
            // Anti-entropy over the view edges is allowed to finish the heal
            // after heavy churn; it must converge within a few rounds.
            prop_assert!(
                churn.federation.repair_until_converged(6).is_some(),
                "churned federation failed to reconverge (full_mesh={full_mesh})"
            );
            prop_assert!(churn.overlay_connected().is_ok());
        }
    }
}

#[cfg(test)]
mod swim_detection {
    //! The SWIM failure detector riding the repair cadence: a crashed
    //! broker must be confirmed dead — and evicted from every survivor's
    //! active view — within [`crate::swim::PROBE_BUDGET_TICKS`] repair
    //! rounds with **no** operator `remove_broker` call, a recovered
    //! broker must be dug back out by its own probe acks, and (the safety
    //! half, property-tested below) a *live* broker must never be left
    //! permanently buried no matter what a lossy network manufactured.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::net::{FaultPlan, LinkModel, SimNetwork};
    use crate::swim::{PeerState, PROBE_BUDGET_TICKS};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;

    /// An epidemic inline federation over small pinned view capacities.
    fn build(n: usize, seed: u64) -> (Arc<SimNetwork>, InlineFederation, Vec<PeerId>) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        let brokers: Vec<Arc<Broker>> = (0..n)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig::named(format!("b{i}")).with_view_capacities(3, 8),
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let ids: Vec<PeerId> = brokers.iter().map(|b| b.id()).collect();
        let federation = InlineFederation::new(brokers);
        assert!(federation.broker(0).epidemic_engaged());
        (network, federation, ids)
    }

    /// One repair round as a crashy world sees it: only brokers the fault
    /// plan holds up run their cadence, the round's traffic is pumped, and
    /// the plan's logical clock advances with the round.
    fn survivor_round(federation: &InlineFederation, ids: &[PeerId], plan: &FaultPlan) {
        for (i, id) in ids.iter().enumerate() {
            if !plan.is_crashed(id) {
                federation.broker(i).start_repair_round();
            }
        }
        federation.pump();
        plan.advance_tick();
    }

    #[test]
    fn quiet_federation_probes_without_suspicion() {
        let (_network, federation, ids) = build(8, 0x51A0);
        for _ in 0..16 {
            federation.repair();
        }
        let probes: u64 = (0..ids.len())
            .map(|i| federation.broker(i).federation_stats().swim_probes)
            .sum();
        let acks: u64 = (0..ids.len())
            .map(|i| federation.broker(i).federation_stats().swim_acks)
            .sum();
        let suspicions: u64 = (0..ids.len())
            .map(|i| federation.broker(i).federation_stats().swim_suspicions)
            .sum();
        assert!(probes >= 16, "every round probes");
        assert!(acks >= probes, "a healthy backbone acks every probe");
        assert_eq!(suspicions, 0, "nobody suspects anybody on an ideal network");
        for i in 0..ids.len() {
            assert!(federation.broker(i).swim_dead_members().is_empty());
        }
    }

    #[test]
    fn crashed_broker_is_evicted_from_every_view_within_the_probe_budget() {
        let (network, federation, ids) = build(16, 0x51A1);
        let victim = 3usize;
        let plan = FaultPlan::new(0x51A2).crash_stop(ids[victim], 0).into_adversary();
        network.set_adversary(plan.clone());

        // The crash lands mid-broadcast: the victim dies holding an
        // undelivered forwarding obligation, exactly the case the lazy
        // edges + failure detector exist for.
        let mut rng = HmacDrbg::from_seed_u64(0x51A3);
        federation.broker(0).index_and_distribute(
            PeerId::random(&mut rng),
            &crate::group::GroupId::new("ops"),
            "jxta:PipeAdvertisement",
            "<mid-broadcast/>",
        );
        federation.pump();

        for _ in 0..PROBE_BUDGET_TICKS {
            survivor_round(&federation, &ids, &plan);
        }

        for (i, id) in ids.iter().enumerate() {
            if i == victim {
                continue;
            }
            let record = federation.broker(i).swim_record(&ids[victim]);
            assert!(
                matches!(record.map(|r| r.state), Some(PeerState::Dead)),
                "survivor {i} ({id}) has not confirmed the crashed broker dead: {record:?}"
            );
            assert!(
                !federation.broker(i).active_view().contains(&ids[victim]),
                "survivor {i} still routes to the crashed broker"
            );
            // Nobody else got buried along the way.
            assert_eq!(federation.broker(i).swim_dead_members(), vec![ids[victim]]);
        }
    }

    #[test]
    fn recovered_broker_is_resurrected_by_its_own_acks() {
        let (network, federation, ids) = build(8, 0x51B0);
        let victim = 2usize;
        let dark_for = PROBE_BUDGET_TICKS + 2;
        let plan = FaultPlan::new(0x51B1)
            .crash_recover(ids[victim], 0, dark_for)
            .into_adversary();
        network.set_adversary(plan.clone());

        for _ in 0..dark_for {
            survivor_round(&federation, &ids, &plan);
        }
        let buried: usize = (0..ids.len())
            .filter(|&i| i != victim)
            .filter(|&i| {
                matches!(
                    federation.broker(i).swim_record(&ids[victim]).map(|r| r.state),
                    Some(PeerState::Dead)
                )
            })
            .count();
        assert!(buried > 0, "the dark window was long enough to bury the victim");

        // The probe ring keeps visiting dead members precisely so this
        // works: once the victim answers again, the ack resurrects it —
        // no re-admission ceremony, no operator call.
        for _ in 0..(2 * ids.len() as u64 + 4) {
            survivor_round(&federation, &ids, &plan);
        }
        for (i, _) in ids.iter().enumerate() {
            if i == victim {
                continue;
            }
            assert!(
                federation.broker(i).swim_dead_members().is_empty(),
                "survivor {i} still holds the recovered broker dead"
            );
            assert!(
                matches!(
                    federation.broker(i).swim_record(&ids[victim]).map(|r| r.state),
                    Some(PeerState::Alive)
                ),
                "survivor {i} has not restored the recovered broker to Alive"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Liveness safety: arbitrary seeded flaky links may suspect — even
        /// bury — live brokers, but once the loss stops, refutations and
        /// probe acks must always dig everyone back out.  No permanent
        /// false positive, for any seed and any drop rate.
        #[test]
        fn seeded_drops_never_permanently_bury_a_live_broker(
            seed in any::<u64>(),
            drop_percent in 0u32..=95,
            lossy_rounds in 3u64..10,
        ) {
            const N: usize = 7;
            let (network, federation, ids) = build(N, 0x51C0 ^ seed);
            let mut plan = FaultPlan::new(seed);
            for a in 0..N {
                for b in (a + 1)..N {
                    plan = plan.flaky_link(ids[a], ids[b], drop_percent);
                }
            }
            let plan = plan.into_adversary();
            network.set_adversary(plan.clone());
            for _ in 0..lossy_rounds {
                survivor_round(&federation, &ids, &plan);
            }
            if drop_percent > 0 {
                // (Not asserted: low rates may drop nothing in few rounds.)
                let _ = plan.dropped_count();
            }

            // Loss stops.  Any standing suspicion expires within its
            // deadline (3 ticks at health 1), the resulting false verdicts
            // are refuted by gossip or the probe ring's next visit, and the
            // ring revisits every member within N-1 ticks.
            network.clear_adversary();
            for _ in 0..(3 + 2 * (N as u64 - 1) + 4) {
                federation.repair();
            }
            for i in 0..N {
                let dead = federation.broker(i).swim_dead_members();
                prop_assert!(
                    dead.is_empty(),
                    "broker {i} permanently buried live peers {dead:?} \
                     (seed={seed} drop_percent={drop_percent} lossy_rounds={lossy_rounds})"
                );
            }
        }

        /// Completeness: a crash-stopped broker is confirmed dead by every
        /// survivor within the probe budget, whichever broker dies.
        #[test]
        fn any_crashed_broker_is_confirmed_within_the_probe_budget(
            seed in any::<u64>(),
            victim in 0usize..6,
        ) {
            const N: usize = 6;
            let (network, federation, ids) = build(N, 0x51D0 ^ seed);
            let plan = FaultPlan::new(seed).crash_stop(ids[victim], 0).into_adversary();
            network.set_adversary(plan.clone());
            for _ in 0..PROBE_BUDGET_TICKS {
                survivor_round(&federation, &ids, &plan);
            }
            for i in 0..N {
                if i == victim {
                    continue;
                }
                prop_assert!(
                    matches!(
                        federation.broker(i).swim_record(&ids[victim]).map(|r| r.state),
                        Some(PeerState::Dead)
                    ),
                    "survivor {i} missed the crash (seed={seed} victim={victim})"
                );
                prop_assert!(
                    !federation.broker(i).active_view().contains(&ids[victim]),
                    "survivor {i} still routes to the crashed broker (seed={seed} victim={victim})"
                );
            }
        }
    }
}
