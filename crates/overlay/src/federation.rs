//! The broker federation backbone.
//!
//! The paper's architecture (§2.1) describes a *backbone of brokers*: several
//! super-peers that jointly index resources, propagate peer information and
//! act as beacons for client peers.  This module turns a set of independent
//! [`Broker`]s into that backbone:
//!
//! * [`BrokerNetwork`] interconnects brokers into a full mesh (every broker
//!   registers every other as a peer broker), spawns their event loops and
//!   offers convergence checks over their replicated state.  State
//!   replication itself — advertisement index, group membership and
//!   peer→broker routing — travels as [`crate::message::MessageKind::BrokerSync`]
//!   gossip implemented by the broker module.
//! * [`InlineFederation`] is the thread-free variant: brokers are registered
//!   on the network but not spawned, and [`InlineFederation::pump`] delivers
//!   queued messages in a deterministic round-robin until quiescence.  The
//!   replication-convergence property tests are built on it, because a
//!   deterministic delivery order makes shrinking and reproduction exact.
//!
//! A client joined at broker A can therefore discover (via the replicated
//! index) and message (via the [`crate::message::MessageKind::RelayViaBroker`]
//! relay path) a peer joined at broker B.

use crate::broker::{Broker, BrokerHandle};
use crate::id::PeerId;
use crate::net::NetMessage;
use crossbeam::channel::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interconnects `brokers` into a full mesh: every broker learns every other
/// broker's identifier as a federation peer.
pub fn interconnect(brokers: &[Arc<Broker>]) {
    for a in brokers {
        for b in brokers {
            if a.id() != b.id() {
                a.add_peer_broker(b.id());
            }
        }
    }
}

/// Returns `true` when every broker in `brokers` has converged to the same
/// replicated state: identical advertisement indexes, group membership and
/// peer→broker routing.
pub fn converged(brokers: &[Arc<Broker>]) -> bool {
    let Some((first, rest)) = brokers.split_first() else {
        return true;
    };
    let advertisements = first.advertisement_snapshot();
    let groups = first.groups().snapshot();
    let routing = first.routing_snapshot();
    rest.iter().all(|broker| {
        broker.advertisement_snapshot() == advertisements
            && broker.groups().snapshot() == groups
            && broker.routing_snapshot() == routing
    })
}

/// A running federation: a full mesh of spawned brokers.
pub struct BrokerNetwork {
    handles: Vec<BrokerHandle>,
}

impl BrokerNetwork {
    /// Interconnects the brokers into a full mesh and spawns their event
    /// loops.
    ///
    /// # Panics
    ///
    /// Panics if `brokers` is empty — a deployment has at least one broker.
    pub fn spawn(brokers: Vec<Arc<Broker>>) -> Self {
        assert!(!brokers.is_empty(), "a federation needs at least one broker");
        interconnect(&brokers);
        let handles = brokers.iter().map(|broker| broker.spawn()).collect();
        BrokerNetwork { handles }
    }

    /// Number of brokers in the federation.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Returns `true` if the federation has no brokers (never the case for a
    /// spawned federation; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The `index`-th broker.
    pub fn broker(&self, index: usize) -> &Arc<Broker> {
        self.handles[index].broker()
    }

    /// The `index`-th broker's peer identifier.
    pub fn id(&self, index: usize) -> PeerId {
        self.handles[index].id()
    }

    /// All broker identifiers, in deployment order.
    pub fn ids(&self) -> Vec<PeerId> {
        self.handles.iter().map(|h| h.id()).collect()
    }

    /// Returns `true` when all brokers hold identical replicated state.
    pub fn converged(&self) -> bool {
        let brokers: Vec<Arc<Broker>> =
            self.handles.iter().map(|h| Arc::clone(h.broker())).collect();
        converged(&brokers)
    }

    /// Polls until the brokers converge or the timeout expires.  Returns
    /// `true` on convergence.
    pub fn await_convergence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.converged() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Shuts every broker down and waits for their threads.
    pub fn shutdown(self) {
        for handle in self.handles {
            handle.shutdown();
        }
    }
}

/// A thread-free federation for deterministic tests: brokers are registered
/// on the network but their event loops are driven explicitly by
/// [`InlineFederation::pump`].
pub struct InlineFederation {
    brokers: Vec<Arc<Broker>>,
    inboxes: Vec<Receiver<NetMessage>>,
}

impl InlineFederation {
    /// Interconnects the brokers and registers their endpoints without
    /// spawning threads.
    pub fn new(brokers: Vec<Arc<Broker>>) -> Self {
        interconnect(&brokers);
        let inboxes = brokers
            .iter()
            .map(|broker| broker.network().register(broker.id()))
            .collect();
        InlineFederation { brokers, inboxes }
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Returns `true` if the federation holds no brokers.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// The `index`-th broker.
    pub fn broker(&self, index: usize) -> &Arc<Broker> {
        &self.brokers[index]
    }

    /// Delivers queued inter-broker messages round-robin until every inbox is
    /// empty (processing a message may enqueue new ones, e.g. a relay hop).
    /// Returns the number of messages processed.  Delivery order is fully
    /// deterministic, which the replication proptests rely on.
    pub fn pump(&self) -> usize {
        let mut processed = 0;
        loop {
            let mut progressed = false;
            for (broker, inbox) in self.brokers.iter().zip(&self.inboxes) {
                while let Ok(net_message) = inbox.try_recv() {
                    broker.process_net(net_message);
                    processed += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return processed;
            }
        }
    }

    /// Returns `true` when all brokers hold identical replicated state.
    pub fn converged(&self) -> bool {
        converged(&self.brokers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;

    fn make_brokers(n: usize, seed: u64) -> (Arc<SimNetwork>, Arc<UserDatabase>, Vec<Arc<Broker>>) {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        database.register_user(&mut rng, "alice", "pw-a", &[GroupId::new("math")]);
        database.register_user(&mut rng, "bob", "pw-b", &[GroupId::new("math")]);
        let brokers = (0..n)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig {
                        name: format!("broker-{}", i + 1),
                    },
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        (network, database, brokers)
    }

    #[test]
    fn interconnect_builds_a_full_mesh() {
        let (_net, _db, brokers) = make_brokers(3, 0xFED0);
        interconnect(&brokers);
        for (i, broker) in brokers.iter().enumerate() {
            let peers = broker.peer_brokers();
            assert_eq!(peers.len(), 2);
            for (j, other) in brokers.iter().enumerate() {
                assert_eq!(broker.is_peer_broker(&other.id()), i != j);
            }
        }
    }

    #[test]
    fn inline_pump_replicates_session_and_index() {
        let (_net, _db, brokers) = make_brokers(3, 0xFED1);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED2);
        let alice = PeerId::random(&mut rng);

        federation.broker(0).establish_session(alice, "alice");
        federation
            .broker(0)
            .index_and_distribute(alice, &GroupId::new("math"), "jxta:PipeAdvertisement", "<a/>");
        assert!(!federation.converged(), "gossip is still queued");
        assert!(federation.pump() > 0);
        assert!(federation.converged());

        // Broker 2 never saw the client, yet resolves the advertisement and
        // knows where the peer is homed.
        assert_eq!(
            federation
                .broker(2)
                .lookup(&GroupId::new("math"), "jxta:PipeAdvertisement", Some(alice)),
            vec!["<a/>".to_string()]
        );
        assert_eq!(federation.broker(2).home_of(&alice), Some(federation.broker(0).id()));
        assert_eq!(federation.pump(), 0, "pump is idempotent once quiescent");
    }

    #[test]
    fn rehoming_a_peer_moves_its_route() {
        let (_net, _db, brokers) = make_brokers(2, 0xFED3);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED4);
        let alice = PeerId::random(&mut rng);

        federation.broker(0).establish_session(alice, "alice");
        federation.pump();
        assert_eq!(federation.broker(1).home_of(&alice), Some(federation.broker(0).id()));

        // The same peer drops off broker 0 and logs in at broker 1.
        federation.broker(0).drop_session(&alice);
        federation.broker(1).establish_session(alice, "alice");
        federation.pump();
        assert!(federation.converged());
        for i in 0..2 {
            assert_eq!(
                federation.broker(i).home_of(&alice),
                Some(federation.broker(1).id())
            );
        }
    }

    #[test]
    fn republish_from_a_quiet_broker_beats_the_busy_brokers_replica() {
        // Regression: LWW versions are (per-origin seq, origin id).  Without
        // a Lamport merge of observed sequence numbers, a fresh publish on a
        // quiet broker (low counter) would lose against the replica of an
        // older publish from a busy broker (high counter) — the update would
        // be silently discarded federation-wide.
        let (_net, _db, brokers) = make_brokers(2, 0xFED8);
        let federation = InlineFederation::new(brokers);
        let mut rng = HmacDrbg::from_seed_u64(0xFED9);
        let alice = PeerId::random(&mut rng);
        let group = GroupId::new("math");

        // Busy broker 0: the target entry plus unrelated traffic that
        // inflates its sequence counter well past broker 1's.
        federation
            .broker(0)
            .index_and_distribute(alice, &group, "jxta:PipeAdvertisement", "<old/>");
        for i in 0..5 {
            federation.broker(0).index_and_distribute(
                alice,
                &group,
                &format!("jxta:OtherAdvertisement-{i}"),
                "<noise/>",
            );
        }
        federation.pump();

        // Quiet broker 1 republishes the same (owner, doc type) key.
        federation
            .broker(1)
            .index_and_distribute(alice, &group, "jxta:PipeAdvertisement", "<new/>");
        federation.pump();

        assert!(federation.converged());
        for i in 0..2 {
            assert_eq!(
                federation
                    .broker(i)
                    .lookup(&group, "jxta:PipeAdvertisement", Some(alice)),
                vec!["<new/>".to_string()],
                "broker {i} must serve the republished advertisement"
            );
        }
    }

    #[test]
    fn stale_gossip_cannot_ghost_a_live_session() {
        // Regression: join at A, leave at A, join at B — all before any
        // gossip is delivered.  A's leave is sequenced above B's join, so a
        // naive LWW would log the peer out of B (its *live* home) once the
        // gossip lands.  The live-session re-assertion (lower-id broker) or
        // the shadow-and-resurrect path (higher-id broker) must win instead,
        // whatever the broker id order is and even when the stale home's
        // sequence counter is inflated far past the live home's (the case
        // where the stale join outranks the live one outright).
        for (home, other) in [(0usize, 1usize), (1, 0)] {
            for inflate in [false, true] {
                let (_net, _db, brokers) = make_brokers(2, 0xFEDA);
                let federation = InlineFederation::new(brokers);
                let mut rng = HmacDrbg::from_seed_u64(0xFEDB);
                let alice = PeerId::random(&mut rng);
                let label = format!("home={home} inflate={inflate}");

                if inflate {
                    let noise = PeerId::random(&mut rng);
                    for i in 0..5 {
                        federation.broker(other).index_and_distribute(
                            noise,
                            &GroupId::new("noise"),
                            &format!("jxta:Noise-{i}"),
                            "<n/>",
                        );
                    }
                }
                federation.broker(other).establish_session(alice, "alice");
                federation.broker(other).drop_session(&alice);
                federation.broker(home).establish_session(alice, "alice");
                federation.pump();

                assert!(federation.converged(), "{label}");
                let home_id = federation.broker(home).id();
                for i in 0..2 {
                    assert_eq!(
                        federation.broker(i).home_of(&alice),
                        Some(home_id),
                        "broker {i} must route to the live home ({label})"
                    );
                }
                assert!(
                    federation.broker(home).session(&alice).is_some(),
                    "the live session survives the stale leave ({label})"
                );
                assert!(
                    federation
                        .broker(home)
                        .groups()
                        .is_member(&GroupId::new("math"), &alice),
                    "membership survives too ({label})"
                );
            }
        }
    }

    #[test]
    fn spawned_federation_serves_clients_at_different_brokers() {
        use crate::client::{ClientConfig, ClientEvent, ClientPeer};
        let (network, _db, brokers) = make_brokers(2, 0xFED5);
        let federation = BrokerNetwork::spawn(brokers);
        assert_eq!(federation.len(), 2);
        assert!(!federation.is_empty());
        let mut rng = HmacDrbg::from_seed_u64(0xFED6);

        let mut alice =
            ClientPeer::with_random_id(Arc::clone(&network), ClientConfig::named("alice-pc"), &mut rng);
        let mut bob =
            ClientPeer::with_random_id(Arc::clone(&network), ClientConfig::named("bob-pc"), &mut rng);
        alice.connect(federation.id(0)).unwrap();
        alice.login("alice", "pw-a").unwrap();
        bob.connect(federation.id(1)).unwrap();
        bob.login("bob", "pw-b").unwrap();

        let group = GroupId::new("math");
        bob.publish_pipe(&group).unwrap();
        assert!(federation.await_convergence(Duration::from_secs(2)));

        // Alice resolves Bob's advertisement through *her* broker.
        let resolved = alice.resolve_pipe(&group, bob.id()).unwrap();
        assert_eq!(resolved.owner, bob.id());

        // And relays a message to him across the backbone.
        alice.relay_msg_peer(&group, bob.id(), "hello across brokers").unwrap();
        let event = bob.wait_for_event(Duration::from_secs(2)).unwrap();
        assert!(matches!(
            event,
            ClientEvent::Text { from, text, .. }
                if from == alice.id() && text == "hello across brokers"
        ));
        // The delivery to bob and the destination broker's counter update
        // are not ordered with respect to each other; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(2);
        while federation.broker(1).federation_stats().relays_delivered == 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(federation.broker(0).federation_stats().relays_forwarded, 1);
        assert_eq!(federation.broker(1).federation_stats().relays_delivered, 1);
        federation.shutdown();
    }

    #[test]
    fn single_broker_federation_behaves_like_a_plain_broker() {
        let (_net, _db, brokers) = make_brokers(1, 0xFED7);
        let federation = BrokerNetwork::spawn(brokers);
        assert_eq!(federation.len(), 1);
        assert!(federation.converged());
        assert_eq!(federation.broker(0).peer_brokers(), Vec::new());
        federation.shutdown();
    }
}

#[cfg(test)]
mod proptests {
    //! Replication-convergence property tests: random sequences of joins,
    //! leaves and publishes, applied at random brokers, must end with every
    //! broker holding the identical advertisement index, group membership and
    //! routing table once the gossip queues drain.  Like the other proptests
    //! in this workspace, the cases are deterministic (name-seeded runner,
    //! fixed DRBG seeds), so failures reproduce exactly.

    use super::*;
    use crate::broker::BrokerConfig;
    use crate::database::UserDatabase;
    use crate::group::GroupId;
    use crate::net::{LinkModel, SimNetwork};
    use jxta_crypto::drbg::HmacDrbg;
    use proptest::prelude::*;
    use std::collections::HashMap;

    const USERS: usize = 5;
    const GROUP_NAMES: [&str; 3] = ["math", "chem", "bio"];

    fn build_federation(broker_count: usize) -> (InlineFederation, Vec<PeerId>) {
        let mut rng = HmacDrbg::from_seed_u64(0xC04E);
        let network = SimNetwork::new(LinkModel::ideal());
        let database = Arc::new(UserDatabase::new());
        for u in 0..USERS {
            // Each user belongs to a deterministic subset of the groups.
            let groups: Vec<GroupId> = GROUP_NAMES
                .iter()
                .enumerate()
                .filter(|(g, _)| (u + g) % 2 == 0)
                .map(|(_, name)| GroupId::new(*name))
                .collect();
            database.register_user(&mut rng, &format!("user-{u}"), "pw", &groups);
        }
        let brokers: Vec<Arc<Broker>> = (0..broker_count)
            .map(|i| {
                Broker::new(
                    PeerId::random(&mut rng),
                    BrokerConfig {
                        name: format!("broker-{}", i + 1),
                    },
                    Arc::clone(&network),
                    Arc::clone(&database),
                )
            })
            .collect();
        let peers = (0..USERS).map(|_| PeerId::random(&mut rng)).collect();
        (InlineFederation::new(brokers), peers)
    }

    /// One scripted operation: `(selector, user index, broker index)`.
    /// `selector % 3` picks join / leave / publish.
    type Op = (u8, usize, usize);

    fn run_ops(federation: &InlineFederation, peers: &[PeerId], ops: &[Op]) {
        // Tracks where each user is currently homed so the script never
        // issues the ambiguous "joined at two brokers at once" sequence a
        // real client cannot produce either.
        let mut homes: HashMap<usize, usize> = HashMap::new();
        for &(selector, user, broker) in ops {
            let user = user % USERS;
            let broker = broker % federation.len();
            match selector % 3 {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = homes.entry(user) {
                        federation
                            .broker(broker)
                            .establish_session(peers[user], &format!("user-{user}"));
                        e.insert(broker);
                    }
                }
                1 => {
                    if let Some(home) = homes.remove(&user) {
                        federation.broker(home).drop_session(&peers[user]);
                    }
                }
                _ => {
                    let group = GROUP_NAMES[(user + broker) % GROUP_NAMES.len()];
                    federation.broker(broker).index_and_distribute(
                        peers[user],
                        &GroupId::new(group),
                        "jxta:PipeAdvertisement",
                        &format!("<adv owner=\"{user}\" at=\"{broker}\"/>"),
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn replicated_state_converges_on_every_broker(
            broker_count in 2usize..5,
            ops in proptest::collection::vec((any::<u8>(), 0usize..USERS, 0usize..4), 0..40),
        ) {
            let (federation, peers) = build_federation(broker_count);
            run_ops(&federation, &peers, &ops);
            federation.pump();
            prop_assert!(federation.converged(), "brokers diverged after {} ops", ops.len());
            prop_assert_eq!(federation.pump(), 0, "pump must be idempotent once quiescent");
        }

        #[test]
        fn advertisement_indexes_are_identical_regardless_of_publish_origin(
            publishes in proptest::collection::vec((0usize..USERS, 0usize..3), 1..30),
        ) {
            let (federation, peers) = build_federation(3);
            for &(user, broker) in &publishes {
                federation.broker(broker).index_and_distribute(
                    peers[user],
                    &GroupId::new(GROUP_NAMES[user % GROUP_NAMES.len()]),
                    "jxta:FileAdvertisement",
                    &format!("<file owner=\"{user}\" from=\"{broker}\"/>"),
                );
            }
            federation.pump();
            let reference = federation.broker(0).advertisement_snapshot();
            prop_assert!(!reference.is_empty());
            for i in 1..federation.len() {
                prop_assert_eq!(&federation.broker(i).advertisement_snapshot(), &reference);
            }
        }

        #[test]
        fn membership_and_routing_converge_under_joins_and_leaves(
            ops in proptest::collection::vec((0u8..2, 0usize..USERS, 0usize..3), 0..30),
        ) {
            let (federation, peers) = build_federation(3);
            run_ops(&federation, &peers, &ops);
            federation.pump();
            let groups = federation.broker(0).groups().snapshot();
            let routing = federation.broker(0).routing_snapshot();
            for i in 1..federation.len() {
                prop_assert_eq!(&federation.broker(i).groups().snapshot(), &groups);
                prop_assert_eq!(&federation.broker(i).routing_snapshot(), &routing);
            }
        }
    }
}

