//! CPU/wire time accounting for experiments.
//!
//! The paper's evaluation reports the *overhead* of the secure primitives
//! relative to the plain ones: +81.76 % for joining the network, and a
//! payload-size-dependent percentage for `secureMsgPeer` (Figure 2).  To
//! reproduce those numbers the harness needs to measure two components
//! separately:
//!
//! * **CPU time** — real wall-clock time spent computing (the cryptography
//!   plus ordinary message handling), measured with [`Stopwatch`].
//! * **Wire time** — the virtual network time charged by the
//!   [`crate::net::LinkModel`] for every message leg, accumulated by the
//!   client/broker modules in a [`WireTimeAccumulator`].
//!
//! An [`OperationTiming`] combines both, and [`overhead_percent`] computes the
//! relative overhead between a secure and a plain run of the same operation.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The cost of one primitive invocation, split into compute and network time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperationTiming {
    /// Real compute time.
    pub cpu: Duration,
    /// Virtual wire time charged by the link model.
    pub wire: Duration,
}

impl OperationTiming {
    /// Creates a timing from its parts.
    pub fn new(cpu: Duration, wire: Duration) -> Self {
        OperationTiming { cpu, wire }
    }

    /// Total cost (compute plus network).
    pub fn total(&self) -> Duration {
        self.cpu + self.wire
    }

    /// Component-wise sum.
    pub fn add(&self, other: &OperationTiming) -> OperationTiming {
        OperationTiming {
            cpu: self.cpu + other.cpu,
            wire: self.wire + other.wire,
        }
    }
}

impl std::ops::Add for OperationTiming {
    type Output = OperationTiming;
    fn add(self, rhs: OperationTiming) -> OperationTiming {
        OperationTiming::add(&self, &rhs)
    }
}

impl std::iter::Sum for OperationTiming {
    fn sum<I: Iterator<Item = OperationTiming>>(iter: I) -> Self {
        iter.fold(OperationTiming::default(), |acc, t| acc + t)
    }
}

/// Relative overhead, in percent, of `secure` compared to `plain`
/// (e.g. 81.76 means the secure operation takes 81.76 % longer).
///
/// Returns `f64::INFINITY` when the plain cost is zero and the secure cost is
/// not.
pub fn overhead_percent(plain: Duration, secure: Duration) -> f64 {
    let plain_s = plain.as_secs_f64();
    let secure_s = secure.as_secs_f64();
    if plain_s == 0.0 {
        if secure_s == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (secure_s - plain_s) / plain_s * 100.0
    }
}

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: crate::clock::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the stopwatch and returns the time elapsed up to now.
    pub fn lap(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.start = crate::clock::now();
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Thread-safe accumulator for virtual wire time.
#[derive(Debug)]
pub struct WireTimeAccumulator {
    total: Mutex<Duration>,
}

impl Default for WireTimeAccumulator {
    fn default() -> Self {
        WireTimeAccumulator {
            total: Mutex::with_class("metrics.wire_time", Duration::ZERO),
        }
    }
}

impl WireTimeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a wire-time contribution.
    pub fn add(&self, wire: Duration) {
        *self.total.lock() += wire;
    }

    /// Current accumulated total.
    pub fn total(&self) -> Duration {
        *self.total.lock()
    }

    /// Returns the accumulated total and resets it to zero.
    pub fn take(&self) -> Duration {
        std::mem::take(&mut *self.total.lock())
    }
}

/// Snapshot of a broker's ingress-pipeline activity (see
/// [`PipelineMetrics`]).  All zeros when the broker runs the classic
/// single-thread loop (`verify_workers == 0`) or is driven inline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Messages that traversed the staged pipeline (ticketed at ingress,
    /// decoded/verified by a worker, applied serially).
    pub messages_pipelined: u64,
    /// Contiguous runs of ready tickets drained by the apply stage in one
    /// go.  `messages_pipelined / apply_batches` is the mean batch size.
    pub apply_batches: u64,
    /// Largest single apply batch observed.
    pub max_apply_batch: u64,
    /// Worker completions that arrived ahead of a still-outstanding earlier
    /// ticket and had to park in the reorder buffer (how often the parallel
    /// verify stage actually ran ahead of arrival order).
    pub reorder_waits: u64,
    /// Partitioned apply lanes the dispatcher routes into (zero when the
    /// broker runs single-threaded or inline).
    pub apply_lanes: u64,
    /// Partition-local messages applied on a lane (everything else is a
    /// barrier, applied on the dispatcher itself).
    pub lane_messages: u64,
    /// Messages applied by the most loaded lane — together with
    /// `lane_messages / apply_lanes` this shows how even the shard-key
    /// spread actually was.
    pub busiest_lane_messages: u64,
    /// Partition-spanning messages applied on the dispatcher after a full
    /// lane drain.
    pub barriers_applied: u64,
    /// Barriers that found at least one lane busy and actually had to wait
    /// for it to quiesce (the rest hit idle lanes and applied immediately).
    pub barrier_drains: u64,
}

/// Thread-safe counters for the broker's staged ingress pipeline.
#[derive(Debug)]
pub struct PipelineMetrics {
    messages_pipelined: AtomicU64,
    apply_batches: AtomicU64,
    max_apply_batch: AtomicU64,
    reorder_waits: AtomicU64,
    barriers_applied: AtomicU64,
    barrier_drains: AtomicU64,
    /// One applied-message counter per apply lane, sized by
    /// [`PipelineMetrics::configure_lanes`] when the broker spawns.  Each
    /// lane thread holds a clone of the `Arc` and bumps its own slot, so the
    /// hot path never touches this mutex.
    lane_counters: Mutex<std::sync::Arc<[AtomicU64]>>,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        PipelineMetrics {
            messages_pipelined: AtomicU64::new(0),
            apply_batches: AtomicU64::new(0),
            max_apply_batch: AtomicU64::new(0),
            reorder_waits: AtomicU64::new(0),
            barriers_applied: AtomicU64::new(0),
            barrier_drains: AtomicU64::new(0),
            lane_counters: Mutex::with_class("metrics.lane_counters", std::sync::Arc::from(Vec::new())),
        }
    }
}

impl PipelineMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an apply-stage drain of `batch` consecutive tickets.
    pub fn record_apply_batch(&self, batch: u64) {
        self.messages_pipelined.fetch_add(batch, Ordering::Relaxed);
        self.apply_batches.fetch_add(1, Ordering::Relaxed);
        self.max_apply_batch.fetch_max(batch, Ordering::Relaxed);
    }

    /// Records a completion that had to park in the reorder buffer.
    pub fn count_reorder_wait(&self) {
        self.reorder_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Sizes the per-lane counters for a broker spawning `lanes` apply lanes
    /// and returns the shared counter array (one slot per lane).  Each lane
    /// thread keeps a clone and bumps its own slot directly.
    pub fn configure_lanes(&self, lanes: usize) -> std::sync::Arc<[AtomicU64]> {
        let counters: std::sync::Arc<[AtomicU64]> =
            (0..lanes).map(|_| AtomicU64::new(0)).collect();
        *self.lane_counters.lock() = std::sync::Arc::clone(&counters);
        counters
    }

    /// Records a partition-local message applied on the dispatcher via the
    /// idle-lane fast path; it still counts against the lane that owns the
    /// partition, so lane-load metrics reflect routing, not thread identity.
    pub fn count_lane_message(&self, lane: usize) {
        if let Some(counter) = self.lane_counters.lock().get(lane) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a partition-spanning message applied after a lane drain.
    pub fn count_barrier(&self) {
        self.barriers_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a barrier that found at least one busy lane and had to wait.
    pub fn count_barrier_drain(&self) {
        self.barrier_drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-lane applied-message counts, in lane order.
    pub fn lane_loads(&self) -> Vec<u64> {
        self.lane_counters
            .lock()
            .iter()
            .map(|counter| counter.load(Ordering::Relaxed))
            .collect()
    }

    /// Consistent snapshot of the counters.
    pub fn snapshot(&self) -> PipelineStats {
        let lanes = self.lane_loads();
        PipelineStats {
            messages_pipelined: self.messages_pipelined.load(Ordering::Relaxed),
            apply_batches: self.apply_batches.load(Ordering::Relaxed),
            max_apply_batch: self.max_apply_batch.load(Ordering::Relaxed),
            reorder_waits: self.reorder_waits.load(Ordering::Relaxed),
            apply_lanes: lanes.len() as u64,
            lane_messages: lanes.iter().sum(),
            busiest_lane_messages: lanes.iter().copied().max().unwrap_or(0),
            barriers_applied: self.barriers_applied.load(Ordering::Relaxed),
            barrier_drains: self.barrier_drains.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a broker's federation activity (see [`FederationMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Gossip messages sent to peer brokers.
    pub syncs_sent: u64,
    /// Gossip messages received and applied to local state.
    pub syncs_applied: u64,
    /// Relayed client payloads forwarded to another broker.
    pub relays_forwarded: u64,
    /// Relayed client payloads delivered to a locally homed peer.
    pub relays_delivered: u64,
    /// Relays that could not be routed (unknown destination, dead peer).
    pub relays_failed: u64,
    /// Inter-broker messages rejected because the sender is not a known
    /// peer broker of the federation.
    pub rejected_unknown_origin: u64,
    /// Inter-broker messages rejected because their per-origin sequence
    /// number was stale (replay or out-of-order re-injection).
    pub rejected_replayed: u64,
    /// Lookups answered from this broker's own shard of the index.
    pub shard_hits: u64,
    /// Lookups routed to a remote shard replica (one per routed query,
    /// scatter-gather counts once).
    pub shard_misses: u64,
    /// Index/membership entries migrated off this broker when the shard ring
    /// membership changed.
    pub entries_migrated: u64,
    /// Anti-entropy rounds this broker initiated (one digest per peer broker
    /// per round).
    pub repair_rounds: u64,
    /// Anti-entropy digests received whose state hashes disagreed with the
    /// local replica (each one triggers a snapshot exchange).
    pub repair_mismatches: u64,
    /// Index/membership/routing entries (and extension-state entries, e.g.
    /// revocations) brought up to date by anti-entropy snapshot merges.
    pub entries_repaired: u64,
    /// Wire bytes of repair-protocol traffic this broker sent: digests,
    /// hash-tree descent legs and snapshot/page messages.  This is what the
    /// repair-bytes-vs-divergence experiment attributes — the global
    /// `NetStats::bytes_sent` cannot separate repair from gossip.
    pub repair_bytes: u64,
    /// Hash-tree descent legs ([`crate::message::MessageKind::AntiEntropyRange`])
    /// this broker sent while narrowing a divergence.
    pub descent_rounds: u64,
    /// Range-scoped snapshot pages sent during tree repair (the final legs
    /// that actually carry entries).
    pub repair_pages: u64,
    /// Broadcast gossip events pushed eagerly (full payload) along Plumtree
    /// tree edges, counted per (event, edge) pair.
    pub eager_pushes: u64,
    /// Lazy `IHave` digests sent on non-tree active edges.
    pub ihaves_sent: u64,
    /// `Graft` pulls sent after a digest revealed a missed broadcast (each
    /// one also promotes the advertising edge into the eager tree).
    pub grafts_sent: u64,
    /// `Prune` demotions sent after an edge delivered only duplicates.
    pub prunes_sent: u64,
    /// Grafted gossip ids whose payload had already left the bounded cache —
    /// the cases anti-entropy must heal instead.
    pub graft_misses: u64,
    /// Publishes this broker originated (the denominator of the fan-out
    /// counters below).
    pub publishes: u64,
    /// Sum over publishes of the peers addressed directly (full mesh: N−1;
    /// epidemic: the eager edge count; sharded: replicas plus member hosts).
    pub publish_fanout_total: u64,
    /// Largest single-publish fan-out observed.
    pub publish_fanout_max: u64,
    /// Lazy `IHave` digests *not* sent because per-publish advertisements
    /// were batched into the next repair tick's coalesced digest (each
    /// destination whose batch held n gossip ids saved n−1 digests).
    pub ihave_digests_saved: u64,
    /// SWIM direct probes sent (one member pinged per detector tick).
    pub swim_probes: u64,
    /// SWIM indirect ping-requests fanned out after direct-probe timeouts.
    pub swim_indirect_probes: u64,
    /// SWIM acks sent in answer to pings.
    pub swim_acks: u64,
    /// Members this broker newly marked `Suspect` (gossiped accusations).
    pub swim_suspicions: u64,
    /// Suspicions/death verdicts about *this* broker it refuted by bumping
    /// its incarnation.
    pub swim_refutations: u64,
    /// Members this broker confirmed `Dead` (locally expired or accepted
    /// from gossip) and evicted from its view and Plumtree edges.
    pub swim_deaths: u64,
}

/// Thread-safe counters describing a broker's participation in the
/// federation backbone: gossip replication, client-payload relaying and the
/// rejection of unauthentic or replayed inter-broker traffic.
#[derive(Debug, Default)]
pub struct FederationMetrics {
    syncs_sent: AtomicU64,
    syncs_applied: AtomicU64,
    relays_forwarded: AtomicU64,
    relays_delivered: AtomicU64,
    relays_failed: AtomicU64,
    rejected_unknown_origin: AtomicU64,
    rejected_replayed: AtomicU64,
    shard_hits: AtomicU64,
    shard_misses: AtomicU64,
    entries_migrated: AtomicU64,
    repair_rounds: AtomicU64,
    repair_mismatches: AtomicU64,
    entries_repaired: AtomicU64,
    repair_bytes: AtomicU64,
    descent_rounds: AtomicU64,
    repair_pages: AtomicU64,
    eager_pushes: AtomicU64,
    ihaves_sent: AtomicU64,
    grafts_sent: AtomicU64,
    prunes_sent: AtomicU64,
    graft_misses: AtomicU64,
    publishes: AtomicU64,
    publish_fanout_total: AtomicU64,
    publish_fanout_max: AtomicU64,
    ihave_digests_saved: AtomicU64,
    swim_probes: AtomicU64,
    swim_indirect_probes: AtomicU64,
    swim_acks: AtomicU64,
    swim_suspicions: AtomicU64,
    swim_refutations: AtomicU64,
    swim_deaths: AtomicU64,
}

impl FederationMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a gossip message sent to a peer broker.
    pub fn count_sync_sent(&self) {
        self.syncs_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a gossip message applied to local state.
    pub fn count_sync_applied(&self) {
        self.syncs_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a relay forwarded across the backbone.
    pub fn count_relay_forwarded(&self) {
        self.relays_forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a relay delivered to a locally homed peer.
    pub fn count_relay_delivered(&self) {
        self.relays_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a relay that could not be routed.
    pub fn count_relay_failed(&self) {
        self.relays_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inter-broker message from an unknown origin.
    pub fn count_rejected_unknown_origin(&self) {
        self.rejected_unknown_origin.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replayed (stale-sequence) inter-broker message.
    pub fn count_rejected_replayed(&self) {
        self.rejected_replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup answered from the local shard.
    pub fn count_shard_hit(&self) {
        self.shard_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup routed to a remote shard replica.
    pub fn count_shard_miss(&self) {
        self.shard_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` entries migrated off this broker during re-sharding.
    pub fn count_entries_migrated(&self, n: u64) {
        self.entries_migrated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an initiated anti-entropy round.
    pub fn count_repair_round(&self) {
        self.repair_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an anti-entropy digest that disagreed with the local state.
    pub fn count_repair_mismatch(&self) {
        self.repair_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` entries healed by an anti-entropy snapshot merge.
    pub fn count_entries_repaired(&self, n: u64) {
        self.entries_repaired.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` wire bytes of repair-protocol traffic sent.
    pub fn count_repair_bytes(&self, n: u64) {
        self.repair_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a hash-tree descent leg sent.
    pub fn count_descent_round(&self) {
        self.descent_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a range-scoped snapshot page sent.
    pub fn count_repair_page(&self) {
        self.repair_pages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` eager pushes of one broadcast event (one per tree edge).
    pub fn count_eager_pushes(&self, n: u64) {
        self.eager_pushes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a lazy `IHave` digest sent.
    pub fn count_ihave_sent(&self) {
        self.ihaves_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `Graft` pull sent.
    pub fn count_graft_sent(&self) {
        self.grafts_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `Prune` demotion sent.
    pub fn count_prune_sent(&self) {
        self.prunes_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a grafted gossip id whose payload was no longer cached.
    pub fn count_graft_miss(&self) {
        self.graft_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one originated publish that directly addressed `fanout` peers.
    pub fn count_publish_fanout(&self, fanout: u64) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.publish_fanout_total.fetch_add(fanout, Ordering::Relaxed);
        self.publish_fanout_max.fetch_max(fanout, Ordering::Relaxed);
    }

    /// Records `n` lazy `IHave` digests saved by batching advertisements
    /// across publishes into one digest per repair tick.
    pub fn count_ihave_digests_saved(&self, n: u64) {
        self.ihave_digests_saved.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a SWIM direct probe sent.
    pub fn count_swim_probe(&self) {
        self.swim_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a SWIM indirect ping-request sent.
    pub fn count_swim_indirect_probe(&self) {
        self.swim_indirect_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a SWIM ack sent.
    pub fn count_swim_ack(&self) {
        self.swim_acks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a member newly marked `Suspect`.
    pub fn count_swim_suspicion(&self) {
        self.swim_suspicions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accusation about this broker it refuted.
    pub fn count_swim_refutation(&self) {
        self.swim_refutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a member confirmed `Dead` and evicted from the view.
    pub fn count_swim_death(&self) {
        self.swim_deaths.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent snapshot of the counters.
    pub fn snapshot(&self) -> FederationStats {
        FederationStats {
            syncs_sent: self.syncs_sent.load(Ordering::Relaxed),
            syncs_applied: self.syncs_applied.load(Ordering::Relaxed),
            relays_forwarded: self.relays_forwarded.load(Ordering::Relaxed),
            relays_delivered: self.relays_delivered.load(Ordering::Relaxed),
            relays_failed: self.relays_failed.load(Ordering::Relaxed),
            rejected_unknown_origin: self.rejected_unknown_origin.load(Ordering::Relaxed),
            rejected_replayed: self.rejected_replayed.load(Ordering::Relaxed),
            shard_hits: self.shard_hits.load(Ordering::Relaxed),
            shard_misses: self.shard_misses.load(Ordering::Relaxed),
            entries_migrated: self.entries_migrated.load(Ordering::Relaxed),
            repair_rounds: self.repair_rounds.load(Ordering::Relaxed),
            repair_mismatches: self.repair_mismatches.load(Ordering::Relaxed),
            entries_repaired: self.entries_repaired.load(Ordering::Relaxed),
            repair_bytes: self.repair_bytes.load(Ordering::Relaxed),
            descent_rounds: self.descent_rounds.load(Ordering::Relaxed),
            repair_pages: self.repair_pages.load(Ordering::Relaxed),
            eager_pushes: self.eager_pushes.load(Ordering::Relaxed),
            ihaves_sent: self.ihaves_sent.load(Ordering::Relaxed),
            grafts_sent: self.grafts_sent.load(Ordering::Relaxed),
            prunes_sent: self.prunes_sent.load(Ordering::Relaxed),
            graft_misses: self.graft_misses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publish_fanout_total: self.publish_fanout_total.load(Ordering::Relaxed),
            publish_fanout_max: self.publish_fanout_max.load(Ordering::Relaxed),
            ihave_digests_saved: self.ihave_digests_saved.load(Ordering::Relaxed),
            swim_probes: self.swim_probes.load(Ordering::Relaxed),
            swim_indirect_probes: self.swim_indirect_probes.load(Ordering::Relaxed),
            swim_acks: self.swim_acks.load(Ordering::Relaxed),
            swim_suspicions: self.swim_suspicions.load(Ordering::Relaxed),
            swim_refutations: self.swim_refutations.load(Ordering::Relaxed),
            swim_deaths: self.swim_deaths.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_timing_arithmetic() {
        let a = OperationTiming::new(Duration::from_millis(10), Duration::from_millis(5));
        let b = OperationTiming::new(Duration::from_millis(1), Duration::from_millis(2));
        assert_eq!(a.total(), Duration::from_millis(15));
        let sum = a + b;
        assert_eq!(sum.cpu, Duration::from_millis(11));
        assert_eq!(sum.wire, Duration::from_millis(7));
        let total: OperationTiming = [a, b].into_iter().sum();
        assert_eq!(total, sum);
        assert_eq!(OperationTiming::default().total(), Duration::ZERO);
    }

    #[test]
    fn overhead_percent_basic() {
        assert!((overhead_percent(Duration::from_millis(100), Duration::from_millis(182)) - 82.0).abs() < 1e-9);
        assert_eq!(overhead_percent(Duration::from_millis(100), Duration::from_millis(100)), 0.0);
        assert!(overhead_percent(Duration::from_millis(100), Duration::from_millis(50)) < 0.0);
    }

    #[test]
    fn overhead_percent_zero_baseline() {
        assert_eq!(overhead_percent(Duration::ZERO, Duration::ZERO), 0.0);
        assert_eq!(overhead_percent(Duration::ZERO, Duration::from_millis(1)), f64::INFINITY);
    }

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(4));
        let second = sw.elapsed();
        assert!(second < first, "lap restarts the stopwatch");
    }

    #[test]
    fn wire_accumulator_add_and_take() {
        let acc = WireTimeAccumulator::new();
        acc.add(Duration::from_millis(2));
        acc.add(Duration::from_millis(3));
        assert_eq!(acc.total(), Duration::from_millis(5));
        assert_eq!(acc.take(), Duration::from_millis(5));
        assert_eq!(acc.total(), Duration::ZERO);
    }

    #[test]
    fn federation_metrics_count_and_snapshot() {
        let metrics = FederationMetrics::new();
        assert_eq!(metrics.snapshot(), FederationStats::default());
        metrics.count_sync_sent();
        metrics.count_sync_sent();
        metrics.count_sync_applied();
        metrics.count_relay_forwarded();
        metrics.count_relay_delivered();
        metrics.count_relay_failed();
        metrics.count_rejected_unknown_origin();
        metrics.count_rejected_replayed();
        metrics.count_shard_hit();
        metrics.count_shard_miss();
        metrics.count_shard_miss();
        metrics.count_entries_migrated(3);
        metrics.count_repair_round();
        metrics.count_repair_mismatch();
        metrics.count_repair_mismatch();
        metrics.count_entries_repaired(5);
        metrics.count_repair_bytes(128);
        metrics.count_repair_bytes(64);
        metrics.count_descent_round();
        metrics.count_repair_page();
        metrics.count_repair_page();
        metrics.count_eager_pushes(4);
        metrics.count_ihave_sent();
        metrics.count_graft_sent();
        metrics.count_prune_sent();
        metrics.count_graft_miss();
        metrics.count_publish_fanout(3);
        metrics.count_publish_fanout(7);
        metrics.count_ihave_digests_saved(4);
        metrics.count_swim_probe();
        metrics.count_swim_probe();
        metrics.count_swim_indirect_probe();
        metrics.count_swim_ack();
        metrics.count_swim_suspicion();
        metrics.count_swim_refutation();
        metrics.count_swim_death();
        let stats = metrics.snapshot();
        assert_eq!(stats.syncs_sent, 2);
        assert_eq!(stats.syncs_applied, 1);
        assert_eq!(stats.relays_forwarded, 1);
        assert_eq!(stats.relays_delivered, 1);
        assert_eq!(stats.relays_failed, 1);
        assert_eq!(stats.rejected_unknown_origin, 1);
        assert_eq!(stats.rejected_replayed, 1);
        assert_eq!(stats.shard_hits, 1);
        assert_eq!(stats.shard_misses, 2);
        assert_eq!(stats.entries_migrated, 3);
        assert_eq!(stats.repair_rounds, 1);
        assert_eq!(stats.repair_mismatches, 2);
        assert_eq!(stats.entries_repaired, 5);
        assert_eq!(stats.repair_bytes, 192);
        assert_eq!(stats.descent_rounds, 1);
        assert_eq!(stats.repair_pages, 2);
        assert_eq!(stats.eager_pushes, 4);
        assert_eq!(stats.ihaves_sent, 1);
        assert_eq!(stats.grafts_sent, 1);
        assert_eq!(stats.prunes_sent, 1);
        assert_eq!(stats.graft_misses, 1);
        assert_eq!(stats.publishes, 2);
        assert_eq!(stats.publish_fanout_total, 10);
        assert_eq!(stats.publish_fanout_max, 7);
        assert_eq!(stats.ihave_digests_saved, 4);
        assert_eq!(stats.swim_probes, 2);
        assert_eq!(stats.swim_indirect_probes, 1);
        assert_eq!(stats.swim_acks, 1);
        assert_eq!(stats.swim_suspicions, 1);
        assert_eq!(stats.swim_refutations, 1);
        assert_eq!(stats.swim_deaths, 1);
    }

    #[test]
    fn pipeline_metrics_count_batches() {
        let metrics = PipelineMetrics::new();
        assert_eq!(metrics.snapshot(), PipelineStats::default());
        metrics.record_apply_batch(3);
        metrics.record_apply_batch(1);
        metrics.record_apply_batch(5);
        metrics.count_reorder_wait();
        let stats = metrics.snapshot();
        assert_eq!(stats.messages_pipelined, 9);
        assert_eq!(stats.apply_batches, 3);
        assert_eq!(stats.max_apply_batch, 5);
        assert_eq!(stats.reorder_waits, 1);
        assert_eq!(stats.apply_lanes, 0, "no lanes configured");
    }

    #[test]
    fn pipeline_metrics_aggregate_lane_counters() {
        let metrics = PipelineMetrics::new();
        let counters = metrics.configure_lanes(3);
        counters[0].fetch_add(4, Ordering::Relaxed);
        counters[2].fetch_add(7, Ordering::Relaxed);
        metrics.count_barrier();
        metrics.count_barrier();
        metrics.count_barrier_drain();
        let stats = metrics.snapshot();
        assert_eq!(stats.apply_lanes, 3);
        assert_eq!(stats.lane_messages, 11);
        assert_eq!(stats.busiest_lane_messages, 7);
        assert_eq!(stats.barriers_applied, 2);
        assert_eq!(stats.barrier_drains, 1);
        assert_eq!(metrics.lane_loads(), vec![4, 0, 7]);
        // Reconfiguring replaces the counter array.
        metrics.configure_lanes(1);
        assert_eq!(metrics.snapshot().lane_messages, 0);
    }

    #[test]
    fn wire_accumulator_is_thread_safe() {
        let acc = std::sync::Arc::new(WireTimeAccumulator::new());
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let acc = std::sync::Arc::clone(&acc);
                s.spawn(move |_| {
                    for _ in 0..100 {
                        acc.add(Duration::from_micros(10));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(acc.total(), Duration::from_micros(8 * 100 * 10));
    }
}
